"""Parameter-axis broadcast engine — batched statevector evolution.

The V2 primitives evaluate one parameterized template at a whole array of
parameter value sets.  Evolving each binding separately repeats every
binding-independent gate ``batch`` times; this module instead stacks the
states into one C-contiguous ``(batch, 2**n)`` array and applies each gate
across the batch axis in a handful of numpy ops:

* **shared** gates (no unbound parameters) apply identically to every row:
  dense blocks go through one flat GEMM / stacked matmul over all rows at
  once, diagonal/permutation/controlled structures reuse the slice kernels
  of :mod:`repro.simulators.kernels` on a batch-leading compact view;
* **per-binding** gates (``rx``/``rz``/``u3``/``crz``/... with symbolic
  angles) get their matrices built as stacked ``(batch, 2, 2)`` tensors in
  one vectorized pass over the resolved angle vectors, then applied with a
  broadcast matmul (dense), a broadcast elementwise multiply (diagonal), or
  a control-sliced tensor update (controlled-dense).

Bit-exactness is the design contract, not an accident: every batched
operation reduces to the *same* floating-point arithmetic per row as the
single-state kernels (``np.matmul`` on a row-contiguous stack equals the
per-row GEMM; ``np.exp``/``np.sin``/``np.cos`` agree bitwise with their
``cmath``/``math`` scalar counterparts on float64), so the broadcast
results — statevectors, sampled counts, expectation values — are bitwise
identical to a per-binding loop under the same seeds.  The only documented
exception: a binding sitting exactly on a structural corner (``rx(0)``,
``rx(pi)``, a generically-parameterized diagonal entry landing on ``1``)
may flip the sign of a ``-0.0`` component, because the single-state path
reclassifies such matrices structurally while the batch path dispatches by
gate name.

Memory model: the working set is two ``(chunk, 2**n)`` complex buffers.
The batch axis is chunked so one buffer never exceeds
``MAX_BROADCAST_AMPLITUDES`` amplitudes (64 MiB at complex128), i.e.
``chunk = max(1, MAX_BROADCAST_AMPLITUDES // 2**n)`` rows at a time.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.parameterbinding import get_bind_plan
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError
from repro.simulators import kernels
from repro.simulators.qasm_simulator import (
    QasmSimulator,
    _sample_outcomes,
    _zeros_for_width,
    bin_counts,
)
from repro.telemetry.tracer import get_tracer

#: Amplitude cap per batch chunk: ``chunk * 2**n <= 1 << 22`` keeps each of
#: the two working buffers at or under 64 MiB of complex128.
MAX_BROADCAST_AMPLITUDES = 1 << 22

_SQRT2_INV = 1.0 / np.sqrt(2.0)


def broadcast_chunk_bounds(batch, num_qubits, cap=None):
    """Split ``batch`` rows into ``(start, stop)`` chunks under the cap."""
    if cap is None:
        cap = MAX_BROADCAST_AMPLITUDES
    rows = max(1, cap // (1 << num_qubits))
    return [
        (start, min(start + rows, batch)) for start in range(0, batch, rows)
    ]


def broadcast_supported(circuit) -> bool:
    """True when every operation is a gate, a barrier, or a measurement."""
    for item in circuit.data:
        op = item.operation
        if op.name in ("barrier", "measure"):
            continue
        if op.condition is not None or op.name == "reset":
            return False
        if not isinstance(op, Gate):
            return False
    return True


# ---------------------------------------------------------------------------
# Batch-leading views and shared-gate application
#
# ``states`` everywhere below is ``(B, 2**n)`` C-contiguous complex128: each
# row is one binding's full state, itself contiguous, so any per-row
# operation is *the* single-state operation.
# ---------------------------------------------------------------------------


def _batch_view(states, targets, num_qubits):
    """Batch-leading analogue of :func:`kernels._compact_view`.

    Same compact shape per row with an extra leading batch axis; returned
    ``axes`` are the single-state axes shifted by one.
    """
    descending = sorted(targets, reverse=True)
    shape = [states.shape[0]]
    prev = num_qubits
    for qubit in descending:
        shape.append(1 << (prev - qubit - 1))
        shape.append(2)
        prev = qubit
    shape.append(1 << prev)
    position = {qubit: 2 + 2 * i for i, qubit in enumerate(descending)}
    return states.reshape(shape), [position[qubit] for qubit in targets]


def _shared_diag_tiled(states, diagonal, targets, num_qubits):
    """Row-wise mirror of :func:`kernels._apply_diag_tiled` (batch=1 shape).

    The tiled pattern of one state divides each row exactly, so one
    broadcast multiply covers all rows with the same per-element arithmetic.
    """
    dim = states.shape[1]
    low = [t for t in targets if (1 << t) < kernels._DIAG_TILE_RUN]
    high = sorted(t for t in targets if t not in low)
    length = 1 << (max(low) + 1)
    offsets = np.arange(length)
    pattern = np.zeros(length, dtype=np.intp)
    for position, target in enumerate(targets):
        if target in low:
            pattern += ((offsets // (1 << target)) & 1) << position
    block = (1 << min(high)) if high else dim
    repeats = 1
    while length * repeats * 2 <= min(block, kernels._DIAG_TILE_TARGET):
        repeats *= 2
    if high:
        view, axes = _batch_view(states, high, num_qubits)
    for bits in range(1 << len(high)):
        offset = 0
        for position, target in enumerate(targets):
            if target in low:
                continue
            offset |= ((bits >> high.index(target)) & 1) << position
        entries = diagonal[pattern + offset]
        if np.all(entries == 1):
            continue
        tile = np.tile(entries, repeats)
        if high:
            index = [slice(None)] * view.ndim
            for rank, axis in enumerate(axes):
                index[axis] = (bits >> rank) & 1
            sub = view[tuple(index)]
            sub.reshape(sub.shape[:-1] + (-1, tile.size))[...] *= tile
        else:
            states.reshape(-1, tile.size)[...] *= tile


def _apply_shared_sliced(states, descriptor, targets, num_qubits):
    """Apply a non-dense shared descriptor to every row at once."""
    if descriptor[0] == "diag":
        if kernels._diag_tile_selected(states.shape[1], targets, 1):
            _shared_diag_tiled(states, descriptor[1], targets, num_qubits)
            return
        if len(targets) == 1:
            d0, d1 = descriptor[1]
            stride = 1 << targets[0]
            narrow = states.reshape(-1, 2, stride)
            if d0 != 1:
                narrow[:, 0, :] *= d0
            if d1 != 1:
                narrow[:, 1, :] *= d1
            return
    view, axes = _batch_view(states, targets, num_qubits)
    kernels._dispatch_sliced(view, axes, descriptor)


def _apply_shared_dense(states, scratch, matrix, lowest):
    """Dense shared gate on a contiguous ascending block for all rows.

    The flat reshape never crosses a row boundary (the gate's span divides
    ``2**n``), so this is the per-row low/high dense kernel verbatim.
    Returns the ping-ponged ``(states, scratch)`` pair.
    """
    dim = matrix.shape[0]
    stride = 1 << lowest
    if lowest <= kernels._KRON_GEMM_MAX_TARGET:
        operator = kernels._kron_gemm_operator(matrix, stride)
        width = dim * stride
        np.matmul(
            states.reshape(-1, width), operator,
            out=scratch.reshape(-1, width),
        )
    else:
        np.matmul(
            matrix,
            states.reshape(-1, dim, stride),
            out=scratch.reshape(-1, dim, stride),
        )
    return scratch, states


def _make_shared_step(op, targets, num_qubits):
    """Compile one binding-independent operation into a step tuple.

    Mirrors the dispatch decisions of :func:`kernels.apply_gate` exactly so
    every row sees the same arithmetic the single-state path would use.
    """
    diagonal = getattr(op, "diagonal", None)
    if diagonal is not None:
        vector = np.ascontiguousarray(diagonal, dtype=complex)
        return ("ssliced", ("diag", vector), targets)
    if len(targets) > kernels._MAX_ANALYZED_QUBITS:
        return ("srow", op, targets)
    matrix = np.ascontiguousarray(op.to_matrix(), dtype=complex)
    descriptor = kernels._analysis(matrix)
    if descriptor[0] != "dense":
        return ("ssliced", descriptor, targets)
    if len(targets) > 1 and not kernels._is_contiguous_block(targets):
        return ("srow", op, targets)
    lowest = min(targets)
    positions = [t - lowest for t in targets]
    if positions != list(range(len(targets))):
        matrix = kernels._permute_gate_qubits(matrix, positions)
    return ("sdense", matrix, lowest)


# ---------------------------------------------------------------------------
# Per-binding matrix builders
#
# Each mirrors the corresponding ``Gate._matrix`` formula with the scalar
# ``math``/``cmath`` calls replaced by their bitwise-equal numpy
# vectorizations over the ``(batch,)`` angle vectors.
# ---------------------------------------------------------------------------


def _build_rx(batch, theta):
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    mats = np.empty((batch, 2, 2), dtype=complex)
    mats[:, 0, 0] = cos
    mats[:, 0, 1] = -1j * sin
    mats[:, 1, 0] = -1j * sin
    mats[:, 1, 1] = cos
    return mats


def _build_ry(batch, theta):
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    mats = np.empty((batch, 2, 2), dtype=complex)
    mats[:, 0, 0] = cos
    mats[:, 0, 1] = -sin
    mats[:, 1, 0] = sin
    mats[:, 1, 1] = cos
    return mats


def _build_u2(batch, phi, lam):
    mats = np.empty((batch, 2, 2), dtype=complex)
    mats[:, 0, 0] = 1
    mats[:, 0, 1] = -np.exp(1j * lam)
    mats[:, 1, 0] = np.exp(1j * phi)
    mats[:, 1, 1] = np.exp(1j * (phi + lam))
    mats *= _SQRT2_INV
    return mats


def _build_u3(batch, theta, phi, lam):
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    mats = np.empty((batch, 2, 2), dtype=complex)
    mats[:, 0, 0] = cos
    mats[:, 0, 1] = -np.exp(1j * lam) * sin
    mats[:, 1, 0] = np.exp(1j * phi) * sin
    mats[:, 1, 1] = np.exp(1j * (phi + lam)) * cos
    return mats


def _diag_rz(batch, phi):
    entries = np.empty((batch, 2), dtype=complex)
    entries[:, 0] = np.exp(-1j * phi / 2)
    entries[:, 1] = np.exp(1j * phi / 2)
    return entries


def _diag_u1(batch, lam):
    entries = np.empty((batch, 2), dtype=complex)
    entries[:, 0] = 1
    entries[:, 1] = np.exp(1j * lam)
    return entries


def _diag_crz(batch, theta):
    entries = np.empty((batch, 4), dtype=complex)
    entries[:, 0] = 1
    entries[:, 1] = np.exp(-1j * theta / 2)
    entries[:, 2] = 1
    entries[:, 3] = np.exp(1j * theta / 2)
    return entries


def _diag_cu1(batch, lam):
    entries = np.empty((batch, 4), dtype=complex)
    entries[:, 0] = 1
    entries[:, 1] = 1
    entries[:, 2] = 1
    entries[:, 3] = np.exp(1j * lam)
    return entries


def _diag_rzz(batch, theta):
    plus = np.exp(1j * theta / 2)
    minus = np.exp(-1j * theta / 2)
    entries = np.empty((batch, 4), dtype=complex)
    entries[:, 0] = minus
    entries[:, 1] = plus
    entries[:, 2] = plus
    entries[:, 3] = minus
    return entries


#: name -> (step kind, builder).  ``bdense1`` applies a stacked (B, 2, 2)
#: matmul, ``bdiag`` a broadcast diagonal multiply, ``bctrl`` the dense-1q
#: tensor update on the control==1 slice (matching the structural ``ctrl``
#: classification of crx/cry/cu3 at generic angles).
_BOUND_BUILDERS = {
    "rx": ("bdense1", _build_rx),
    "ry": ("bdense1", _build_ry),
    "u2": ("bdense1", _build_u2),
    "u3": ("bdense1", _build_u3),
    "u": ("bdense1", _build_u3),
    "rz": ("bdiag", _diag_rz),
    "u1": ("bdiag", _diag_u1),
    "p": ("bdiag", _diag_u1),
    "crz": ("bdiag", _diag_crz),
    "cu1": ("bdiag", _diag_cu1),
    "cp": ("bdiag", _diag_cu1),
    "rzz": ("bdiag", _diag_rzz),
    "crx": ("bctrl", _build_rx),
    "cry": ("bctrl", _build_ry),
    "cu3": ("bctrl", _build_u3),
}


# ---------------------------------------------------------------------------
# Per-binding step application
# ---------------------------------------------------------------------------


def _kron_stack(mats, stride):
    """Stacked ``kron(m.T, I_stride)`` for a ``(B, 2, 2)`` matrix stack."""
    count = mats.shape[0]
    width = 2 * stride
    operators = np.zeros((count, width, width), dtype=complex)
    diag = np.arange(stride)
    for i in range(2):
        for j in range(2):
            operators[:, i * stride + diag, j * stride + diag] = (
                mats[:, j, i][:, None]
            )
    return operators


def _apply_bound_dense1(states, scratch, mats, target):
    """Per-binding dense 1q gate: one broadcast matmul over the row stack."""
    count = states.shape[0]
    stride = 1 << target
    if target <= kernels._KRON_GEMM_MAX_TARGET:
        width = 2 * stride
        operators = _kron_stack(mats, stride)
        np.matmul(
            states.reshape(count, -1, width), operators,
            out=scratch.reshape(count, -1, width),
        )
    else:
        np.matmul(
            mats[:, None, :, :],
            states.reshape(count, -1, 2, stride),
            out=scratch.reshape(count, -1, 2, stride),
        )
    return scratch, states


def _bound_diag_tiled(states, entries, targets, num_qubits):
    """Per-binding analogue of :func:`_shared_diag_tiled`."""
    count, dim = states.shape
    low = [t for t in targets if (1 << t) < kernels._DIAG_TILE_RUN]
    high = sorted(t for t in targets if t not in low)
    length = 1 << (max(low) + 1)
    offsets = np.arange(length)
    pattern = np.zeros(length, dtype=np.intp)
    for position, target in enumerate(targets):
        if target in low:
            pattern += ((offsets // (1 << target)) & 1) << position
    block = (1 << min(high)) if high else dim
    repeats = 1
    while length * repeats * 2 <= min(block, kernels._DIAG_TILE_TARGET):
        repeats *= 2
    if high:
        view, axes = _batch_view(states, high, num_qubits)
    for bits in range(1 << len(high)):
        offset = 0
        for position, target in enumerate(targets):
            if target in low:
                continue
            offset |= ((bits >> high.index(target)) & 1) << position
        block_entries = entries[:, pattern + offset]
        if np.all(block_entries == 1):
            continue
        tile = np.tile(block_entries, (1, repeats))
        if high:
            index = [slice(None)] * view.ndim
            for rank, axis in enumerate(axes):
                index[axis] = (bits >> rank) & 1
            sub = view[tuple(index)]
            reshaped = sub.reshape(sub.shape[:-1] + (-1, tile.shape[1]))
            reshaped *= tile.reshape(
                (count,) + (1,) * (reshaped.ndim - 2) + (tile.shape[1],)
            )
        else:
            states.reshape(count, -1, tile.shape[1])[...] *= tile[:, None, :]


def _apply_bound_diag(states, entries, targets, num_qubits):
    """Per-binding diagonal: broadcast multiply each basis slice.

    An entry column is skipped only when it is 1 for *every* binding (the
    structural constants of cu1/crz); a generic angle landing exactly on a
    unit entry for some binding is the documented ``-0.0`` corner.
    """
    count, dim = states.shape
    if kernels._diag_tile_selected(dim, targets, 1):
        _bound_diag_tiled(states, entries, targets, num_qubits)
        return
    if len(targets) == 1:
        stride = 1 << targets[0]
        narrow = states.reshape(count, -1, 2, stride)
        for j in range(2):
            column = entries[:, j]
            if np.all(column == 1):
                continue
            narrow[:, :, j, :] *= column[:, None, None]
        return
    view, axes = _batch_view(states, targets, num_qubits)
    for j in range(entries.shape[1]):
        column = entries[:, j]
        if np.all(column == 1):
            continue
        index = [slice(None)] * view.ndim
        for position, axis in enumerate(axes):
            index[axis] = (j >> position) & 1
        sub = view[tuple(index)]
        sub *= column.reshape((count,) + (1,) * (sub.ndim - 1))


def _bound_dense1_tensor(view, axis, mats):
    """Per-binding mirror of :func:`kernels._apply_dense_1q_tensor`."""
    count = mats.shape[0]
    index0 = kernels._axis_slice(view, axis, 0)
    index1 = kernels._axis_slice(view, axis, 1)
    a0 = view[index0]
    a1 = view[index1]
    shape = (count,) + (1,) * (a0.ndim - 1)
    m00 = mats[:, 0, 0].reshape(shape)
    m01 = mats[:, 0, 1].reshape(shape)
    m10 = mats[:, 1, 0].reshape(shape)
    m11 = mats[:, 1, 1].reshape(shape)
    new0 = m00 * a0 + m01 * a1
    view[index1] = m10 * a0 + m11 * a1
    view[index0] = new0


def _apply_bound_ctrl(states, mats, targets, num_qubits):
    """Controlled per-binding dense 1q (crx/cry/cu3): slice then update."""
    view, axes = _batch_view(states, targets, num_qubits)
    control_axis = axes[0]
    sub = view[kernels._axis_slice(view, control_axis, 1)]
    target_axis = axes[1] - 1 if axes[1] > control_axis else axes[1]
    _bound_dense1_tensor(sub, target_axis, mats)


# ---------------------------------------------------------------------------
# Program compilation and execution
# ---------------------------------------------------------------------------


class BroadcastProgram:
    """One circuit structure compiled against a batch of parameter values.

    Every ``circuit.data`` position maps to a precompiled step (or ``None``
    for barriers/measures); applying a subset of positions — the estimator
    replays shared prefixes and per-term suffixes — slices per-binding
    arrays by batch-row range so chunked execution composes freely.
    """

    def __init__(self, circuit, parameter_values, parameters=None):
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self.plan = get_bind_plan(circuit)
        values = np.asarray(parameter_values, dtype=float)
        if values.ndim != 2:
            raise SimulatorError(
                "parameter values must be a (batch, num_parameters) array"
            )
        if values.shape[0] < 1:
            raise SimulatorError("parameter value batch is empty")
        if parameters is not None:
            parameters = list(parameters)
            if set(parameters) != set(self.plan.ordered) or len(
                parameters
            ) != len(self.plan.ordered):
                raise SimulatorError(
                    "parameters do not match the circuit's free parameters"
                )
            if values.shape[1] != len(parameters):
                raise SimulatorError(
                    f"parameter values must have shape (batch, "
                    f"{len(parameters)}), got {values.shape}"
                )
            order = [parameters.index(p) for p in self.plan.ordered]
            values = np.ascontiguousarray(values[:, order])
        #: ``(batch, num_parameters)`` in ``plan.ordered`` column order.
        self.values = values
        self.batch = values.shape[0]
        resolved = self.plan.resolve_arrays(values)
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        #: measured qubit -> clbit (data order, later measures overwrite).
        self.measures: dict = {}
        self.steps: list = []
        for index, item in enumerate(circuit.data):
            op = item.operation
            if op.name == "barrier":
                self.steps.append(None)
                continue
            if op.name == "measure":
                self.measures[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
                self.steps.append(None)
                continue
            if op.condition is not None:
                raise SimulatorError(
                    "classical conditions require the qasm simulator"
                )
            if op.name == "reset":
                raise SimulatorError("reset requires the qasm simulator")
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            targets = [qubit_index[q] for q in item.qubits]
            if index in resolved:
                self.steps.append(
                    self._make_bound_step(op, targets, resolved[index])
                )
            else:
                self.steps.append(
                    _make_shared_step(op, targets, self.num_qubits)
                )

    def _make_bound_step(self, op, targets, resolved):
        slots, angle_vectors = resolved
        entry = _BOUND_BUILDERS.get(op.name)
        if entry is None:
            # No vectorized builder (rxx/ryy/custom gates): bind and apply
            # row by row through the ordinary kernels.
            return ("brow", op, slots, angle_vectors, targets)
        kind, builder = entry
        arguments = []
        for slot in range(len(op.params)):
            if slot in slots:
                arguments.append(angle_vectors[slots.index(slot)])
            else:
                arguments.append(np.full(self.batch, float(op.params[slot])))
        payload = builder(self.batch, *arguments)
        return (kind, payload, targets)

    def apply(self, states, scratch, positions, rows):
        """Run the steps at ``positions`` over ``states`` rows ``rows``.

        ``rows`` is the slice of the full batch these state rows represent;
        per-binding step payloads are sliced to match.  Returns the
        (possibly swapped) ``(states, scratch)`` buffer pair.
        """
        num_qubits = self.num_qubits
        for position in positions:
            step = self.steps[position]
            if step is None:
                continue
            kind = step[0]
            if kind == "sdense":
                states, scratch = _apply_shared_dense(
                    states, scratch, step[1], step[2]
                )
            elif kind == "ssliced":
                _apply_shared_sliced(states, step[1], step[2], num_qubits)
            elif kind == "srow":
                for row in range(states.shape[0]):
                    states[row] = kernels.apply_gate(
                        states[row], step[1], step[2], num_qubits
                    )
            elif kind == "bdense1":
                states, scratch = _apply_bound_dense1(
                    states, scratch, step[1][rows], step[2][0]
                )
            elif kind == "bdiag":
                _apply_bound_diag(
                    states, step[1][rows], step[2], num_qubits
                )
            elif kind == "bctrl":
                _apply_bound_ctrl(
                    states, step[1][rows], step[2], num_qubits
                )
            else:  # brow
                _, op, slots, angle_vectors, targets = step
                start = rows.start or 0
                for row in range(states.shape[0]):
                    params = list(op.params)
                    for slot, vector in zip(slots, angle_vectors):
                        params[slot] = float(vector[start + row])
                    bound = op.copy()
                    bound._params = params
                    bound._definition = None
                    states[row] = kernels.apply_gate(
                        states[row], bound, targets, num_qubits
                    )
        return states, scratch

    def fresh_buffers(self, rows):
        """A zeroed ``|0...0>`` row stack and a matching scratch buffer."""
        states = np.zeros((rows, 1 << self.num_qubits), dtype=complex)
        states[:, 0] = 1.0
        return states, np.empty_like(states)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def evolve_broadcast(circuit, parameter_values, parameters=None):
    """Final statevectors for every binding, as a ``(batch, 2**n)`` array.

    Statevector-simulator semantics: barriers skipped, trailing measures
    ignored, conditions/reset/mid-circuit measurement rejected.  Row ``b``
    is bitwise identical to ``StatevectorSimulator().run(bound_b)``.
    """
    if circuit.num_qubits == 0:
        raise SimulatorError("cannot simulate a circuit with no qubits")
    measured: set = set()
    for item in circuit.data:
        op = item.operation
        if op.name == "barrier":
            continue
        if op.name == "measure":
            measured.add(item.qubits[0])
            continue
        if op.condition is not None:
            raise SimulatorError(
                "classical conditions require the qasm simulator"
            )
        if op.name == "reset":
            raise SimulatorError("reset requires the qasm simulator")
        if not isinstance(op, Gate):
            raise SimulatorError(f"cannot simulate operation '{op.name}'")
        for qubit in item.qubits:
            if qubit in measured:
                raise SimulatorError(
                    "gate after measurement requires the qasm simulator"
                )
    program = BroadcastProgram(circuit, parameter_values, parameters)
    positions = range(len(circuit.data))
    out = np.empty((program.batch, 1 << program.num_qubits), dtype=complex)
    for start, stop in broadcast_chunk_bounds(
        program.batch, program.num_qubits
    ):
        with get_tracer().span("chunk:evolve", attributes={
            "rows": stop - start, "binding_start": start,
        }):
            states, scratch = program.fresh_buffers(stop - start)
            states, _ = program.apply(
                states, scratch, positions, slice(start, stop)
            )
            out[start:stop] = states
    return out


def sample_broadcast(circuit, parameter_values, parameters, shots, seeds, *,
                     elide_diagonals=True):
    """Sampled counts per binding, one statevector pass for the whole batch.

    Entry ``b`` is bitwise identical to
    ``QasmSimulator().run(bound_b, shots, seed=seeds[b])`` (noise-free,
    samplable circuits only).  Returns ``[{"counts", "shots"}, ...]``.
    """
    if shots < 1:
        raise SimulatorError("shots must be positive")
    if circuit.num_qubits == 0:
        raise SimulatorError("circuit has no qubits")
    if circuit.num_clbits == 0:
        raise SimulatorError(
            "qasm simulation needs classical bits; add measurements"
        )
    stripped = QasmSimulator._strip_idle_qubits(circuit)
    if not QasmSimulator._samplable(stripped):
        raise SimulatorError(
            "broadcast sampling requires a samplable circuit "
            "(no reset, conditions, or mid-circuit measurement)"
        )
    program = BroadcastProgram(stripped, parameter_values, parameters)
    if len(seeds) != program.batch:
        raise SimulatorError("need one seed per parameter binding")
    if elide_diagonals:
        bound0 = stripped.bind_parameters(list(program.values[0]))
        elided = QasmSimulator._terminal_diagonals(bound0.data)
    else:
        elided = set()
    positions = [
        p for p in range(len(stripped.data)) if p not in elided
    ]
    width = stripped.num_clbits
    results = []
    for start, stop in broadcast_chunk_bounds(
        program.batch, program.num_qubits
    ):
        with get_tracer().span("chunk:sample", attributes={
            "rows": stop - start, "binding_start": start, "shots": shots,
        }):
            states, scratch = program.fresh_buffers(stop - start)
            states, _ = program.apply(
                states, scratch, positions, slice(start, stop)
            )
            for row in range(stop - start):
                rng = np.random.default_rng(seeds[start + row])
                outcomes = _sample_outcomes(states[row], shots, rng)
                values = _zeros_for_width(shots, width)
                for qubit, clbit in program.measures.items():
                    bits = (outcomes >> qubit) & 1
                    values |= bits.astype(values.dtype) << clbit
                counts, _memory = bin_counts(values, width)
                results.append({"counts": counts, "shots": shots})
    return results


def estimator_broadcastable(circuit) -> bool:
    """Whether the shots-mode broadcast estimator reproduces the loop path.

    The per-binding comparator routes each term circuit through
    ``QasmSimulator.run``, which strips idle qubits; a template leaving any
    qubit untouched would then be sampled at a smaller width than the
    broadcast evolution uses.  Measurements in the template land
    mid-circuit after composition.  Both cases fall back to the loop.
    """
    if not broadcast_supported(circuit):
        return False
    used: set = set()
    for item in circuit.data:
        if item.operation.name == "measure":
            return False
        used.update(item.qubits)
    return len(used) == circuit.num_qubits


def estimate_broadcast_shots(circuit, parameter_values, parameters,
                             observable, shots, seeds):
    """Shots-mode ``<H>`` per binding via shared-prefix broadcast sampling.

    Entry ``b`` is bitwise identical to
    ``ExpectationEstimator(observable, mode="shots", shots=shots,
    seed=seeds[b]).estimate(bound_b)``: same derived per-term seeds, same
    terminal-diagonal elision, same float accumulation order.

    The ansatz positions every term's elision would drop form a tail
    ``[split, len)``; everything before ``split`` is evolved once per chunk
    and each term replays only its non-elided tail plus its basis-change
    rotations before sampling.
    """
    from repro.algorithms.expectation import measurement_basis_change
    from repro.qobj.assembler import derive_experiment_seeds

    num_qubits = circuit.num_qubits
    if observable.num_qubits != num_qubits:
        raise SimulatorError("circuit width does not match the observable")
    if not estimator_broadcastable(circuit):
        raise SimulatorError(
            "broadcast estimation requires a measurement-free template "
            "using every qubit"
        )
    program = BroadcastProgram(circuit, parameter_values, parameters)
    if len(seeds) != program.batch:
        raise SimulatorError("need one seed per parameter binding")
    bound0 = circuit.bind_parameters(list(program.values[0]))

    base = 0.0
    measured_terms = []  # (coeff_real, pauli, suffix_positions, rot_steps)
    tail: set = set()
    term_infos = []
    for index, (coeff, pauli) in enumerate(observable.terms):
        if abs(coeff.imag) > 1e-9:
            raise SimulatorError("shot estimation needs real coefficients")
        if not pauli.support:
            base += coeff.real
            continue
        composed = QuantumCircuit(num_qubits, num_qubits,
                                  name=f"term-{index}")
        composed.compose(bound0, qubits=composed.qubits, inplace=True)
        measurement_basis_change(pauli, composed)
        for qubit in pauli.support:
            composed.measure(qubit, qubit)
        elided = {
            p
            for p in QasmSimulator._terminal_diagonals(composed.data)
            if p < len(circuit.data)
        }
        tail |= elided
        term_infos.append((coeff.real, pauli, elided))
    if not term_infos:
        return [base] * program.batch
    split = min(tail) if tail else len(circuit.data)
    for coeff_real, pauli, elided in term_infos:
        suffix = [
            p for p in range(split, len(circuit.data)) if p not in elided
        ]
        rot_steps = []
        for qubit in range(num_qubits):
            char = pauli.char(qubit)
            if char == "X":
                rot_steps.append(("h", qubit))
            elif char == "Y":
                rot_steps.append(("sdg", qubit))
                rot_steps.append(("h", qubit))
        measured_terms.append((coeff_real, pauli, suffix, rot_steps))

    from repro.circuit.library.standard_gates import get_standard_gate

    rot_step_cache: dict = {}

    def shared_rot_step(name, qubit):
        key = (name, qubit)
        if key not in rot_step_cache:
            rot_step_cache[key] = _make_shared_step(
                get_standard_gate(name), [qubit], num_qubits
            )
        return rot_step_cache[key]

    term_count = len(measured_terms)
    energies = [base] * program.batch
    prefix_positions = range(split)
    for start, stop in broadcast_chunk_bounds(program.batch, num_qubits):
        with get_tracer().span("chunk:estimate", attributes={
            "rows": stop - start, "binding_start": start, "shots": shots,
        }):
            rows = slice(start, stop)
            prefix, scratch = program.fresh_buffers(stop - start)
            prefix, scratch = program.apply(
                prefix, scratch, prefix_positions, rows
            )
            work = np.empty_like(prefix)
            term_seeds = [
                derive_experiment_seeds(seeds[start + row], term_count)
                for row in range(stop - start)
            ]
            for term_index, (coeff_real, pauli, suffix, rot_steps) in enumerate(
                measured_terms
            ):
                np.copyto(work, prefix)
                states, aux = program.apply(work, scratch, suffix, rows)
                for name, qubit in rot_steps:
                    step = shared_rot_step(name, qubit)
                    if step[0] == "sdense":
                        states, aux = _apply_shared_dense(
                            states, aux, step[1], step[2]
                        )
                    else:
                        _apply_shared_sliced(
                            states, step[1], step[2], num_qubits
                        )
                # <P> from counts is (#even-parity - #odd-parity) / shots — an
                # exact integer accumulator divided once — so computing the
                # parity tally straight off the outcome integers reproduces
                # expectation_from_counts(bin_counts(...)) bitwise while
                # skipping the bitstring rendering entirely.
                mask = 0
                for qubit in pauli.support:
                    mask |= 1 << qubit
                for row in range(stop - start):
                    rng = np.random.default_rng(term_seeds[row][term_index])
                    outcomes = _sample_outcomes(states[row], shots, rng)
                    odd = int(
                        (np.bitwise_count(outcomes & mask) & 1).sum()
                    )
                    energies[start + row] += coeff_real * (
                        (shots - 2 * odd) / shots
                    )
                # Dense ping-pong permutes {work, scratch}; prefix is never
                # handed out as an output buffer, so rebinding keeps the trio
                # distinct for the next term's copy.
                work, scratch = states, aux
    return energies
