"""Exact noisy simulation via density matrices.

Where the trajectory-based :class:`~repro.simulators.qasm_simulator.QasmSimulator`
samples noise, this backend applies every channel exactly, so expectation
values and probabilities are deterministic — the right tool for the paper's
"observe the effect of noise" workflow and for Ignis-style fits.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError
from repro.quantum_info.density_matrix import DensityMatrix


class DensityMatrixSimulator:
    """Evolves a density matrix through a circuit with exact noise."""

    name = "density_matrix_simulator"

    def __init__(self, max_qubits: int = 10):
        self._max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit, noise_model=None) -> DensityMatrix:
        """Return the final density matrix (measurements must be terminal)."""
        num_qubits = circuit.num_qubits
        if num_qubits == 0:
            raise SimulatorError("circuit has no qubits")
        if num_qubits > self._max_qubits:
            raise SimulatorError(
                f"{num_qubits} qubits exceeds the density-matrix limit "
                f"({self._max_qubits})"
            )
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        state = DensityMatrix.zero_state(num_qubits)
        measured: set = set()
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if op.name == "measure":
                measured.add(item.qubits[0])
                continue
            if op.condition is not None or op.name == "reset":
                raise SimulatorError(
                    f"'{op.name}' with conditions/reset requires the qasm "
                    "simulator"
                )
            if any(q in measured for q in item.qubits):
                raise SimulatorError("mid-circuit measurement not supported")
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            targets = [qubit_index[q] for q in item.qubits]
            state = state.evolve(op.to_matrix(), qargs=targets)
            if noise_model is not None:
                error = noise_model.gate_error(op.name, targets)
                if error is not None:
                    state = state.apply_channel(error.kraus_operators, targets)
        return state

    def counts(self, circuit: QuantumCircuit, shots: int = 1024, seed=None,
               noise_model=None, shot_chunks=None) -> dict:
        """Sample counts from the exact final distribution.

        Readout errors from ``noise_model`` are applied bit-wise to each
        sampled outcome.  Keys cover all classical bits, clbit 0 rightmost.

        ``shot_chunks`` — inline shot-chunk layout (list of
        ``{"start", "stop", "seed"}``): the exact density matrix is
        derived once, and each chunk's outcomes are drawn with a fresh
        generator seeded by the chunk's derived seed — bit-identical to
        separate ``counts(shots=stop-start, seed=seed)`` calls merged by
        key-wise addition.
        """
        if circuit.num_clbits == 0:
            raise SimulatorError("counts need classical bits; add measurements")
        state = self.run(circuit, noise_model=noise_model)
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        qubit_to_clbit = {}
        for item in circuit.data:
            if item.operation.name == "measure":
                qubit_to_clbit[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
        probs = state.probabilities()
        probs = probs / probs.sum()
        if shot_chunks:
            if sum(c["stop"] - c["start"] for c in shot_chunks) != shots:
                raise SimulatorError(
                    "shot_chunks layout does not cover the requested shots"
                )
            chunks = [
                (chunk["stop"] - chunk["start"], chunk["seed"])
                for chunk in shot_chunks
            ]
        else:
            chunks = [(shots, seed)]
        counts: dict[str, int] = {}
        for chunk_shots, chunk_seed in chunks:
            self._sample_counts(
                counts, probs, qubit_to_clbit, circuit.num_clbits,
                chunk_shots, np.random.default_rng(chunk_seed),
                noise_model,
            )
        return {"counts": counts, "shots": shots}

    @staticmethod
    def _sample_counts(counts, probs, qubit_to_clbit, width, shots, rng,
                       noise_model) -> None:
        """Accumulate ``shots`` sampled outcomes into ``counts``.

        The per-outcome loop stays scalar on purpose: readout errors draw
        from the generator per measured bit, and that consumption order
        is part of the seeded contract.
        """
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        for outcome in outcomes:
            value = 0
            for qubit, clbit in qubit_to_clbit.items():
                bit = (int(outcome) >> qubit) & 1
                if noise_model is not None:
                    readout = noise_model.readout_error(qubit)
                    if readout is not None:
                        bit = readout.sample(bit, rng)
                if bit:
                    value |= 1 << clbit
            key = format(value, f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
