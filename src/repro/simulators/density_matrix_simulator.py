"""Exact noisy simulation via density matrices.

Where the trajectory-based :class:`~repro.simulators.qasm_simulator.QasmSimulator`
samples noise, this backend applies every channel exactly, so expectation
values and probabilities are deterministic — the right tool for the paper's
"observe the effect of noise" workflow and for Ignis-style fits.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError
from repro.quantum_info.density_matrix import DensityMatrix


class DensityMatrixSimulator:
    """Evolves a density matrix through a circuit with exact noise."""

    name = "density_matrix_simulator"

    def __init__(self, max_qubits: int = 10):
        self._max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit, noise_model=None) -> DensityMatrix:
        """Return the final density matrix (measurements must be terminal)."""
        num_qubits = circuit.num_qubits
        if num_qubits == 0:
            raise SimulatorError("circuit has no qubits")
        if num_qubits > self._max_qubits:
            raise SimulatorError(
                f"{num_qubits} qubits exceeds the density-matrix limit "
                f"({self._max_qubits})"
            )
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        state = DensityMatrix.zero_state(num_qubits)
        measured: set = set()
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if op.name == "measure":
                measured.add(item.qubits[0])
                continue
            if op.condition is not None or op.name == "reset":
                raise SimulatorError(
                    f"'{op.name}' with conditions/reset requires the qasm "
                    "simulator"
                )
            if any(q in measured for q in item.qubits):
                raise SimulatorError("mid-circuit measurement not supported")
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            targets = [qubit_index[q] for q in item.qubits]
            state = state.evolve(op.to_matrix(), qargs=targets)
            if noise_model is not None:
                error = noise_model.gate_error(op.name, targets)
                if error is not None:
                    state = state.apply_channel(error.kraus_operators, targets)
        return state

    def counts(self, circuit: QuantumCircuit, shots: int = 1024, seed=None,
               noise_model=None) -> dict:
        """Sample counts from the exact final distribution.

        Readout errors from ``noise_model`` are applied bit-wise to each
        sampled outcome.  Keys cover all classical bits, clbit 0 rightmost.
        """
        if circuit.num_clbits == 0:
            raise SimulatorError("counts need classical bits; add measurements")
        state = self.run(circuit, noise_model=noise_model)
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        qubit_to_clbit = {}
        for item in circuit.data:
            if item.operation.name == "measure":
                qubit_to_clbit[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
        rng = np.random.default_rng(seed)
        probs = state.probabilities()
        probs = probs / probs.sum()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        width = circuit.num_clbits
        counts: dict[str, int] = {}
        for outcome in outcomes:
            value = 0
            for qubit, clbit in qubit_to_clbit.items():
                bit = (int(outcome) >> qubit) & 1
                if noise_model is not None:
                    readout = noise_model.readout_error(qubit)
                    if readout is not None:
                        bit = readout.sample(bit, rng)
                if bit:
                    value |= 1 << clbit
            key = format(value, f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return {"counts": counts, "shots": shots}
