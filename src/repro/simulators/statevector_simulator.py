"""Ideal statevector simulation — the workhorse array-based simulator.

Implements exactly the scheme of Sec. V-A: simulation "boils down to a
sequence of matrix-vector multiplications", with the vector stored densely
(2**n amplitudes).  The decision-diagram simulator in
:mod:`repro.simulators.dd_simulator` is the paper's improved alternative.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError
from repro.quantum_info.statevector import Statevector
from repro.simulators import kernels


class StatevectorSimulator:
    """Evolves |0...0> through a unitary-only circuit."""

    name = "statevector_simulator"

    def __init__(self, max_qubits: int = 24):
        self._max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit, initial_state=None) -> Statevector:
        """Simulate ``circuit`` and return the final state.

        Barriers are skipped; trailing measurements (nothing after them on
        any qubit) are ignored so circuits written for shot-based backends
        also run here.  Mid-circuit measurement, reset, or classical
        conditions raise :class:`SimulatorError`.
        """
        num_qubits = circuit.num_qubits
        if num_qubits == 0:
            raise SimulatorError("cannot simulate a circuit with no qubits")
        if num_qubits > self._max_qubits:
            raise SimulatorError(
                f"{num_qubits} qubits exceeds the dense-array limit "
                f"({self._max_qubits}); consider the DD simulator"
            )
        if initial_state is None:
            state = np.zeros(2**num_qubits, dtype=complex)
            state[0] = 1.0
        else:
            init = (
                initial_state.data
                if isinstance(initial_state, Statevector)
                else np.asarray(initial_state, dtype=complex)
            )
            if init.shape != (2**num_qubits,):
                raise SimulatorError("initial state has the wrong dimension")
            state = init.copy()
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        measured: set = set()
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if op.name == "measure":
                measured.add(item.qubits[0])
                continue
            if op.condition is not None:
                raise SimulatorError(
                    "classical conditions require the qasm simulator"
                )
            if op.name == "reset":
                raise SimulatorError("reset requires the qasm simulator")
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate operation '{op.name}'")
            for qubit in item.qubits:
                if qubit in measured:
                    raise SimulatorError(
                        "gate after measurement requires the qasm simulator"
                    )
            targets = [qubit_index[q] for q in item.qubits]
            state = kernels.apply_gate(
                state, op, targets, num_qubits, mutate=True
            )
        return Statevector(state, validate=False)

    def run_batch(self, circuit: QuantumCircuit, parameter_values,
                  parameters=None) -> list[Statevector]:
        """Evolve one parameterized template at a batch of value sets.

        Row ``b`` of ``parameter_values`` (columns ordered like
        ``parameters``, or sorted by name when omitted) yields a state
        bitwise identical to ``self.run(circuit.bind_parameters(row))`` —
        the broadcast engine applies each binding-independent gate across
        the whole batch in one vectorized kernel pass.
        """
        from repro.simulators.batched import evolve_broadcast

        if circuit.num_qubits > self._max_qubits:
            raise SimulatorError(
                f"{circuit.num_qubits} qubits exceeds the dense-array limit "
                f"({self._max_qubits}); consider the DD simulator"
            )
        states = evolve_broadcast(circuit, parameter_values, parameters)
        return [Statevector(row, validate=False) for row in states]
