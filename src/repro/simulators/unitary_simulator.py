"""Full-unitary simulation: builds the circuit's ``2**n x 2**n`` matrix."""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError
from repro.quantum_info.operator import Operator


class UnitarySimulator:
    """Computes the unitary matrix realized by a gate-only circuit."""

    name = "unitary_simulator"

    def __init__(self, max_qubits: int = 12):
        self._max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit) -> Operator:
        """Return the circuit unitary as an :class:`Operator`."""
        if circuit.num_qubits > self._max_qubits:
            raise SimulatorError(
                f"{circuit.num_qubits} qubits exceeds the unitary limit "
                f"({self._max_qubits})"
            )
        for item in circuit.data:
            if item.operation.name in ("measure", "reset"):
                raise SimulatorError(
                    f"'{item.operation.name}' is not unitary; remove it or "
                    "use the qasm simulator"
                )
        return Operator.from_circuit(circuit)
