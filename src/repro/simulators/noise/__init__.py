"""Noise channels and noise models for Aer-style noisy simulation."""

from repro.simulators.noise.errors import (
    QuantumError,
    ReadoutError,
    amplitude_damping_error,
    bit_flip_error,
    coherent_unitary_error,
    depolarizing_error,
    kraus_error,
    pauli_error,
    phase_damping_error,
    phase_flip_error,
    thermal_relaxation_error,
)
from repro.simulators.noise.model import NoiseModel

__all__ = [
    "NoiseModel",
    "QuantumError",
    "ReadoutError",
    "amplitude_damping_error",
    "bit_flip_error",
    "coherent_unitary_error",
    "depolarizing_error",
    "kraus_error",
    "pauli_error",
    "phase_damping_error",
    "phase_flip_error",
    "thermal_relaxation_error",
]
