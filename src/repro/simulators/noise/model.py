"""Noise model: attaches error channels to gates and measurements.

Mirrors Aer's ``NoiseModel``: errors can be registered for all qubits or for
specific qubit tuples, keyed by gate name, plus per-qubit readout errors.
"""

from __future__ import annotations

from repro.exceptions import NoiseError
from repro.simulators.noise.errors import QuantumError, ReadoutError


class NoiseModel:
    """A collection of gate and readout errors applied during simulation."""

    def __init__(self):
        # gate name -> error for any qubits.
        self._default_errors: dict[str, QuantumError] = {}
        # (gate name, qubit tuple) -> error.
        self._local_errors: dict[tuple, QuantumError] = {}
        # qubit index -> readout error; None key = all qubits.
        self._readout: dict = {}

    # -- registration ---------------------------------------------------------

    def add_all_qubit_quantum_error(self, error: QuantumError, gate_names):
        """Attach ``error`` after every occurrence of the named gates."""
        if isinstance(gate_names, str):
            gate_names = [gate_names]
        for name in gate_names:
            self._default_errors[name] = error
        return self

    def add_quantum_error(self, error: QuantumError, gate_names, qubits):
        """Attach ``error`` to the named gates on specific qubit tuples."""
        if isinstance(gate_names, str):
            gate_names = [gate_names]
        key_qubits = tuple(qubits)
        if error.num_qubits != len(key_qubits):
            raise NoiseError(
                f"error acts on {error.num_qubits} qubit(s) but "
                f"{len(key_qubits)} were given"
            )
        for name in gate_names:
            self._local_errors[(name, key_qubits)] = error
        return self

    def add_readout_error(self, error: ReadoutError, qubits=None):
        """Attach a readout error to ``qubits`` (all qubits when None)."""
        if qubits is None:
            self._readout[None] = error
        else:
            for qubit in qubits:
                self._readout[int(qubit)] = error
        return self

    # -- lookup ------------------------------------------------------------------

    def gate_error(self, gate_name: str, qubits) -> QuantumError | None:
        """The error channel for one gate application, if any."""
        local = self._local_errors.get((gate_name, tuple(qubits)))
        if local is not None:
            return local
        return self._default_errors.get(gate_name)

    def readout_error(self, qubit: int) -> ReadoutError | None:
        """The readout error for ``qubit``, if any."""
        if qubit in self._readout:
            return self._readout[qubit]
        return self._readout.get(None)

    @property
    def noisy_gates(self) -> set:
        """Names of gates with registered errors."""
        names = set(self._default_errors)
        names.update(name for name, _ in self._local_errors)
        return names

    def is_ideal(self) -> bool:
        """True when no errors are registered."""
        return not (self._default_errors or self._local_errors or self._readout)

    def __repr__(self):
        return (
            f"NoiseModel(gates={sorted(self.noisy_gates)}, "
            f"readout={'yes' if self._readout else 'no'})"
        )
