"""Quantum error channels for noisy (Aer-style) simulation.

Each :class:`QuantumError` is a CPTP channel given by Kraus operators.  The
constructors below build the standard channels the paper's Aer section
motivates ("injecting specific noise processes into the circuits and
observing their effect on the results"): depolarizing, Pauli, damping,
thermal relaxation, and coherent over-rotation errors.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.matrix_utils import kron_all
from repro.exceptions import NoiseError

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class QuantumError:
    """A noise channel represented by Kraus operators."""

    def __init__(self, kraus_ops):
        kraus_ops = [np.asarray(k, dtype=complex) for k in kraus_ops]
        if not kraus_ops:
            raise NoiseError("a quantum error needs at least one Kraus operator")
        dim = kraus_ops[0].shape[0]
        num_qubits = int(round(math.log2(dim)))
        if 2**num_qubits != dim:
            raise NoiseError(f"Kraus dimension {dim} is not a power of two")
        for k in kraus_ops:
            if k.shape != (dim, dim):
                raise NoiseError("Kraus operators must share one square shape")
        total = sum(k.conj().T @ k for k in kraus_ops)
        if not np.allclose(total, np.eye(dim), atol=1e-6):
            raise NoiseError("Kraus operators do not satisfy sum K+K = I")
        self._kraus = kraus_ops
        self._num_qubits = num_qubits
        # Fast path for trajectory sampling: when every Kraus operator is a
        # scaled unitary (sqrt(p) U) — Pauli/depolarizing/coherent channels —
        # branch probabilities are state-independent, so one branch can be
        # sampled up front and applied once.
        self._unitary_branches = self._detect_unitary_branches()

    def _detect_unitary_branches(self):
        branches = []
        dim = 2**self._num_qubits
        for kraus in self._kraus:
            gram = kraus.conj().T @ kraus
            probability = float(np.real(np.trace(gram))) / dim
            if probability < 1e-14:
                continue
            if not np.allclose(gram, probability * np.eye(dim), atol=1e-9):
                return None
            unitary = kraus / math.sqrt(probability)
            is_identity = np.allclose(unitary, np.eye(dim), atol=1e-12)
            branches.append((probability, unitary, is_identity))
        return branches

    @property
    def kraus_operators(self) -> list[np.ndarray]:
        """The Kraus operator list."""
        return list(self._kraus)

    @property
    def num_qubits(self) -> int:
        """Number of qubits the channel acts on."""
        return self._num_qubits

    def compose(self, other: "QuantumError") -> "QuantumError":
        """Channel composition: apply ``self`` then ``other``."""
        if other._num_qubits != self._num_qubits:
            raise NoiseError("cannot compose channels of different sizes")
        return QuantumError(
            [kb @ ka for ka in self._kraus for kb in other._kraus]
        )

    def tensor(self, other: "QuantumError") -> "QuantumError":
        """Channel on the joint space, ``self`` on high qubits."""
        return QuantumError(
            [np.kron(ka, kb) for ka in self._kraus for kb in other._kraus]
        )

    def sample_kraus(self, state: np.ndarray, targets, num_qubits, rng):
        """Trajectory sampling: pick one Kraus branch for a statevector.

        Returns the (renormalized) post-channel state.
        """
        from repro.circuit.matrix_utils import apply_matrix
        from repro.simulators import kernels

        if self._unitary_branches is not None:
            pick = rng.random()
            cumulative = 0.0
            chosen, identity = self._unitary_branches[-1][1:]
            for probability, unitary, is_identity in self._unitary_branches:
                cumulative += probability
                if pick <= cumulative:
                    chosen, identity = unitary, is_identity
                    break
            if identity:
                return state
            return kernels.apply_unitary(state, chosen, list(targets), num_qubits)

        cumulative = 0.0
        pick = rng.random()
        last_candidate = None
        for kraus in self._kraus:
            candidate = apply_matrix(state, kraus, list(targets), num_qubits)
            weight = float(np.real(np.vdot(candidate, candidate)))
            last_candidate = (candidate, weight)
            cumulative += weight
            if pick <= cumulative:
                if weight <= 0:
                    continue
                return candidate / math.sqrt(weight)
        # Numerical slack: fall back to the final branch.
        candidate, weight = last_candidate
        if weight <= 0:
            raise NoiseError("all Kraus branches annihilated the state")
        return candidate / math.sqrt(weight)

    def __repr__(self):
        return f"QuantumError(num_qubits={self._num_qubits}, kraus={len(self._kraus)})"


def pauli_error(terms) -> QuantumError:
    """Probabilistic Pauli channel from ``[(label, probability), ...]``."""
    kraus = []
    total = 0.0
    for label, prob in terms:
        if prob < 0:
            raise NoiseError("probabilities must be non-negative")
        total += prob
        matrix = kron_all([_PAULIS[ch] for ch in label.upper()])
        kraus.append(math.sqrt(prob) * matrix)
    if abs(total - 1.0) > 1e-8:
        raise NoiseError(f"Pauli probabilities sum to {total}, expected 1")
    return QuantumError(kraus)


def bit_flip_error(probability: float) -> QuantumError:
    """X error with the given probability."""
    return pauli_error([("I", 1 - probability), ("X", probability)])


def phase_flip_error(probability: float) -> QuantumError:
    """Z error with the given probability."""
    return pauli_error([("I", 1 - probability), ("Z", probability)])


def depolarizing_error(param: float, num_qubits: int = 1) -> QuantumError:
    """Depolarizing channel: with probability ``param`` apply a uniformly
    random non-identity Pauli on ``num_qubits`` qubits."""
    if not 0 <= param <= 1:
        raise NoiseError("depolarizing parameter must lie in [0, 1]")
    labels = ["I", "X", "Y", "Z"]
    terms = []
    num_paulis = 4**num_qubits
    for index in range(num_paulis):
        label = ""
        value = index
        for _ in range(num_qubits):
            label = labels[value % 4] + label
            value //= 4
        if index == 0:
            terms.append((label, 1 - param))
        else:
            terms.append((label, param / (num_paulis - 1)))
    return pauli_error(terms)


def amplitude_damping_error(gamma: float) -> QuantumError:
    """T1-style energy relaxation with damping parameter ``gamma``."""
    if not 0 <= gamma <= 1:
        raise NoiseError("gamma must lie in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return QuantumError([k0, k1])


def phase_damping_error(lam: float) -> QuantumError:
    """Pure dephasing with parameter ``lam``."""
    if not 0 <= lam <= 1:
        raise NoiseError("lambda must lie in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return QuantumError([k0, k1])


def thermal_relaxation_error(t1: float, t2: float, gate_time: float) -> QuantumError:
    """Combined T1/T2 relaxation over ``gate_time`` (all in the same units).

    Requires ``t2 <= 2*t1`` (physicality).  Models relaxation to |0> plus
    dephasing, the dominant error processes on IBM QX transmons.
    """
    if t1 <= 0 or t2 <= 0:
        raise NoiseError("T1 and T2 must be positive")
    if t2 > 2 * t1:
        raise NoiseError("T2 must not exceed 2*T1")
    gamma = 1 - math.exp(-gate_time / t1)
    # Residual pure dephasing after removing the T1 contribution.
    exp_t2 = math.exp(-gate_time / t2)
    exp_t1_half = math.exp(-gate_time / (2 * t1))
    ratio = exp_t2 / exp_t1_half
    lam = max(0.0, 1 - ratio**2)
    damping = amplitude_damping_error(gamma)
    dephasing = phase_damping_error(min(1.0, lam))
    return damping.compose(dephasing)


def coherent_unitary_error(unitary) -> QuantumError:
    """A deterministic (coherent) unitary error, e.g. an over-rotation."""
    return QuantumError([np.asarray(unitary, dtype=complex)])


def kraus_error(kraus_ops) -> QuantumError:
    """Wrap raw Kraus matrices as a :class:`QuantumError`."""
    return QuantumError(kraus_ops)


class ReadoutError:
    """Classical measurement confusion for one qubit.

    ``probabilities[i][j]`` is the probability of *recording* ``j`` when the
    true outcome is ``i``.
    """

    def __init__(self, probabilities):
        matrix = np.asarray(probabilities, dtype=float)
        if matrix.shape != (2, 2):
            raise NoiseError("readout error expects a 2x2 row-stochastic matrix")
        if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-8):
            raise NoiseError("readout rows must each sum to 1")
        if (matrix < -1e-12).any():
            raise NoiseError("readout probabilities must be non-negative")
        self._matrix = matrix.clip(min=0.0)

    @property
    def probabilities(self) -> np.ndarray:
        """The 2x2 confusion matrix."""
        return self._matrix.copy()

    def sample(self, true_bit: int, rng) -> int:
        """Sample the recorded bit given the true bit."""
        return int(rng.random() < self._matrix[true_bit][1])

    def __repr__(self):
        return f"ReadoutError({self._matrix.tolist()})"
