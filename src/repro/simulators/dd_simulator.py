"""Decision-diagram simulator — the paper's Sec. V-A developer showcase.

Simulates circuits by propagating a QMDD state through QMDD gate operators
instead of dense arrays.  For structured circuits (GHZ, W, Grover oracles,
stabilizer-like states) the diagram stays polynomially small while the dense
vector is exponential, "allowing for a much faster simulation of quantum
computations" [40].  This mirrors the JKU backend that was integrated into
Qiskit (the paper's Ref. [5]).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.dd.package import DDPackage, Edge
from repro.exceptions import SimulatorError
from repro.quantum_info.statevector import Statevector


class DDSimulator:
    """Runs circuits on the QMDD backend."""

    name = "dd_simulator"

    def __init__(self, gc_threshold: int = 200_000):
        self._gc_threshold = gc_threshold

    def run(self, circuit: QuantumCircuit) -> "DDState":
        """Evolve |0...0> through a unitary-only circuit (trailing
        measurements are recorded for :meth:`DDState.sample_counts`)."""
        num_qubits = circuit.num_qubits
        if num_qubits == 0:
            raise SimulatorError("circuit has no qubits")
        package = DDPackage()
        state = package.zero_state(num_qubits)
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        qubit_to_clbit: dict[int, int] = {}
        measured: set = set()
        peak = package.node_count(state)
        gate_cache: dict = {}
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if op.name == "measure":
                measured.add(item.qubits[0])
                qubit_to_clbit[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
                continue
            if op.condition is not None or op.name == "reset":
                raise SimulatorError(
                    f"'{op.name}' is not supported by the DD simulator"
                )
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            if any(q in measured for q in item.qubits):
                raise SimulatorError("mid-circuit measurement not supported")
            targets = tuple(qubit_index[q] for q in item.qubits)
            cache_key = self._gate_key(op, targets)
            gate_dd = gate_cache.get(cache_key) if cache_key else None
            if gate_dd is None:
                gate_dd = package.gate_matrix(op.to_matrix(), targets, num_qubits)
                if cache_key:
                    gate_cache[cache_key] = gate_dd
            state = package.multiply_mv(gate_dd, state)
            peak = max(peak, package.node_count(state))
            if package.num_unique_nodes > self._gc_threshold:
                package.garbage_collect([state] + list(gate_cache.values()))
        return DDState(package, state, num_qubits, qubit_to_clbit,
                       circuit.num_clbits, peak)

    @staticmethod
    def _gate_key(op, targets):
        try:
            params = tuple(float(p) for p in op.params)
        except Exception:
            return None
        if op.name == "unitary":
            return None
        return (op.name, params, targets)

    def unitary(self, circuit: QuantumCircuit) -> Edge:
        """Build the whole circuit's operator as one matrix DD (Fig. 3)."""
        num_qubits = circuit.num_qubits
        package = DDPackage()
        result = package.identity(num_qubits)
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if not isinstance(op, Gate):
                raise SimulatorError(f"'{op.name}' is not unitary")
            targets = tuple(qubit_index[q] for q in item.qubits)
            gate_dd = package.gate_matrix(op.to_matrix(), targets, num_qubits)
            result = package.multiply_mm(gate_dd, result)
        return result

    def unitary_with_package(self, circuit: QuantumCircuit):
        """Like :meth:`unitary` but also returns the package for queries."""
        num_qubits = circuit.num_qubits
        package = DDPackage()
        result = package.identity(num_qubits)
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if not isinstance(op, Gate):
                raise SimulatorError(f"'{op.name}' is not unitary")
            targets = tuple(qubit_index[q] for q in item.qubits)
            gate_dd = package.gate_matrix(op.to_matrix(), targets, num_qubits)
            result = package.multiply_mm(gate_dd, result)
        return result, package


class DDState:
    """The result of a DD simulation: a state DD plus sampling helpers."""

    def __init__(self, package, edge, num_qubits, qubit_to_clbit, num_clbits,
                 peak_nodes):
        self._package = package
        self._edge = edge
        self._num_qubits = num_qubits
        self._qubit_to_clbit = qubit_to_clbit
        self._num_clbits = num_clbits
        #: Largest state-DD node count observed during simulation.
        self.peak_nodes = peak_nodes

    @property
    def package(self) -> DDPackage:
        """The owning DD package."""
        return self._package

    @property
    def edge(self) -> Edge:
        """The root edge of the final state."""
        return self._edge

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    def node_count(self) -> int:
        """Node count of the final state DD."""
        return self._package.node_count(self._edge)

    def table_stats(self) -> dict:
        """The package's unique-table/compute-cache sizing statistics."""
        return self._package.table_stats()

    def to_statevector(self) -> Statevector:
        """Expand to a dense :class:`Statevector` (small n only)."""
        if self._num_qubits > 24:
            raise SimulatorError("state too large to expand densely")
        data = self._package.to_array(self._edge)
        norm = np.linalg.norm(data)
        return Statevector(data / norm, validate=False)

    def amplitude(self, index: int) -> complex:
        """Amplitude of one basis state, without dense expansion."""
        return self._package.amplitude(self._edge, index)

    def sample_counts(self, shots: int, seed=None) -> dict:
        """Sample measurement counts directly from the DD (O(n) per shot).

        If the simulated circuit had measurements, keys cover its classical
        bits; otherwise all qubits are measured.
        """
        rng = np.random.default_rng(seed)
        counts: dict[str, int] = {}
        if self._qubit_to_clbit:
            width = self._num_clbits
            mapping = self._qubit_to_clbit
        else:
            width = self._num_qubits
            mapping = {q: q for q in range(self._num_qubits)}
        for _ in range(shots):
            outcome = self._package.sample(self._edge, self._num_qubits, rng)
            value = 0
            for qubit, clbit in mapping.items():
                if (outcome >> qubit) & 1:
                    value |= 1 << clbit
            key = format(value, f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return counts
