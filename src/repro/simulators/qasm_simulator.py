"""Shot-based simulator — the ``qasm_simulator`` of the paper's Section IV.

Two execution strategies:

* **Sampling**: when the circuit is ideal (no noise, reset, conditions, or
  mid-circuit measurement), the statevector is evolved once and ``shots``
  outcomes are sampled from the final distribution.
* **Trajectories**: otherwise each shot is simulated individually; noise
  channels are applied by Monte-Carlo sampling one Kraus branch per
  application (quantum-trajectory method), and measurements collapse the
  state.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.matrix_utils import apply_matrix
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError


def _prob_one(state: np.ndarray, qubit: int, num_qubits: int) -> float:
    """Probability of measuring ``qubit`` as 1."""
    tensor = np.abs(state.reshape((2,) * num_qubits)) ** 2
    axis = num_qubits - 1 - qubit
    other_axes = tuple(a for a in range(num_qubits) if a != axis)
    marginal = tensor.sum(axis=other_axes) if other_axes else tensor
    return float(marginal[1])


def _project(state: np.ndarray, qubit: int, outcome: int,
             num_qubits: int) -> np.ndarray:
    """Collapse ``qubit`` to ``outcome`` and renormalize."""
    tensor = state.reshape((2,) * num_qubits).copy()
    axis = num_qubits - 1 - qubit
    index = [slice(None)] * num_qubits
    index[axis] = 1 - outcome
    tensor[tuple(index)] = 0.0
    flat = tensor.reshape(-1)
    norm = math.sqrt(float(np.real(np.vdot(flat, flat))))
    if norm <= 0:
        raise SimulatorError("projection annihilated the state")
    return flat / norm


class QasmSimulator:
    """Executes measured circuits for a number of shots."""

    name = "qasm_simulator"

    def __init__(self, max_qubits: int = 24):
        self._max_qubits = max_qubits

    # -- public API --------------------------------------------------------------

    def run(self, circuit: QuantumCircuit, shots: int = 1024, seed=None,
            noise_model=None, memory: bool = False) -> dict:
        """Simulate and return ``{"counts": ..., "shots": ..., ["memory"]}``.

        Counts keys are bitstrings over *all* classical bits, clbit 0
        rightmost; unwritten clbits read 0.
        """
        if shots < 1:
            raise SimulatorError("shots must be positive")
        if circuit.num_qubits == 0:
            raise SimulatorError("circuit has no qubits")
        if circuit.num_qubits > self._max_qubits:
            raise SimulatorError(
                f"{circuit.num_qubits} qubits exceeds the dense-array limit"
            )
        if circuit.num_clbits == 0:
            raise SimulatorError(
                "qasm simulation needs classical bits; add measurements"
            )
        if self._strippable(noise_model):
            circuit = self._strip_idle_qubits(circuit)
        rng = np.random.default_rng(seed)
        gate_noise_free = noise_model is None or not noise_model.noisy_gates
        if gate_noise_free and self._samplable(circuit):
            # Readout errors (if any) are applied to the sampled bits, so
            # readout-only noise models still take the fast sampling path.
            shot_values = self._run_sampling(circuit, shots, rng, noise_model)
        elif self._samplable(circuit) and self._batchable(circuit, noise_model):
            # Probabilistic-unitary noise with terminal measurement: evolve
            # all shots as one (2**n x chunk) batch, splitting columns only
            # where noise branches differ.  Chunk to bound memory at ~64 MiB.
            max_columns = max(1, (1 << 22) // (2**circuit.num_qubits))
            shot_values = []
            remaining = shots
            while remaining:
                chunk = min(remaining, max_columns)
                shot_values.extend(
                    self._run_batched(circuit, chunk, rng, noise_model)
                )
                remaining -= chunk
        else:
            shot_values = self._run_trajectories(
                circuit, shots, rng, noise_model
            )
        width = circuit.num_clbits
        counts: dict[str, int] = {}
        for value in shot_values:
            key = format(value, f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        result = {"counts": counts, "shots": shots}
        if memory:
            result["memory"] = [format(v, f"0{width}b") for v in shot_values]
        return result

    @staticmethod
    def _strippable(noise_model) -> bool:
        """Idle-qubit stripping is only safe for qubit-uniform noise."""
        if noise_model is None:
            return True
        if noise_model._local_errors:
            return False
        return all(key is None for key in noise_model._readout)

    @staticmethod
    def _strip_idle_qubits(circuit: QuantumCircuit):
        """Drop qubits no instruction touches (e.g. unused device wires).

        Transpiled circuits span the whole physical register; simulating the
        idle wires would square the state dimension for nothing.  Idle
        qubits are always in |0>, so dropping them leaves counts unchanged.
        """
        used = set()
        for item in circuit.data:
            used.update(item.qubits)
        if len(used) == circuit.num_qubits or not used:
            return circuit
        from repro.circuit.circuitinstruction import CircuitInstruction
        from repro.circuit.register import QuantumRegister

        kept = [q for q in circuit.qubits if q in used]
        compact_reg = QuantumRegister(len(kept), "sim")
        mapping = dict(zip(kept, compact_reg))
        compact = QuantumCircuit(compact_reg, name=circuit.name)
        for creg in circuit.cregs:
            compact.add_register(creg)
        for item in circuit.data:
            compact.data.append(
                CircuitInstruction(
                    item.operation,
                    [mapping[q] for q in item.qubits],
                    list(item.clbits),
                )
            )
        return compact

    # -- sampling strategy ----------------------------------------------------------

    @staticmethod
    def _samplable(circuit: QuantumCircuit) -> bool:
        """True when one statevector pass plus sampling is exact."""
        measured: set = set()
        written: set = set()
        for item in circuit.data:
            op = item.operation
            if op.condition is not None or op.name == "reset":
                return False
            if op.name == "barrier":
                continue
            if op.name == "measure":
                if item.clbits[0] in written:
                    return False
                measured.add(item.qubits[0])
                written.add(item.clbits[0])
                continue
            if any(q in measured for q in item.qubits):
                return False
        return True

    def _run_sampling(self, circuit, shots, rng, noise_model=None) -> list[int]:
        num_qubits = circuit.num_qubits
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        state = np.zeros(2**num_qubits, dtype=complex)
        state[0] = 1.0
        qubit_to_clbit: dict[int, int] = {}
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if op.name == "measure":
                qubit_to_clbit[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
                continue
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            targets = [qubit_index[q] for q in item.qubits]
            state = apply_matrix(state, op.to_matrix(), targets, num_qubits)
        probs = np.abs(state) ** 2
        probs = probs / probs.sum()
        outcomes = np.asarray(rng.choice(len(probs), size=shots, p=probs))
        values = np.zeros(shots, dtype=np.int64)
        for qubit, clbit in qubit_to_clbit.items():
            bits = (outcomes >> qubit) & 1
            if noise_model is not None:
                readout = noise_model.readout_error(qubit)
                if readout is not None:
                    confusion = readout.probabilities
                    flips = rng.random(shots)
                    p_one = np.where(bits == 1, confusion[1][1],
                                     confusion[0][1])
                    bits = (flips < p_one).astype(np.int64)
            values |= bits << clbit
        return values.tolist()

    # -- batched trajectory strategy ---------------------------------------------------

    def _batchable(self, circuit, noise_model) -> bool:
        """True when every gate error is a probabilistic-unitary mixture."""
        if noise_model is None:
            return True
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        for item in circuit.data:
            op = item.operation
            if op.name in ("barrier", "measure"):
                continue
            targets = [qubit_index[q] for q in item.qubits]
            error = noise_model.gate_error(op.name, targets)
            if error is not None and error._unitary_branches is None:
                return False
        return True

    def _run_batched(self, circuit, shots, rng, noise_model) -> list[int]:
        num_qubits = circuit.num_qubits
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        states = np.zeros((2**num_qubits, shots), dtype=complex)
        states[0, :] = 1.0
        qubit_to_clbit: dict[int, int] = {}
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if op.name == "measure":
                qubit_to_clbit[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
                continue
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            targets = [qubit_index[q] for q in item.qubits]
            states = apply_matrix(states, op.to_matrix(), targets, num_qubits)
            if noise_model is None:
                continue
            error = noise_model.gate_error(op.name, targets)
            if error is None:
                continue
            branches = error._unitary_branches
            probabilities = np.array([b[0] for b in branches])
            probabilities = probabilities / probabilities.sum()
            choice = rng.choice(len(branches), size=shots, p=probabilities)
            for index, (_p, unitary, is_identity) in enumerate(branches):
                if is_identity:
                    continue
                columns = choice == index
                if columns.any():
                    states[:, columns] = apply_matrix(
                        states[:, columns], unitary, targets, num_qubits
                    )
        # Per-column measurement sampling via the inverse-CDF trick.
        probabilities = np.abs(states) ** 2
        probabilities /= probabilities.sum(axis=0, keepdims=True)
        cumulative = np.cumsum(probabilities, axis=0)
        draws = rng.random(shots)
        outcomes = (cumulative < draws[None, :]).sum(axis=0)
        values = np.zeros(shots, dtype=np.int64)
        for qubit, clbit in qubit_to_clbit.items():
            bits = (outcomes >> qubit) & 1
            if noise_model is not None:
                readout = noise_model.readout_error(qubit)
                if readout is not None:
                    confusion = readout.probabilities
                    flips = rng.random(shots)
                    p_one = np.where(bits == 1, confusion[1][1],
                                     confusion[0][1])
                    bits = (flips < p_one).astype(np.int64)
            values |= bits << clbit
        return values.tolist()

    # -- trajectory strategy ----------------------------------------------------------

    def _run_trajectories(self, circuit, shots, rng, noise_model) -> list[int]:
        num_qubits = circuit.num_qubits
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        creg_slices = {
            reg: [clbit_index[c] for c in reg] for reg in circuit.cregs
        }
        shot_values = []
        for _ in range(shots):
            state = np.zeros(2**num_qubits, dtype=complex)
            state[0] = 1.0
            classical = 0
            for item in circuit.data:
                op = item.operation
                name = op.name
                if name == "barrier":
                    continue
                if op.condition is not None:
                    register, target_value = op.condition
                    positions = creg_slices[register]
                    actual = 0
                    for offset, position in enumerate(positions):
                        if (classical >> position) & 1:
                            actual |= 1 << offset
                    if actual != target_value:
                        continue
                if name == "measure":
                    qubit = qubit_index[item.qubits[0]]
                    clbit = clbit_index[item.clbits[0]]
                    outcome = int(rng.random() < _prob_one(state, qubit, num_qubits))
                    state = _project(state, qubit, outcome, num_qubits)
                    recorded = outcome
                    if noise_model is not None:
                        readout = noise_model.readout_error(qubit)
                        if readout is not None:
                            recorded = readout.sample(outcome, rng)
                    if recorded:
                        classical |= 1 << clbit
                    else:
                        classical &= ~(1 << clbit)
                    continue
                if name == "reset":
                    qubit = qubit_index[item.qubits[0]]
                    outcome = int(rng.random() < _prob_one(state, qubit, num_qubits))
                    state = _project(state, qubit, outcome, num_qubits)
                    if outcome:
                        x_matrix = np.array([[0, 1], [1, 0]], dtype=complex)
                        state = apply_matrix(state, x_matrix, [qubit], num_qubits)
                    continue
                if not isinstance(op, Gate):
                    raise SimulatorError(f"cannot simulate '{name}'")
                targets = [qubit_index[q] for q in item.qubits]
                state = apply_matrix(state, op.to_matrix(), targets, num_qubits)
                if noise_model is not None:
                    error = noise_model.gate_error(name, targets)
                    if error is not None:
                        if error.num_qubits != len(targets):
                            raise SimulatorError(
                                f"noise for '{name}' acts on "
                                f"{error.num_qubits} qubit(s), gate on "
                                f"{len(targets)}"
                            )
                        state = error.sample_kraus(
                            state, targets, num_qubits, rng
                        )
            shot_values.append(classical)
        return shot_values
