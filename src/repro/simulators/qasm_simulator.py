"""Shot-based simulator — the ``qasm_simulator`` of the paper's Section IV.

Two execution strategies:

* **Sampling**: when the circuit is ideal (no noise, reset, conditions, or
  mid-circuit measurement), the statevector is evolved once and ``shots``
  outcomes are sampled from the final distribution.
* **Trajectories**: otherwise each shot is simulated individually; noise
  channels are applied by Monte-Carlo sampling one Kraus branch per
  application (quantum-trajectory method), and measurements collapse the
  state.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError
from repro.simulators import kernels


def _prob_one(state: np.ndarray, qubit: int, num_qubits: int) -> float:
    """Probability of measuring ``qubit`` as 1.

    Works on a strided 3-D view of the flat state — no full-tensor reshape
    copy, no ``2**n``-element temporary beyond the squared magnitudes of
    the qubit-one slice.
    """
    ones = state.reshape(-1, 2, 1 << qubit)[:, 1, :]
    return float(np.sum(ones.real**2 + ones.imag**2))


def _project(state: np.ndarray, qubit: int, outcome: int,
             num_qubits: int, *, mutate: bool = False) -> np.ndarray:
    """Collapse ``qubit`` to ``outcome`` and renormalize.

    With ``mutate=True`` the collapse happens in place (the caller owns the
    buffer and rebinds to the return value).
    """
    if not mutate:
        state = state.copy()
    view = state.reshape(-1, 2, 1 << qubit)
    view[:, 1 - outcome, :] = 0.0
    norm = math.sqrt(float(np.real(np.vdot(state, state))))
    if norm <= 0:
        raise SimulatorError("projection annihilated the state")
    state *= 1.0 / norm
    return state


def _sample_outcomes(state: np.ndarray, shots: int, rng) -> np.ndarray:
    """Draw ``shots`` basis-state indices from ``|state|**2`` at once.

    One cumulative distribution + vectorized ``searchsorted`` replaces the
    per-shot python loop; when the support is sparse (GHZ-like states after
    Clifford circuits) the cdf is built over the nonzero entries only.
    """
    probs = np.square(state.real)
    probs += np.square(state.imag)
    draws = rng.random(shots)
    # Only pay for the nonzero scan when the support is actually sparse
    # (GHZ-like states after Clifford circuits); a dense distribution goes
    # straight to the full cumulative sum.
    if np.count_nonzero(probs) * 4 < probs.size:
        support = np.flatnonzero(probs)
        cdf = np.cumsum(probs[support])
        picks = np.searchsorted(cdf, draws * cdf[-1], side="right")
        return support[np.minimum(picks, support.size - 1)]
    cdf = np.cumsum(probs)
    picks = np.searchsorted(cdf, draws * cdf[-1], side="right")
    return np.minimum(picks, probs.size - 1)


def _zeros_for_width(shots: int, num_clbits: int) -> np.ndarray:
    """Outcome accumulator: int64 while it fits, Python ints beyond.

    Registers wider than 63 classical bits overflow an int64 shift, so the
    (rare) wide case falls back to object dtype and arbitrary precision.
    """
    return np.zeros(shots, dtype=np.int64 if num_clbits <= 63 else object)


def bin_counts(shot_values, width: int, *, memory: bool = False):
    """Bin raw outcome integers into a ``{bitstring: count}`` dict.

    Bins once over the distinct outcomes instead of per shot: formatting
    and dict updates dominate for large shot counts otherwise.  Shared by
    :meth:`QasmSimulator.run` and the broadcast sampler so both produce
    identically formatted keys.  Returns ``(counts, memory_list_or_None)``.
    """
    values = np.asarray(shot_values, dtype=np.int64 if width <= 63 else object)
    unique, multiplicity = np.unique(values, return_counts=True)
    if width <= 63:
        # One shift/mask over all outcomes, rendered as a single byte
        # string and sliced — far cheaper than format() per key.
        bits = (unique[:, None] >> np.arange(width - 1, -1, -1)) & 1
        rendered = (bits + ord("0")).astype(np.uint8).tobytes().decode()
        keys = [
            rendered[i * width : (i + 1) * width] for i in range(len(unique))
        ]
    else:
        keys = [format(int(value), f"0{width}b") for value in unique]
    counts = dict(zip(keys, multiplicity.tolist()))
    if memory:
        lookup = dict(zip(unique.tolist(), keys))
        return counts, [lookup[int(value)] for value in shot_values]
    return counts, None


class QasmSimulator:
    """Executes measured circuits for a number of shots."""

    name = "qasm_simulator"

    def __init__(self, max_qubits: int = 24):
        self._max_qubits = max_qubits

    # -- public API --------------------------------------------------------------

    def run(self, circuit: QuantumCircuit, shots: int = 1024, seed=None,
            noise_model=None, memory: bool = False,
            elide_diagonals: bool = True, shot_chunks=None) -> dict:
        """Simulate and return ``{"counts": ..., "shots": ..., ["memory"]}``.

        Counts keys are bitstrings over *all* classical bits, clbit 0
        rightmost; unwritten clbits read 0.

        ``elide_diagonals`` (default True) drops diagonal gates that
        immediately precede terminal measurement on the sampling path —
        they change amplitudes' phases but not ``|amplitude|**2``, so
        counts, memory, and sampled values are bit-identical either way.
        Pass False for A/B checks.

        ``shot_chunks`` — inline shot-chunk layout: a list of
        ``{"start", "stop", "seed"}`` descriptors covering ``shots``.
        Each chunk is drawn with a fresh generator seeded by its own
        derived seed, so the concatenated outcomes are bit-identical to
        running each chunk as a separate ``run(shots=stop-start,
        seed=seed)`` call (the dispatch-mode split) and merging.  Any
        expensive deterministic work — the sampling path's statevector
        evolution — happens once, not per chunk.
        """
        if shots < 1:
            raise SimulatorError("shots must be positive")
        if circuit.num_qubits == 0:
            raise SimulatorError("circuit has no qubits")
        if circuit.num_qubits > self._max_qubits:
            raise SimulatorError(
                f"{circuit.num_qubits} qubits exceeds the dense-array limit"
            )
        if circuit.num_clbits == 0:
            raise SimulatorError(
                "qasm simulation needs classical bits; add measurements"
            )
        if self._strippable(noise_model):
            circuit = self._strip_idle_qubits(circuit)
        gate_noise_free = noise_model is None or not noise_model.noisy_gates
        if gate_noise_free and self._samplable(circuit):
            # Readout errors (if any) are applied to the sampled bits, so
            # readout-only noise models still take the fast sampling path.
            state, qubit_to_clbit = self._evolve_sampling_state(
                circuit, elide_diagonals=elide_diagonals
            )

            def run_chunk(chunk_shots, rng):
                return self._sample_values(
                    state, qubit_to_clbit, circuit.num_clbits,
                    chunk_shots, rng, noise_model,
                )
        elif self._samplable(circuit) and self._batchable(circuit, noise_model):
            # Probabilistic-unitary noise with terminal measurement: evolve
            # all shots as one (2**n x chunk) batch, splitting columns only
            # where noise branches differ.  Chunk to bound memory at ~64 MiB.
            max_columns = max(1, (1 << 22) // (2**circuit.num_qubits))

            def run_chunk(chunk_shots, rng):
                values = []
                remaining = chunk_shots
                while remaining:
                    chunk = min(remaining, max_columns)
                    values.extend(
                        self._run_batched(circuit, chunk, rng, noise_model)
                    )
                    remaining -= chunk
                return values
        else:
            def run_chunk(chunk_shots, rng):
                return self._run_trajectories(
                    circuit, chunk_shots, rng, noise_model
                )
        if shot_chunks:
            if sum(c["stop"] - c["start"] for c in shot_chunks) != shots:
                raise SimulatorError(
                    "shot_chunks layout does not cover the requested shots"
                )
            shot_values = []
            for chunk in shot_chunks:
                shot_values.extend(run_chunk(
                    chunk["stop"] - chunk["start"],
                    np.random.default_rng(chunk["seed"]),
                ))
        else:
            shot_values = run_chunk(shots, np.random.default_rng(seed))
        counts, memory_list = bin_counts(
            shot_values, circuit.num_clbits, memory=memory
        )
        result = {"counts": counts, "shots": shots}
        if memory:
            result["memory"] = memory_list
        return result

    @staticmethod
    def _strippable(noise_model) -> bool:
        """Idle-qubit stripping is only safe for qubit-uniform noise."""
        if noise_model is None:
            return True
        if noise_model._local_errors:
            return False
        return all(key is None for key in noise_model._readout)

    @staticmethod
    def _strip_idle_qubits(circuit: QuantumCircuit):
        """Drop qubits no instruction touches (e.g. unused device wires).

        Transpiled circuits span the whole physical register; simulating the
        idle wires would square the state dimension for nothing.  Idle
        qubits are always in |0>, so dropping them leaves counts unchanged.
        """
        used = set()
        for item in circuit.data:
            used.update(item.qubits)
        if len(used) == circuit.num_qubits or not used:
            return circuit
        from repro.circuit.circuitinstruction import CircuitInstruction
        from repro.circuit.register import QuantumRegister

        kept = [q for q in circuit.qubits if q in used]
        compact_reg = QuantumRegister(len(kept), "sim")
        mapping = dict(zip(kept, compact_reg))
        compact = QuantumCircuit(compact_reg, name=circuit.name)
        for creg in circuit.cregs:
            compact.add_register(creg)
        for item in circuit.data:
            compact.data.append(
                CircuitInstruction(
                    item.operation,
                    [mapping[q] for q in item.qubits],
                    list(item.clbits),
                )
            )
        return compact

    # -- sampling strategy ----------------------------------------------------------

    @staticmethod
    def _samplable(circuit: QuantumCircuit) -> bool:
        """True when one statevector pass plus sampling is exact."""
        measured: set = set()
        written: set = set()
        for item in circuit.data:
            op = item.operation
            if op.condition is not None or op.name == "reset":
                return False
            if op.name == "barrier":
                continue
            if op.name == "measure":
                if item.clbits[0] in written:
                    return False
                measured.add(item.qubits[0])
                written.add(item.clbits[0])
                continue
            if any(q in measured for q in item.qubits):
                return False
        return True

    @staticmethod
    def _terminal_diagonals(data) -> set:
        """Positions of diagonal gates followed only by measurement.

        Scanning backwards, a qubit is *terminal* while everything after
        the current position on it is a barrier, a measure, or an already
        elided diagonal gate.  A diagonal (unitary) gate whose qubits are
        all terminal scales amplitudes by phases only, so dropping it
        leaves ``|amplitude|**2`` — and therefore every sampled outcome —
        unchanged.
        """
        terminal: set = set()
        for item in data:
            terminal.update(item.qubits)
        elided: set = set()
        for position in range(len(data) - 1, -1, -1):
            item = data[position]
            op = item.operation
            if op.name in ("barrier", "measure"):
                continue
            if (
                isinstance(op, Gate)
                and all(q in terminal for q in item.qubits)
                and kernels.gate_is_diagonal(op)
            ):
                elided.add(position)
                continue
            terminal.difference_update(item.qubits)
        return elided

    def _evolve_sampling_state(self, circuit, *, elide_diagonals=True):
        """Evolve the final statevector once for the sampling strategy.

        Returns ``(state, qubit_to_clbit)``; deterministic — no RNG is
        consumed — which is what lets the inline shot-chunk loop share
        one evolution across all chunks.
        """
        num_qubits = circuit.num_qubits
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        state = np.zeros(2**num_qubits, dtype=complex)
        state[0] = 1.0
        qubit_to_clbit: dict[int, int] = {}
        elided = (
            self._terminal_diagonals(circuit.data) if elide_diagonals
            else set()
        )
        for position, item in enumerate(circuit.data):
            op = item.operation
            if op.name == "barrier" or position in elided:
                continue
            if op.name == "measure":
                qubit_to_clbit[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
                continue
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            targets = [qubit_index[q] for q in item.qubits]
            state = kernels.apply_gate(
                state, op, targets, num_qubits, mutate=True
            )
        return state, qubit_to_clbit

    @staticmethod
    def _sample_values(state, qubit_to_clbit, num_clbits, shots, rng,
                       noise_model=None) -> list[int]:
        """Draw ``shots`` classical values from a final state (readout
        noise applied to the sampled bits)."""
        outcomes = _sample_outcomes(state, shots, rng)
        values = _zeros_for_width(shots, num_clbits)
        for qubit, clbit in qubit_to_clbit.items():
            bits = (outcomes >> qubit) & 1
            if noise_model is not None:
                readout = noise_model.readout_error(qubit)
                if readout is not None:
                    confusion = readout.probabilities
                    flips = rng.random(shots)
                    p_one = np.where(bits == 1, confusion[1][1],
                                     confusion[0][1])
                    bits = (flips < p_one).astype(np.int64)
            values |= bits.astype(values.dtype) << clbit
        return values.tolist()

    def _run_sampling(self, circuit, shots, rng, noise_model=None, *,
                      elide_diagonals=True) -> list[int]:
        state, qubit_to_clbit = self._evolve_sampling_state(
            circuit, elide_diagonals=elide_diagonals
        )
        return self._sample_values(
            state, qubit_to_clbit, circuit.num_clbits, shots, rng,
            noise_model,
        )

    # -- batched trajectory strategy ---------------------------------------------------

    def _batchable(self, circuit, noise_model) -> bool:
        """True when every gate error is a probabilistic-unitary mixture."""
        if noise_model is None:
            return True
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        for item in circuit.data:
            op = item.operation
            if op.name in ("barrier", "measure"):
                continue
            targets = [qubit_index[q] for q in item.qubits]
            error = noise_model.gate_error(op.name, targets)
            if error is not None and error._unitary_branches is None:
                return False
        return True

    def _run_batched(self, circuit, shots, rng, noise_model) -> list[int]:
        num_qubits = circuit.num_qubits
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        states = np.zeros((2**num_qubits, shots), dtype=complex)
        states[0, :] = 1.0
        qubit_to_clbit: dict[int, int] = {}
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if op.name == "measure":
                qubit_to_clbit[qubit_index[item.qubits[0]]] = clbit_index[
                    item.clbits[0]
                ]
                continue
            if not isinstance(op, Gate):
                raise SimulatorError(f"cannot simulate '{op.name}'")
            targets = [qubit_index[q] for q in item.qubits]
            states = kernels.apply_gate(
                states, op, targets, num_qubits, mutate=True
            )
            if noise_model is None:
                continue
            error = noise_model.gate_error(op.name, targets)
            if error is None:
                continue
            branches = error._unitary_branches
            probabilities = np.array([b[0] for b in branches])
            probabilities = probabilities / probabilities.sum()
            choice = rng.choice(len(branches), size=shots, p=probabilities)
            for index, (_p, unitary, is_identity) in enumerate(branches):
                if is_identity:
                    continue
                columns = choice == index
                if columns.any():
                    # Fancy-indexed columns are a copy; evolve the copy in
                    # place and scatter it back.
                    states[:, columns] = kernels.apply_unitary(
                        states[:, columns], unitary, targets, num_qubits,
                        mutate=True,
                    )
        # Per-column measurement sampling via the inverse-CDF trick.
        probabilities = states.real**2 + states.imag**2
        probabilities /= probabilities.sum(axis=0, keepdims=True)
        cumulative = np.cumsum(probabilities, axis=0)
        draws = rng.random(shots)
        outcomes = (cumulative < draws[None, :]).sum(axis=0)
        values = _zeros_for_width(shots, circuit.num_clbits)
        for qubit, clbit in qubit_to_clbit.items():
            bits = (outcomes >> qubit) & 1
            if noise_model is not None:
                readout = noise_model.readout_error(qubit)
                if readout is not None:
                    confusion = readout.probabilities
                    flips = rng.random(shots)
                    p_one = np.where(bits == 1, confusion[1][1],
                                     confusion[0][1])
                    bits = (flips < p_one).astype(np.int64)
            values |= bits.astype(values.dtype) << clbit
        return values.tolist()

    # -- trajectory strategy ----------------------------------------------------------

    def _deterministic_prefix(self, data, qubit_index, noise_model) -> int:
        """Length of the leading run of noise-free unconditioned gates.

        Every trajectory evolves identically through this prefix, so it is
        simulated once and each shot starts from a copy of the result.
        """
        split = 0
        for item in data:
            op = item.operation
            if (
                op.condition is not None
                or op.name in ("measure", "reset")
                or not isinstance(op, Gate)
            ):
                break
            if noise_model is not None:
                targets = [qubit_index[q] for q in item.qubits]
                if noise_model.gate_error(op.name, targets) is not None:
                    break
            split += 1
        return split

    def _run_trajectories(self, circuit, shots, rng, noise_model) -> list[int]:
        num_qubits = circuit.num_qubits
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
        creg_slices = {
            reg: [clbit_index[c] for c in reg] for reg in circuit.cregs
        }
        data = [
            item for item in circuit.data if item.operation.name != "barrier"
        ]
        split = self._deterministic_prefix(data, qubit_index, noise_model)
        prefix_state = np.zeros(2**num_qubits, dtype=complex)
        prefix_state[0] = 1.0
        for item in data[:split]:
            targets = [qubit_index[q] for q in item.qubits]
            prefix_state = kernels.apply_gate(
                prefix_state, item.operation, targets, num_qubits, mutate=True
            )
        suffix = data[split:]
        buffer = np.empty_like(prefix_state)
        shot_values = []
        for _ in range(shots):
            np.copyto(buffer, prefix_state)
            state = buffer
            classical = 0
            for item in suffix:
                op = item.operation
                name = op.name
                if op.condition is not None:
                    register, target_value = op.condition
                    positions = creg_slices[register]
                    actual = 0
                    for offset, position in enumerate(positions):
                        if (classical >> position) & 1:
                            actual |= 1 << offset
                    if actual != target_value:
                        continue
                if name == "measure":
                    qubit = qubit_index[item.qubits[0]]
                    clbit = clbit_index[item.clbits[0]]
                    outcome = int(rng.random() < _prob_one(state, qubit, num_qubits))
                    state = _project(
                        state, qubit, outcome, num_qubits, mutate=True
                    )
                    recorded = outcome
                    if noise_model is not None:
                        readout = noise_model.readout_error(qubit)
                        if readout is not None:
                            recorded = readout.sample(outcome, rng)
                    if recorded:
                        classical |= 1 << clbit
                    else:
                        classical &= ~(1 << clbit)
                    continue
                if name == "reset":
                    qubit = qubit_index[item.qubits[0]]
                    outcome = int(rng.random() < _prob_one(state, qubit, num_qubits))
                    state = _project(
                        state, qubit, outcome, num_qubits, mutate=True
                    )
                    if outcome:
                        x_matrix = np.array([[0, 1], [1, 0]], dtype=complex)
                        state = kernels.apply_unitary(
                            state, x_matrix, [qubit], num_qubits, mutate=True
                        )
                    continue
                if not isinstance(op, Gate):
                    raise SimulatorError(f"cannot simulate '{name}'")
                targets = [qubit_index[q] for q in item.qubits]
                state = kernels.apply_gate(
                    state, op, targets, num_qubits, mutate=True
                )
                if noise_model is not None:
                    error = noise_model.gate_error(name, targets)
                    if error is not None:
                        if error.num_qubits != len(targets):
                            raise SimulatorError(
                                f"noise for '{name}' acts on "
                                f"{error.num_qubits} qubit(s), gate on "
                                f"{len(targets)}"
                            )
                        state = error.sample_kraus(
                            state, targets, num_qubits, rng
                        )
            shot_values.append(classical)
        return shot_values
