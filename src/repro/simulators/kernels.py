"""Specialized dense gate kernels — the fast paths of every array simulator.

The generic :func:`repro.circuit.matrix_utils.apply_matrix` routes every gate
through one ``np.tensordot`` plus two full-state copies (axis restore and
reshape).  Real circuits are dominated by a handful of structured cases that
admit much cheaper updates, the same split mature stacks use for their dense
engines (Sec. V-A of the paper: simulation "boils down to a sequence of
matrix-vector multiplications" — so make the common multiplications cheap):

* **diagonal** gates (``z  s  t  rz  u1  cz  cp  rzz`` ...): elementwise
  multiplies of amplitude slices, no matrix product at all;
* **permutation** gates (``x  cx  swap  ccx  cswap`` and any other monomial
  matrix): pure index moves along a cycle decomposition, plus a phase where
  the nonzero entries are not 1 (``y``, ``cy``);
* **controlled-unitary** gates (``ch  crx  cry  cu3`` ...): the base matrix
  applied only to the slice where every control bit is 1;
* **dense single-qubit** gates: one small matrix product over a strided view
  — a stacked ``(2, 2) @ (2, R)`` matmul for high targets, or a single BLAS
  GEMM against ``kron(U^T, I)`` for low targets where the strided row length
  would be too short;
* **dense two-qubit** gates on adjacent targets: the same two strategies
  with a ``(4, 4)`` matrix.

Everything else falls back to ``apply_matrix``, which stays the reference
implementation; the property tests assert agreement to 1e-12.

Dispatch is *structural*: the matrix itself is classified (cached by its
bytes), so the fast paths also cover unitary noise branches, diagonal
``UnitaryGate``s, and anything else with exploitable shape — not just gates
recognized by name.

State layout matches ``apply_matrix``: shape ``(2**n,)`` or ``(2**n, B)``
for a batch of ``B`` column vectors, little-endian qubit indexing.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.circuit.matrix_utils import apply_matrix

#: Master switch.  ``disabled()`` flips it off so benchmarks (and debugging)
#: can compare against the generic tensordot path.
ENABLED = True

#: Largest gate size (in qubits) the structural analyzer inspects.
_MAX_ANALYZED_QUBITS = 3

#: For dense 1q/2q gates on low target qubits the strided rows are too short
#: for efficient stacked matmul; below this target index we use one big GEMM
#: against ``kron(U^T, I_R)`` instead.
_KRON_GEMM_MAX_TARGET = 4

#: Structure-analysis tolerance, relative to the matrix's largest entry.
_STRUCTURE_RTOL = 1e-15

_ANALYSIS_CACHE: OrderedDict = OrderedDict()
_ANALYSIS_CACHE_SIZE = 1024

_KRON_W_CACHE: OrderedDict = OrderedDict()
_KRON_W_CACHE_SIZE = 128


class disabled:
    """Context manager that routes everything through ``apply_matrix``."""

    def __enter__(self):
        global ENABLED
        self._previous = ENABLED
        ENABLED = False
        return self

    def __exit__(self, *exc):
        global ENABLED
        ENABLED = self._previous
        return False


# ---------------------------------------------------------------------------
# Structural analysis
# ---------------------------------------------------------------------------


def _classify(matrix: np.ndarray, tol: float):
    """Classify one matrix; see module docstring for the descriptor kinds.

    Returns one of::

        ("diag", diagonal_vector)
        ("perm", rows, phases)        # column c maps to row rows[c], scaled
        ("ctrl", inner_descriptor)    # identity unless the low qubit is 1
        ("dense", matrix)
    """
    dim = matrix.shape[0]
    off_diagonal = matrix - np.diag(np.diagonal(matrix))
    if np.abs(off_diagonal).max(initial=0.0) <= tol:
        return ("diag", np.ascontiguousarray(np.diagonal(matrix)))
    significant = np.abs(matrix) > tol
    if (significant.sum(axis=0) == 1).all() and (significant.sum(axis=1) == 1).all():
        rows = significant.argmax(axis=0)
        phases = matrix[rows, np.arange(dim)]
        return ("perm", rows, phases)
    if dim >= 4:
        # Controlled on the least-significant qubit: even rows/columns are
        # the identity, and the odd/odd block is the base operation.  This
        # is the layout of ``controlled_matrix`` in the standard library.
        even = matrix[::2, ::2]
        if (
            np.abs(even - np.eye(dim // 2)).max() <= tol
            and np.abs(matrix[::2, 1::2]).max() <= tol
            and np.abs(matrix[1::2, ::2]).max() <= tol
        ):
            inner = _classify(matrix[1::2, 1::2], tol)
            if inner[0] != "dense" or inner[1].shape[0] == 2:
                return ("ctrl", inner)
    return ("dense", matrix)


def _analysis(matrix: np.ndarray):
    """Cached structural classification of ``matrix``."""
    key = (matrix.shape[0], matrix.tobytes())
    descriptor = _ANALYSIS_CACHE.get(key)
    if descriptor is None:
        tol = _STRUCTURE_RTOL * max(1.0, float(np.abs(matrix).max(initial=0.0)))
        descriptor = _classify(matrix, tol)
        _ANALYSIS_CACHE[key] = descriptor
        while len(_ANALYSIS_CACHE) > _ANALYSIS_CACHE_SIZE:
            _ANALYSIS_CACHE.popitem(last=False)
    else:
        _ANALYSIS_CACHE.move_to_end(key)
    return descriptor


# ---------------------------------------------------------------------------
# Kernel primitives
#
# ``flat`` below is the C-contiguous state raveled to 1D; a batch of B
# columns folds into the trailing (least-significant) end of the index, so
# qubit q occupies a stride of ``2**q * B`` flat elements.
# ---------------------------------------------------------------------------


def _axis_slice(tensor, axis, index):
    full = [slice(None)] * tensor.ndim
    full[axis] = index
    return tuple(full)


def _compact_view(flat, targets, num_qubits, batch):
    """Reshape ``flat`` splitting out only the target qubits.

    Returns ``(view, axes)`` with ``axes[i]`` the view axis of ``targets[i]``.
    Non-target qubits stay merged into large contiguous blocks, so the slice
    kernels below iterate over a few long runs instead of the size-2 inner
    loops a full ``(2,)*n`` tensor view would force on numpy's iterator.
    """
    descending = sorted(targets, reverse=True)
    shape = []
    prev = num_qubits
    for qubit in descending:
        shape.append(1 << (prev - qubit - 1))
        shape.append(2)
        prev = qubit
    shape.append((1 << prev) * batch)
    position = {qubit: 1 + 2 * i for i, qubit in enumerate(descending)}
    return flat.reshape(shape), [position[qubit] for qubit in targets]


def _apply_diag_tensor(view, axes, diagonal):
    """Multiply each target-basis slice of ``view`` by its diagonal entry."""
    if len(axes) == 1:
        d0, d1 = diagonal
        if d0 != 1:
            view[_axis_slice(view, axes[0], 0)] *= d0
        if d1 != 1:
            view[_axis_slice(view, axes[0], 1)] *= d1
        return
    for j, entry in enumerate(diagonal):
        if entry == 1:
            continue
        index = [slice(None)] * view.ndim
        for position, axis in enumerate(axes):
            index[axis] = (j >> position) & 1
        view[tuple(index)] *= entry


_DIAG_TILE_RUN = 32
_DIAG_TILE_TARGET = 8192

#: Below this many state elements the tiled diagonal's pattern setup
#: (arange + fancy index + tile) costs more than the short strided runs it
#: avoids — measured crossover on small states (n=10: narrow 7-9us vs
#: tiled 27-31us).
_DIAG_TILE_MIN_SIZE = 8192

#: A single target at flat stride 1 keeps the narrow/tensor slices fully
#: contiguous, so the tiled rewrite only wins once the state is large
#: enough that halving the number of multiply passes dominates (measured:
#: n=14 narrow 21.6us vs tiled 45.2us; n=18 tiled 349us vs narrow 557us).
_DIAG_TILE_UNIT_STRIDE_MIN = 1 << 18


def _diag_tile_selected(size, targets, batch):
    """Whether the tiled diagonal path is the measured winner.

    ``size`` is the flat element count (``2**n * batch``).  The decision is
    a pure function of structure — target strides and state size — so the
    batched broadcast engine can replay it per gate and stay on the exact
    arithmetic the single-state path uses.
    """
    stride = (1 << min(targets)) * batch
    if stride >= _DIAG_TILE_RUN:
        return False
    if size < _DIAG_TILE_MIN_SIZE:
        return False
    if len(targets) == 1 and stride == 1 and size < _DIAG_TILE_UNIT_STRIDE_MIN:
        return False
    return True


def _apply_diag_tiled(flat, diagonal, targets, num_qubits, batch):
    """Diagonal multiply with low-qubit targets folded into a tiled vector.

    A target on a low qubit makes every per-entry slice decompose into very
    short strided runs, where numpy's iterator overhead swamps the actual
    arithmetic.  Instead, build one small periodic vector holding the
    diagonal's pattern over the low targets and broadcast-multiply it across
    long contiguous blocks: sequential bandwidth, no short inner loops.  The
    unit entries get multiplied too (a 1.0 no-op), which is the accepted
    traffic tradeoff — it only wins when the runs are genuinely short, hence
    the ``_DIAG_TILE_RUN`` gate in the dispatcher.
    """
    low = [t for t in targets if (1 << t) * batch < _DIAG_TILE_RUN]
    high = sorted(t for t in targets if t not in low)
    length = (1 << (max(low) + 1)) * batch
    offsets = np.arange(length)
    pattern = np.zeros(length, dtype=np.intp)
    for position, target in enumerate(targets):
        if target in low:
            pattern += ((offsets // ((1 << target) * batch)) & 1) << position
    block = ((1 << min(high)) if high else (flat.size // batch)) * batch
    repeats = 1
    while length * repeats * 2 <= min(block, _DIAG_TILE_TARGET):
        repeats *= 2
    if high:
        view, axes = _compact_view(flat, high, num_qubits, batch)
    for bits in range(1 << len(high)):
        offset = 0
        for position, target in enumerate(targets):
            if target in low:
                continue
            offset |= ((bits >> high.index(target)) & 1) << position
        entries = diagonal[pattern + offset]
        if np.all(entries == 1):
            continue
        tile = np.tile(entries, repeats)
        if high:
            index = [slice(None)] * view.ndim
            for rank, axis in enumerate(axes):
                index[axis] = (bits >> rank) & 1
            sub = view[tuple(index)]
            sub.reshape(sub.shape[:-1] + (-1, tile.size))[...] *= tile
        else:
            flat.reshape(-1, tile.size)[...] *= tile


_SWAP_CHUNK_ELEMS = 8192


def _chunked_swap(a, b):
    """In-place swap of two equal-shape slices via a cache-resident temp.

    Swapping through a full-size temporary streams the state three times;
    chunking along the leading axis keeps the temp hot in cache and the
    interleaved reads of ``a``/``b`` near-sequential.
    """
    if a.ndim == 0 or a.shape[0] <= 1 or a.size <= _SWAP_CHUNK_ELEMS:
        saved = a.copy()
        a[...] = b
        b[...] = saved
        return
    rows = max(1, _SWAP_CHUNK_ELEMS // (a.size // a.shape[0]))
    scratch = np.empty((min(rows, a.shape[0]),) + a.shape[1:], dtype=a.dtype)
    for start in range(0, a.shape[0], rows):
        stop = min(start + rows, a.shape[0])
        block = scratch[: stop - start]
        np.copyto(block, a[start:stop])
        a[start:stop] = b[start:stop]
        b[start:stop] = block


def _apply_perm_tensor(view, axes, rows, phases):
    """Permute (and phase) target-basis slices along a cycle decomposition."""

    def basis_index(j):
        index = [slice(None)] * view.ndim
        for position, axis in enumerate(axes):
            index[axis] = (j >> position) & 1
        return tuple(index)

    dim = len(rows)
    destination = np.asarray(rows, dtype=np.int64)  # column c lands on rows[c]
    seen = np.zeros(dim, dtype=bool)
    for start in range(dim):
        if seen[start]:
            continue
        seen[start] = True
        if destination[start] == start:
            if phases[start] != 1:
                view[basis_index(start)] *= phases[start]
            continue
        # Walk the cycle start -> destination[start] -> ... back to start,
        # moving slices backwards so one temporary suffices.
        cycle = [start]
        current = int(destination[start])
        while current != start:
            seen[current] = True
            cycle.append(current)
            current = int(destination[current])
        if (
            len(cycle) == 2
            and phases[cycle[0]] == 1
            and phases[cycle[1]] == 1
        ):
            # Transposition with no phase — X/CX/SWAP/CCX all land here.
            _chunked_swap(view[basis_index(cycle[0])],
                          view[basis_index(cycle[1])])
            continue
        saved = view[basis_index(cycle[-1])].copy()
        for position in range(len(cycle) - 1, 0, -1):
            source, target = cycle[position - 1], cycle[position]
            view[basis_index(target)] = view[basis_index(source)]
            if phases[source] != 1:
                view[basis_index(target)] *= phases[source]
        view[basis_index(cycle[0])] = saved
        if phases[cycle[-1]] != 1:
            view[basis_index(cycle[0])] *= phases[cycle[-1]]


def _apply_dense_1q_tensor(view, axis, matrix):
    """In-place dense 1q update on an arbitrary (sub-)tensor view.

    Uses explicit ``__setitem__`` writes rather than in-place arithmetic on
    the sliced halves: when ctrl recursion has reduced ``view`` to 1-D,
    integer indexing yields scalar *copies* and in-place ops would be lost.
    """
    index0 = _axis_slice(view, axis, 0)
    index1 = _axis_slice(view, axis, 1)
    a0 = view[index0]
    a1 = view[index1]
    new0 = matrix[0, 0] * a0 + matrix[0, 1] * a1
    view[index1] = matrix[1, 0] * a0 + matrix[1, 1] * a1
    view[index0] = new0


def _kron_gemm_operator(matrix, stride):
    """Cached ``kron(matrix.T, I_stride)`` for the low-target GEMM path."""
    key = (stride, matrix.shape[0], matrix.tobytes())
    operator = _KRON_W_CACHE.get(key)
    if operator is None:
        operator = np.kron(matrix.T, np.eye(stride, dtype=complex))
        _KRON_W_CACHE[key] = operator
        while len(_KRON_W_CACHE) > _KRON_W_CACHE_SIZE:
            _KRON_W_CACHE.popitem(last=False)
    else:
        _KRON_W_CACHE.move_to_end(key)
    return operator


_DENSE_SCRATCH: dict = {}


def _dense_out(flat):
    """Fresh output buffer, reusing a retired state buffer when available.

    At n=20 a state is 16 MiB; allocating one per dense op means an mmap and
    a page-fault sweep each gate.  Steady-state evolution instead ping-pongs
    between the live buffer and one retired via :func:`_dense_retire`.
    """
    candidate = _DENSE_SCRATCH.pop(flat.nbytes, None)
    if (
        candidate is not None
        and candidate.size == flat.size
        and not np.may_share_memory(candidate, flat)
    ):
        return candidate
    # Pool empty, or the retired buffer is the very one now arriving as
    # input (a caller legitimately recycled it) — matmul forbids aliased
    # out, so fall back to a fresh allocation.
    return np.empty_like(flat)


def _dense_retire(flat, mutate):
    """Recycle ``flat`` after a dense op produced a new buffer.

    Only legal under ``mutate=True``: the caller has promised to use the
    returned array exclusively, so its old buffer is dead storage.
    """
    if mutate:
        _DENSE_SCRATCH[flat.nbytes] = flat


def _apply_dense_low(flat, matrix, target, batch, mutate):
    """Dense k-qubit gate on targets ``[target, target+1, ...]`` — low index.

    One BLAS GEMM against ``kron(U^T, I_R)``; only worthwhile while the
    inflation factor ``R = 2**target * batch`` stays small.
    """
    stride = (1 << target) * batch
    operator = _kron_gemm_operator(matrix, stride)
    out = _dense_out(flat)
    width = matrix.shape[0] * stride
    np.matmul(flat.reshape(-1, width), operator, out=out.reshape(-1, width))
    _dense_retire(flat, mutate)
    return out


def _apply_dense_high(flat, matrix, target, batch, mutate):
    """Dense k-qubit gate on targets ``[target, target+1, ...]`` — stacked
    ``(2**k, 2**k) @ (2**k, R)`` matmul over the leading axis."""
    stride = (1 << target) * batch
    dim = matrix.shape[0]
    out = _dense_out(flat)
    np.matmul(
        matrix,
        flat.reshape(-1, dim, stride),
        out=out.reshape(-1, dim, stride),
    )
    _dense_retire(flat, mutate)
    return out


def _apply_dense_contiguous(flat, matrix, target, batch, mutate):
    """Dense gate on a contiguous ascending target block starting at ``target``."""
    if batch == 1 and target <= _KRON_GEMM_MAX_TARGET:
        return _apply_dense_low(flat, matrix, target, batch, mutate)
    return _apply_dense_high(flat, matrix, target, batch, mutate)


def _permute_gate_qubits(matrix, positions):
    """Reorder a gate matrix so its qubit ``i`` moves to bit ``positions[i]``.

    Returns ``M'`` with ``M'[r', c'] = M[r, c]`` where bit ``i`` of ``r``
    equals bit ``positions[i]`` of ``r'``.
    """
    source = np.arange(matrix.shape[0])
    lookup = np.zeros_like(source)
    for i, position in enumerate(positions):
        lookup |= ((source >> position) & 1) << i
    return matrix[np.ix_(lookup, lookup)]


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def apply_unitary(state, matrix, targets, num_qubits, *, mutate=False):
    """Apply ``matrix`` to ``targets`` of ``state`` via the fastest kernel.

    Drop-in replacement for :func:`apply_matrix` (same layout conventions,
    same result to 1e-12).  With ``mutate=True`` the caller guarantees it
    owns ``state`` and only uses the *returned* array afterwards: kernels
    are then free to update in place or hand back a different buffer.  With
    the default ``mutate=False`` the input is never modified.

    Args:
        state: ``(2**num_qubits,)`` amplitudes or ``(2**num_qubits, B)``
            batch of columns.
        matrix: the ``2**k x 2**k`` operator (``k = len(targets)``).
        targets: little-endian target qubits; ``targets[0]`` is the least
            significant bit of the matrix's index space.
        num_qubits: total qubit count of ``state``.
        mutate: allow in-place updates of ``state``.

    Returns:
        The evolved state, same shape as the input.
    """
    if not ENABLED:
        return apply_matrix(state, matrix, targets, num_qubits)
    k = len(targets)
    if k > _MAX_ANALYZED_QUBITS:
        return apply_matrix(state, matrix, targets, num_qubits)
    state = np.asarray(state)
    matrix = np.ascontiguousarray(matrix, dtype=complex)
    descriptor = _analysis(matrix)
    if descriptor[0] == "dense" and k > 1 and not _is_contiguous_block(targets):
        return apply_matrix(state, matrix, targets, num_qubits)

    original_shape = state.shape
    batch = 1
    for extent in state.shape[1:]:
        batch *= extent
    if state.dtype != np.complex128 or not state.flags.c_contiguous:
        state = np.ascontiguousarray(state, dtype=complex)
        mutate = True  # we own the converted copy
    flat = state.reshape(-1)

    result = _dispatch(flat, descriptor, list(targets), num_qubits, batch, mutate)
    return result.reshape(original_shape)


def apply_diagonal(state, diagonal, targets, num_qubits, *, mutate=False):
    """Apply a diagonal operator given as its diagonal *vector*.

    The entry point for fused :class:`DiagonalGate`\\ s: no dense matrix is
    ever built and, unlike :func:`apply_unitary`, there is no
    ``_MAX_ANALYZED_QUBITS`` cap — a fused 8-qubit diagonal is still one
    tiled elementwise multiply.  ``diagonal[j]``'s bit ``p`` corresponds to
    ``targets[p]`` (same little-endian convention as the matrix kernels).
    """
    diagonal = np.ascontiguousarray(diagonal, dtype=complex)
    if not ENABLED:
        return apply_matrix(state, np.diag(diagonal), targets, num_qubits)
    state = np.asarray(state)
    original_shape = state.shape
    batch = 1
    for extent in state.shape[1:]:
        batch *= extent
    if state.dtype != np.complex128 or not state.flags.c_contiguous:
        state = np.ascontiguousarray(state, dtype=complex)
        mutate = True  # we own the converted copy
    flat = state.reshape(-1)
    if not mutate:
        flat = flat.copy()
    targets = list(targets)
    if _diag_tile_selected(flat.size, targets, batch):
        _apply_diag_tiled(flat, diagonal, targets, num_qubits, batch)
    else:
        view, axes = _compact_view(flat, targets, num_qubits, batch)
        _apply_diag_tensor(view, axes, diagonal)
    return flat.reshape(original_shape)


def apply_gate(state, gate, targets, num_qubits, *, mutate=False):
    """Apply a :class:`~repro.circuit.gate.Gate` via its (cached) matrix.

    Gates that carry their diagonal vector directly (``DiagonalGate``)
    skip matrix construction entirely via :func:`apply_diagonal`.
    """
    diagonal = getattr(gate, "diagonal", None)
    if diagonal is not None and ENABLED:
        return apply_diagonal(
            state, diagonal, targets, num_qubits, mutate=mutate
        )
    return apply_unitary(
        state, gate.to_matrix(), targets, num_qubits, mutate=mutate
    )


def gate_is_diagonal(gate) -> bool:
    """True when the gate's matrix is diagonal in the computational basis.

    Uses the same cached structural analysis as the dispatch fast paths, so
    callers (e.g. the sampling-path diagonal elision) agree with the kernel
    layer on what counts as diagonal.
    """
    if getattr(gate, "diagonal", None) is not None:
        return True
    try:
        matrix = gate.to_matrix()
    except Exception:
        return False
    if matrix.shape[0] > 1 << _MAX_ANALYZED_QUBITS:
        return False
    return _analysis(np.ascontiguousarray(matrix, dtype=complex))[0] == "diag"


def _is_contiguous_block(targets) -> bool:
    """True when ``targets`` is ``[q, q+1, ..., q+k-1]`` up to reordering."""
    lowest = min(targets)
    return sorted(targets) == list(range(lowest, lowest + len(targets)))


def _dispatch(flat, descriptor, targets, num_qubits, batch, mutate):
    kind = descriptor[0]
    if kind == "dense":
        matrix = descriptor[1]
        if matrix.shape[0] == 2:
            return _dispatch_dense_1q(flat, matrix, targets[0], batch, mutate)
        # Contiguous multi-qubit block (guaranteed by apply_unitary); reorder
        # the gate's qubits to match ascending targets, then use the 1q
        # machinery with a wider matrix.
        lowest = min(targets)
        positions = [t - lowest for t in targets]
        if positions != list(range(len(targets))):
            matrix = _permute_gate_qubits(matrix, positions)
        return _apply_dense_contiguous(flat, matrix, lowest, batch, mutate)

    # Slice kernels mutate; honor the purity contract up front.
    if not mutate:
        flat = flat.copy()
    if kind == "diag" and _diag_tile_selected(flat.size, targets, batch):
        _apply_diag_tiled(flat, descriptor[1], targets, num_qubits, batch)
        return flat
    if kind == "diag" and len(targets) == 1:
        # Single-stride layout beats multi-axis slicing for 1q diagonals.
        diagonal = descriptor[1]
        stride = (1 << targets[0]) * batch
        narrow = flat.reshape(-1, 2, stride)
        if diagonal[0] != 1:
            narrow[:, 0, :] *= diagonal[0]
        if diagonal[1] != 1:
            narrow[:, 1, :] *= diagonal[1]
        return flat
    view, axes = _compact_view(flat, targets, num_qubits, batch)
    _dispatch_sliced(view, axes, descriptor)
    return flat


def _dispatch_dense_1q(flat, matrix, target, batch, mutate):
    if batch == 1 and target <= _KRON_GEMM_MAX_TARGET:
        return _apply_dense_low(flat, matrix, target, batch, mutate)
    return _apply_dense_high(flat, matrix, target, batch, mutate)


def _dispatch_sliced(view, axes, descriptor):
    kind = descriptor[0]
    if kind == "diag":
        _apply_diag_tensor(view, axes, descriptor[1])
        return
    if kind == "perm":
        _apply_perm_tensor(view, axes, descriptor[1], descriptor[2])
        return
    if kind == "ctrl":
        # Restrict to the slice where the control (low) qubit is 1, then
        # recurse with the remaining targets.
        control_axis = axes[0]
        sub = view[_axis_slice(view, control_axis, 1)]
        sub_axes = [axis - 1 if axis > control_axis else axis for axis in axes[1:]]
        _dispatch_sliced(sub, sub_axes, descriptor[1])
        return
    # Dense base of a controlled gate (1q only, by construction).
    _apply_dense_1q_tensor(view, axes[0], descriptor[1])


def clear_caches():
    """Drop the analysis, GEMM-operator, and scratch caches (tests/benchmarks)."""
    _ANALYSIS_CACHE.clear()
    _KRON_W_CACHE.clear()
    _DENSE_SCRATCH.clear()
