"""Qobj-style circuit serialization (JSON-compatible interchange)."""

from repro.qobj.assembler import (
    assemble,
    circuit_to_experiment,
    derive_experiment_seeds,
    disassemble,
    experiment_to_circuit,
)

__all__ = [
    "assemble",
    "circuit_to_experiment",
    "derive_experiment_seeds",
    "disassemble",
    "experiment_to_circuit",
]
