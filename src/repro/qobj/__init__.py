"""Qobj-style circuit serialization (JSON-compatible interchange)."""

from repro.qobj.assembler import (
    DEFAULT_SHOT_CHUNK_SIZE,
    assemble,
    circuit_to_experiment,
    derive_chunk_seeds,
    derive_experiment_seeds,
    disassemble,
    experiment_to_circuit,
    shot_chunk_bounds,
)

__all__ = [
    "DEFAULT_SHOT_CHUNK_SIZE",
    "assemble",
    "circuit_to_experiment",
    "derive_chunk_seeds",
    "derive_experiment_seeds",
    "disassemble",
    "experiment_to_circuit",
    "shot_chunk_bounds",
]
