"""Qobj-style serialization: circuits <-> JSON-compatible dictionaries.

Terra's role (paper Sec. III) includes "the suitable data structures and
interfaces ... and pass those constructs among the different Qiskit
libraries, and to the hardware".  The 2018-era wire format was the Qobj: a
JSON payload with per-experiment instruction lists over flat qubit/clbit
indices.  ``assemble`` produces that payload, ``disassemble`` reverses it.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.circuit.circuitinstruction import CircuitInstruction
from repro.circuit.library.standard_gates import (
    STANDARD_GATES,
    DiagonalGate,
    UnitaryGate,
    get_standard_gate,
)
from repro.circuit.measure import Barrier, Measure, Reset
from repro.circuit.parameter import is_parameterized
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.register import ClassicalRegister, QuantumRegister
from repro.exceptions import BackendError

_QOBJ_COUNTER = itertools.count()

_DIRECT_NAMES = set(STANDARD_GATES) | {"measure", "barrier", "reset"}


def _serialize_operation(operation, qubit_indices, clbit_indices,
                         creg_names):
    """One instruction dict; composite gates are flattened recursively."""
    name = operation.name
    entry: dict = {"name": name, "qubits": list(qubit_indices)}
    if operation.condition is not None:
        register, value = operation.condition
        entry["conditional"] = {"register": register.name, "value": value}
    if name == "measure":
        entry["memory"] = list(clbit_indices)
        return [entry]
    if name in ("barrier", "reset"):
        return [entry]
    if name == "unitary":
        matrix = operation.to_matrix()
        entry["params"] = [
            [[float(cell.real), float(cell.imag)] for cell in row]
            for row in matrix
        ]
        return [entry]
    if name == "diagonal":
        entry["params"] = [
            [float(cell.real), float(cell.imag)]
            for cell in operation.diagonal
        ]
        return [entry]
    if name in _DIRECT_NAMES:
        if operation.params:
            # Unbound parameter expressions survive serialization so a
            # broadcast experiment can ship one symbolic template plus a
            # (batch, params) value array instead of `batch` bound copies.
            # They are picklable (not JSON-able); bound circuits still
            # serialize to plain floats.
            entry["params"] = [
                p if is_parameterized(p) else float(p)
                for p in operation.params
            ]
        return [entry]
    definition = operation.definition
    if definition is None:
        raise BackendError(
            f"cannot assemble '{name}': not a standard gate and no "
            "definition"
        )
    flattened = []
    for sub, qpos, cpos in definition:
        sub = sub.copy()
        if operation.condition is not None and sub.condition is None:
            sub.condition = operation.condition
        flattened.extend(
            _serialize_operation(
                sub,
                [qubit_indices[i] for i in qpos],
                [clbit_indices[i] for i in cpos],
                creg_names,
            )
        )
    return flattened


def circuit_to_experiment(circuit: QuantumCircuit) -> dict:
    """Serialize one circuit to an experiment dictionary."""
    qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
    clbit_index = {c: i for i, c in enumerate(circuit.clbits)}
    instructions = []
    for item in circuit.data:
        instructions.extend(
            _serialize_operation(
                item.operation,
                [qubit_index[q] for q in item.qubits],
                [clbit_index[c] for c in item.clbits],
                {reg.name for reg in circuit.cregs},
            )
        )
    return {
        "header": {
            "name": circuit.name,
            "n_qubits": circuit.num_qubits,
            "memory_slots": circuit.num_clbits,
            "qreg_sizes": [[reg.name, reg.size] for reg in circuit.qregs],
            "creg_sizes": [[reg.name, reg.size] for reg in circuit.cregs],
        },
        "instructions": instructions,
    }


def derive_experiment_seeds(seed, count: int) -> list:
    """One deterministic seed per experiment from a batch seed.

    Expanding the batch seed through a :class:`numpy.random.SeedSequence`
    at assemble time (rather than seeding every experiment identically, or
    letting each worker draw) is what makes results bit-identical across
    the serial, thread, and process executors.  ``seed=None`` stays None
    for every experiment (fresh entropy per run).
    """
    if seed is None:
        return [None] * count
    sequence = np.random.SeedSequence(int(seed))
    return [int(s) for s in sequence.generate_state(count, dtype=np.uint64)]


#: Shots per chunk when an experiment's shots are split into shot-chunks.
#: Runs at or below this size stay a single chunk, whose seed is the
#: experiment seed itself — exactly the pre-chunking pipeline.
DEFAULT_SHOT_CHUNK_SIZE = 16384


def shot_chunk_bounds(shots: int, chunk_size=None) -> list:
    """Split ``shots`` into ``(start, stop)`` shot-chunk bounds.

    The layout is a pure function of ``(shots, chunk_size)`` — never of
    the executor kind, worker count, or host — so the chunk unit is
    identical whether the chunks are dispatched across a pool, run
    inline by one worker, or re-run by ``Job.resume``.  ``chunk_size``
    of None means :data:`DEFAULT_SHOT_CHUNK_SIZE`; False (or anything
    falsy but not None) disables splitting entirely.
    """
    if shots < 1:
        raise BackendError("shots must be positive")
    if chunk_size is None:
        chunk_size = DEFAULT_SHOT_CHUNK_SIZE
    if not chunk_size or shots <= int(chunk_size):
        return [(0, shots)]
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise BackendError("shot_chunk_size must be positive")
    return [
        (start, min(start + chunk_size, shots))
        for start in range(0, shots, chunk_size)
    ]


def derive_chunk_seeds(experiment_seed, count: int) -> list:
    """One deterministic seed per shot-chunk from the experiment seed.

    A single chunk keeps the experiment seed unchanged, so runs that do
    not split (shots within the chunk size, or chunking disabled) are
    bit-identical to the pre-chunking pipeline.  Multi-chunk layouts
    expand the experiment seed through the same
    :class:`numpy.random.SeedSequence` construction that derives
    experiment seeds from the batch seed — fixed at assemble time, so a
    chunk re-run by the retry path, another executor, or
    ``Job.resume`` reproduces its counts bit-identically.
    """
    if count == 1:
        return [experiment_seed]
    return derive_experiment_seeds(experiment_seed, count)


def assemble(circuits, shots: int = 1024, seed=None,
             memory: bool = False) -> dict:
    """Bundle circuits into a Qobj-style dictionary.

    The batch-level config records the caller's ``seed``; each experiment
    additionally carries its own derived seed (see
    :func:`derive_experiment_seeds`).
    """
    if not isinstance(circuits, (list, tuple)):
        circuits = [circuits]
    if not circuits:
        raise BackendError("nothing to assemble")
    experiments = [circuit_to_experiment(c) for c in circuits]
    for index, (experiment, exp_seed) in enumerate(zip(
        experiments, derive_experiment_seeds(seed, len(experiments))
    )):
        # The index is the experiment's stable identity within the batch:
        # retries and executor fallbacks re-run by index with this same
        # derived seed, which is what keeps them bit-identical.
        experiment["config"] = {"seed": exp_seed, "index": index}
    return {
        "qobj_id": f"qobj-{next(_QOBJ_COUNTER)}",
        "type": "QASM",
        "schema_version": "1.3.0",
        "config": {"shots": shots, "seed": seed, "memory": memory},
        "experiments": experiments,
    }


def experiment_to_circuit(experiment: dict) -> QuantumCircuit:
    """Rebuild a circuit from an experiment dictionary."""
    header = experiment["header"]
    circuit = QuantumCircuit(name=header.get("name", "qobj-circuit"))
    cregs_by_name = {}
    for name, size in header.get("qreg_sizes", []):
        circuit.add_register(QuantumRegister(size, name))
    for name, size in header.get("creg_sizes", []):
        register = ClassicalRegister(size, name)
        cregs_by_name[name] = register
        circuit.add_register(register)
    if circuit.num_qubits != header.get("n_qubits", circuit.num_qubits):
        raise BackendError("header qubit count mismatch")
    qubits = circuit.qubits
    clbits = circuit.clbits
    for entry in experiment["instructions"]:
        name = entry["name"]
        qargs = [qubits[i] for i in entry.get("qubits", [])]
        if name == "measure":
            cargs = [clbits[i] for i in entry["memory"]]
            operation = Measure()
        elif name == "barrier":
            operation = Barrier(len(qargs))
            cargs = []
        elif name == "reset":
            operation = Reset()
            cargs = []
        elif name == "unitary":
            rows = entry["params"]
            matrix = np.array(
                [[complex(re, im) for re, im in row] for row in rows]
            )
            operation = UnitaryGate(matrix)
            cargs = []
        elif name == "diagonal":
            operation = DiagonalGate(
                np.array([complex(re, im) for re, im in entry["params"]])
            )
            cargs = []
        else:
            operation = get_standard_gate(name, entry.get("params", []))
            cargs = []
        if "conditional" in entry:
            condition = entry["conditional"]
            register = cregs_by_name.get(condition["register"])
            if register is None:
                raise BackendError(
                    f"conditional on unknown register "
                    f"'{condition['register']}'"
                )
            operation.condition = (register, condition["value"])
        circuit.data.append(CircuitInstruction(operation, qargs, cargs))
    return circuit


def disassemble(qobj: dict):
    """Rebuild ``(circuits, config)`` from a Qobj dictionary."""
    if qobj.get("type") != "QASM":
        raise BackendError(f"unsupported qobj type {qobj.get('type')!r}")
    circuits = [
        experiment_to_circuit(e) for e in qobj.get("experiments", [])
    ]
    return circuits, dict(qobj.get("config", {}))
