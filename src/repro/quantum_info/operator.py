"""Dense unitary/matrix operator, the 'exponentially large matrix' of Sec. V-A."""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.matrix_utils import (
    allclose_up_to_global_phase,
    is_unitary,
)
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError


class Operator:
    """A dense ``2**n x 2**n`` matrix operator on ``n`` qubits."""

    def __init__(self, data):
        if isinstance(data, QuantumCircuit):
            self._data = Operator.from_circuit(data)._data
        elif isinstance(data, Gate):
            self._data = np.asarray(data.to_matrix(), dtype=complex)
        else:
            self._data = np.asarray(data, dtype=complex).copy()
        if self._data.ndim != 2 or self._data.shape[0] != self._data.shape[1]:
            raise SimulatorError("operator matrix must be square")
        dim = self._data.shape[0]
        num_qubits = int(round(math.log2(dim))) if dim > 0 else -1
        if num_qubits < 0 or 2**num_qubits != dim:
            raise SimulatorError(f"dimension {dim} is not a power of two")
        self._num_qubits = num_qubits

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "Operator":
        """Compute the full unitary of a unitary-only circuit.

        The identity's ``2**n`` columns evolve as one batched state through
        the specialized kernels.
        """
        from repro.simulators import kernels

        dim = 2**circuit.num_qubits
        unitary = np.eye(dim, dtype=complex)
        qubit_index = {q: i for i, q in enumerate(circuit.qubits)}
        for item in circuit.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if not isinstance(op, Gate):
                raise SimulatorError(
                    f"circuit contains non-unitary operation '{op.name}'"
                )
            targets = [qubit_index[q] for q in item.qubits]
            unitary = kernels.apply_gate(
                unitary, op, targets, circuit.num_qubits, mutate=True
            )
        return cls(unitary)

    @property
    def data(self) -> np.ndarray:
        """The matrix."""
        return self._data

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Matrix dimension."""
        return self._data.shape[0]

    def to_matrix(self) -> np.ndarray:
        """Return the matrix (alias for :attr:`data`)."""
        return self._data

    def is_unitary(self, atol=1e-8) -> bool:
        """Whether the operator is unitary."""
        return is_unitary(self._data, atol=atol)

    def compose(self, other: "Operator") -> "Operator":
        """Return ``other @ self`` — i.e. apply ``self`` first."""
        return Operator(other._data @ self._data)

    def dot(self, other: "Operator") -> "Operator":
        """Matrix product ``self @ other``."""
        return Operator(self._data @ other._data)

    def tensor(self, other: "Operator") -> "Operator":
        """Kronecker product ``self ⊗ other`` (other on low qubits)."""
        return Operator(np.kron(self._data, other._data))

    def adjoint(self) -> "Operator":
        """Conjugate transpose."""
        return Operator(self._data.conj().T)

    def equiv(self, other, atol=1e-8) -> bool:
        """Equality up to global phase."""
        other_data = other._data if isinstance(other, Operator) else np.asarray(other)
        return allclose_up_to_global_phase(self._data, other_data, atol=atol)

    def __matmul__(self, other):
        if isinstance(other, Operator):
            return self.dot(other)
        return NotImplemented

    def __eq__(self, other):
        if not isinstance(other, Operator):
            return NotImplemented
        return self._data.shape == other._data.shape and bool(
            np.allclose(self._data, other._data)
        )

    def __repr__(self):
        return f"Operator(num_qubits={self._num_qubits})"
