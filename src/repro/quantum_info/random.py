"""Random states and unitaries (Haar measure) for tests and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.quantum_info.density_matrix import DensityMatrix
from repro.quantum_info.statevector import Statevector


def random_statevector(num_qubits: int, seed=None) -> Statevector:
    """A Haar-random pure state."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    vec /= np.linalg.norm(vec)
    return Statevector(vec)


def random_unitary(num_qubits: int, seed=None) -> np.ndarray:
    """A Haar-random unitary matrix, via QR of a Ginibre matrix."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    # Fix the phase ambiguity so the distribution is Haar.
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases


def random_density_matrix(num_qubits: int, rank=None, seed=None) -> DensityMatrix:
    """A random mixed state from a Ginibre ensemble of the given rank."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    rank = dim if rank is None else rank
    ginibre = rng.normal(size=(dim, rank)) + 1j * rng.normal(size=(dim, rank))
    rho = ginibre @ ginibre.conj().T
    rho /= np.trace(rho)
    return DensityMatrix(rho)


def random_hermitian(num_qubits: int, seed=None) -> np.ndarray:
    """A random Hermitian matrix (GUE-like, unnormalized)."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    return (raw + raw.conj().T) / 2
