"""Pure-state representation (Sec. V-A of the paper).

A :class:`Statevector` holds the ``2**n`` complex amplitudes of an ``n``-qubit
pure state in little-endian order and supports evolution by gates and
circuits, sampling, expectation values, and probability queries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.matrix_utils import allclose_up_to_global_phase
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError


class Statevector:
    """An ``n``-qubit pure quantum state."""

    def __init__(self, data, validate=True):
        self._data = np.asarray(data, dtype=complex).ravel().copy()
        dim = self._data.shape[0]
        num_qubits = int(round(math.log2(dim))) if dim > 0 else -1
        if num_qubits < 0 or 2**num_qubits != dim:
            raise SimulatorError(f"statevector dimension {dim} is not a power of two")
        self._num_qubits = num_qubits
        if validate and abs(float(np.vdot(self._data, self._data).real) - 1.0) > 1e-8:
            raise SimulatorError("statevector is not normalized")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a product state from a label like ``'010'`` or ``'+-01'``.

        The label reads left to right from the highest qubit to qubit 0,
        matching the string keys of measurement counts.
        """
        single = {
            "0": np.array([1, 0], dtype=complex),
            "1": np.array([0, 1], dtype=complex),
            "+": np.array([1, 1], dtype=complex) / math.sqrt(2),
            "-": np.array([1, -1], dtype=complex) / math.sqrt(2),
            "r": np.array([1, 1j], dtype=complex) / math.sqrt(2),
            "l": np.array([1, -1j], dtype=complex) / math.sqrt(2),
        }
        state = np.array([1.0 + 0.0j])
        for char in label:
            if char not in single:
                raise SimulatorError(f"unknown state label character '{char}'")
            state = np.kron(state, single[char])
        return cls(state)

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-zeros computational basis state |0...0>."""
        data = np.zeros(2**num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data)

    @classmethod
    def from_instruction(cls, circuit: QuantumCircuit) -> "Statevector":
        """Evolve |0...0> by ``circuit`` (must be unitary-only)."""
        return cls.zero_state(circuit.num_qubits).evolve(circuit)

    # -- accessors -------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The amplitude vector (a copy is *not* made; treat as read-only)."""
        return self._data

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return self._data.shape[0]

    def __getitem__(self, index):
        return self._data[index]

    # -- evolution ---------------------------------------------------------------

    def evolve(self, operation, qargs=None) -> "Statevector":
        """Return the state after applying a gate, matrix, or circuit.

        Args:
            operation: a :class:`Gate`, a dense matrix, or a
                :class:`QuantumCircuit` containing only unitary gates (and
                barriers, which are skipped).
            qargs: target qubit indices for gate/matrix operations; defaults
                to all qubits in order.
        """
        from repro.simulators import kernels

        if isinstance(operation, QuantumCircuit):
            if qargs is not None:
                raise SimulatorError("qargs not supported for circuit evolution")
            state = self._data.copy()  # owned buffer for in-place kernels
            qubit_index = {q: i for i, q in enumerate(operation.qubits)}
            for item in operation.data:
                op = item.operation
                if op.name == "barrier":
                    continue
                if not isinstance(op, Gate):
                    raise SimulatorError(
                        f"cannot evolve by non-unitary operation '{op.name}'"
                    )
                targets = [qubit_index[q] for q in item.qubits]
                state = kernels.apply_gate(
                    state, op, targets, self._num_qubits, mutate=True
                )
            return Statevector(state, validate=False)
        if isinstance(operation, Gate):
            matrix = operation.to_matrix()
        else:
            matrix = np.asarray(operation, dtype=complex)
        if qargs is None:
            qargs = list(range(self._num_qubits))
        new_data = kernels.apply_unitary(
            self._data, matrix, list(qargs), self._num_qubits
        )
        return Statevector(new_data, validate=False)

    # -- measurement ---------------------------------------------------------------

    def probabilities(self, qargs=None) -> np.ndarray:
        """Measurement probabilities, optionally marginalized onto ``qargs``."""
        probs = np.abs(self._data) ** 2
        if qargs is None:
            return probs
        qargs = list(qargs)
        tensor = probs.reshape((2,) * self._num_qubits)
        keep_axes = [self._num_qubits - 1 - q for q in qargs]
        sum_axes = tuple(
            axis for axis in range(self._num_qubits) if axis not in keep_axes
        )
        marginal = tensor.sum(axis=sum_axes) if sum_axes else tensor
        # Reorder remaining axes so the flattened index has qargs[0] as its
        # least-significant bit (i.e. most-significant axis = qargs[-1]).
        remaining = [axis for axis in range(self._num_qubits) if axis in keep_axes]
        desired = [self._num_qubits - 1 - q for q in reversed(qargs)]
        order = [remaining.index(axis) for axis in desired]
        marginal = np.transpose(marginal, order)
        return marginal.ravel()

    def probabilities_dict(self, qargs=None) -> dict:
        """Probabilities keyed by bitstring (qubit ``n-1`` leftmost)."""
        probs = self.probabilities(qargs)
        width = self._num_qubits if qargs is None else len(list(qargs))
        return {
            format(i, f"0{width}b"): float(p)
            for i, p in enumerate(probs)
            if p > 1e-12
        }

    def sample_counts(self, shots: int, seed=None) -> dict:
        """Sample measurement outcomes; returns a bitstring histogram.

        All shots are drawn with one vectorized ``searchsorted`` over the
        cumulative distribution and binned with ``np.unique``.
        """
        rng = np.random.default_rng(seed)
        probs = self._data.real**2 + self._data.imag**2
        cdf = np.cumsum(probs)
        outcomes = np.searchsorted(cdf, rng.random(shots) * cdf[-1], side="right")
        np.minimum(outcomes, self.dim - 1, out=outcomes)
        width = self._num_qubits
        unique, tallies = np.unique(outcomes, return_counts=True)
        return {
            format(int(outcome), f"0{width}b"): int(tally)
            for outcome, tally in zip(unique, tallies)
        }

    def measure(self, seed=None) -> tuple[str, "Statevector"]:
        """Sample one outcome and return (bitstring, collapsed state)."""
        rng = np.random.default_rng(seed)
        probs = np.abs(self._data) ** 2
        probs = probs / probs.sum()
        outcome = int(rng.choice(self.dim, p=probs))
        collapsed = np.zeros_like(self._data)
        collapsed[outcome] = 1.0
        return format(outcome, f"0{self._num_qubits}b"), Statevector(collapsed)

    # -- linear algebra ----------------------------------------------------------------

    def expectation_value(self, operator, qargs=None) -> complex:
        """<psi| O |psi> for an operator matrix or Gate on ``qargs``."""
        if isinstance(operator, Gate):
            matrix = operator.to_matrix()
        elif hasattr(operator, "to_matrix"):
            matrix = operator.to_matrix()
        else:
            matrix = np.asarray(operator, dtype=complex)
        if qargs is None:
            num_targets = int(round(math.log2(matrix.shape[0])))
            qargs = list(range(num_targets))
        from repro.simulators import kernels

        evolved = kernels.apply_unitary(
            self._data, matrix, list(qargs), self._num_qubits
        )
        return complex(np.vdot(self._data, evolved))

    def inner(self, other: "Statevector") -> complex:
        """<self|other>."""
        return complex(np.vdot(self._data, other._data))

    def tensor(self, other: "Statevector") -> "Statevector":
        """Kronecker product ``self ⊗ other`` (other occupies low qubits)."""
        return Statevector(np.kron(self._data, other._data), validate=False)

    def equiv(self, other, atol=1e-8) -> bool:
        """State equality up to global phase."""
        other_data = other._data if isinstance(other, Statevector) else other
        return allclose_up_to_global_phase(self._data, other_data, atol=atol)

    def to_density_matrix(self):
        """Return the pure-state density matrix |psi><psi|."""
        from repro.quantum_info.density_matrix import DensityMatrix

        return DensityMatrix(np.outer(self._data, self._data.conj()))

    def __eq__(self, other):
        if not isinstance(other, Statevector):
            return NotImplemented
        return self._data.shape == other._data.shape and bool(
            np.allclose(self._data, other._data)
        )

    def __repr__(self):
        return f"Statevector({np.array2string(self._data, max_line_width=120)})"
