"""Pauli strings and weighted Pauli sums.

These are the operator currency of the Aqua-style algorithm layer: a VQE
Hamiltonian is a :class:`PauliSumOp`, and expectation values are estimated
per Pauli term either exactly (statevector) or from measurement counts.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AlgorithmError

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_PAULI_PRODUCT = {
    # (a, b) -> (phase, c) with a·b = phase·c
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


class Pauli:
    """An ``n``-qubit Pauli string such as ``"XZI"``.

    The label reads left to right from qubit ``n-1`` down to qubit 0
    (matching bitstring keys), so ``Pauli("XI")`` acts with X on qubit 1.
    """

    def __init__(self, label: str):
        label = label.upper()
        if not label or any(char not in _PAULI_MATRICES for char in label):
            raise AlgorithmError(f"invalid Pauli label {label!r}")
        self._label = label

    @property
    def label(self) -> str:
        """The Pauli string."""
        return self._label

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return len(self._label)

    def char(self, qubit: int) -> str:
        """The Pauli letter acting on ``qubit`` (0 = rightmost)."""
        return self._label[len(self._label) - 1 - qubit]

    def to_matrix(self) -> np.ndarray:
        """Dense matrix in little-endian qubit order."""
        matrix = np.array([[1.0 + 0.0j]])
        for char in self._label:
            matrix = np.kron(matrix, _PAULI_MATRICES[char])
        return matrix

    def compose(self, other: "Pauli") -> tuple[complex, "Pauli"]:
        """Return (phase, pauli) with ``self·other = phase·pauli``."""
        if self.num_qubits != other.num_qubits:
            raise AlgorithmError("Pauli sizes differ")
        phase = 1.0 + 0.0j
        chars = []
        for a, b in zip(self._label, other._label):
            factor, c = _PAULI_PRODUCT[(a, b)]
            phase *= factor
            chars.append(c)
        return phase, Pauli("".join(chars))

    def commutes(self, other: "Pauli") -> bool:
        """Whether the two Pauli strings commute."""
        anti = 0
        for a, b in zip(self._label, other._label):
            if a != "I" and b != "I" and a != b:
                anti += 1
        return anti % 2 == 0

    @property
    def support(self) -> list[int]:
        """Qubits on which the Pauli acts non-trivially, ascending."""
        n = len(self._label)
        return sorted(
            n - 1 - i for i, char in enumerate(self._label) if char != "I"
        )

    def __eq__(self, other):
        if not isinstance(other, Pauli):
            return NotImplemented
        return self._label == other._label

    def __hash__(self):
        return hash(self._label)

    def __repr__(self):
        return f"Pauli('{self._label}')"

    def __str__(self):
        return self._label


class PauliSumOp:
    """A real- or complex-weighted sum of Pauli strings (a Hamiltonian)."""

    def __init__(self, terms):
        """``terms``: iterable of ``(coefficient, Pauli-or-label)`` pairs."""
        collected: dict[str, complex] = {}
        num_qubits = None
        for coeff, pauli in terms:
            if isinstance(pauli, str):
                pauli = Pauli(pauli)
            if num_qubits is None:
                num_qubits = pauli.num_qubits
            elif pauli.num_qubits != num_qubits:
                raise AlgorithmError("mixed Pauli sizes in sum")
            collected[pauli.label] = collected.get(pauli.label, 0.0) + complex(coeff)
        if num_qubits is None:
            raise AlgorithmError("empty Pauli sum")
        self._num_qubits = num_qubits
        self._terms = [
            (coeff, Pauli(label))
            for label, coeff in collected.items()
            if abs(coeff) > 1e-14
        ]

    @classmethod
    def from_dict(cls, mapping: dict) -> "PauliSumOp":
        """Build from ``{"XZ": 0.5, "II": -1.0}``-style dicts."""
        return cls([(coeff, label) for label, coeff in mapping.items()])

    @property
    def terms(self) -> list:
        """List of ``(coefficient, Pauli)`` pairs."""
        return list(self._terms)

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    def to_matrix(self) -> np.ndarray:
        """Dense Hamiltonian matrix."""
        dim = 2**self._num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for coeff, pauli in self._terms:
            matrix += coeff * pauli.to_matrix()
        return matrix

    def ground_state_energy(self) -> float:
        """Smallest eigenvalue, by exact diagonalization."""
        eigenvalues = np.linalg.eigvalsh(self.to_matrix())
        return float(eigenvalues[0])

    def expectation(self, statevector) -> float:
        """<psi|H|psi> for a Statevector or raw amplitude array.

        Matrix-free: a Pauli string is a signed bit-flip permutation, so
        each term is one parity-sign pass plus an inner product —
        ``O(T * 2**n)`` instead of materializing the ``2**n x 2**n``
        Hamiltonian (which dominated every exact VQE iteration at 12+
        qubits).
        """
        data = getattr(statevector, "data", statevector)
        data = np.asarray(data, dtype=complex).reshape(-1)
        if data.size != 1 << self._num_qubits:
            raise AlgorithmError(
                "statevector dimension does not match the Pauli sum"
            )
        indices = np.arange(data.size, dtype=np.intp)
        total = 0.0 + 0.0j
        for coeff, pauli in self._terms:
            label = pauli.label
            n = len(label)
            x_mask = y_mask = z_mask = 0
            for position, char in enumerate(label):
                bit = 1 << (n - 1 - position)
                if char == "X":
                    x_mask |= bit
                elif char == "Y":
                    y_mask |= bit
                elif char == "Z":
                    z_mask |= bit
            flip = x_mask | y_mask
            sign_mask = z_mask | y_mask
            target = data[indices ^ flip] if flip else data
            if sign_mask:
                parity = np.bitwise_count(
                    (indices & sign_mask).astype(np.uint64)
                ).astype(np.int64) & 1
                target = (1.0 - 2.0 * parity) * target
            value = np.vdot(data, target)
            y_count = bin(y_mask).count("1")
            total += coeff * ((-1j) ** y_count) * value
        return float(np.real(total))

    def __add__(self, other: "PauliSumOp") -> "PauliSumOp":
        if not isinstance(other, PauliSumOp):
            return NotImplemented
        return PauliSumOp(
            [(c, p.label) for c, p in self._terms]
            + [(c, p.label) for c, p in other._terms]
        )

    def __mul__(self, scalar) -> "PauliSumOp":
        return PauliSumOp([(c * scalar, p.label) for c, p in self._terms])

    __rmul__ = __mul__

    def __len__(self):
        return len(self._terms)

    def __repr__(self):
        parts = " + ".join(f"{c:.4g}*{p.label}" for c, p in self._terms[:6])
        suffix = " + ..." if len(self._terms) > 6 else ""
        return f"PauliSumOp({parts}{suffix})"
