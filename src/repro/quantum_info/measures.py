"""State and channel measures: fidelity, entropy, purity, partial trace."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SimulatorError
from repro.quantum_info.density_matrix import DensityMatrix
from repro.quantum_info.statevector import Statevector


def _as_density(state) -> np.ndarray:
    if isinstance(state, Statevector):
        return np.outer(state.data, state.data.conj())
    if isinstance(state, DensityMatrix):
        return state.data
    arr = np.asarray(state, dtype=complex)
    if arr.ndim == 1:
        return np.outer(arr, arr.conj())
    return arr


def state_fidelity(state_a, state_b) -> float:
    """Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2.

    Accepts any mix of :class:`Statevector`, :class:`DensityMatrix`, or raw
    arrays; pure-pure and pure-mixed cases use the cheaper overlap formulas.
    """
    pure_a = isinstance(state_a, Statevector) or (
        not isinstance(state_a, DensityMatrix)
        and np.asarray(state_a).ndim == 1
    )
    pure_b = isinstance(state_b, Statevector) or (
        not isinstance(state_b, DensityMatrix)
        and np.asarray(state_b).ndim == 1
    )
    if pure_a and pure_b:
        vec_a = state_a.data if isinstance(state_a, Statevector) else np.asarray(state_a)
        vec_b = state_b.data if isinstance(state_b, Statevector) else np.asarray(state_b)
        return float(abs(np.vdot(vec_a, vec_b)) ** 2)
    if pure_a or pure_b:
        vec = state_a if pure_a else state_b
        rho = _as_density(state_b if pure_a else state_a)
        vec = vec.data if isinstance(vec, Statevector) else np.asarray(vec)
        return float(np.real(np.vdot(vec, rho @ vec)))
    rho = _as_density(state_a)
    sigma = _as_density(state_b)
    from scipy.linalg import sqrtm

    sqrt_rho = sqrtm(rho)
    inner = sqrtm(sqrt_rho @ sigma @ sqrt_rho)
    return float(np.real(np.trace(inner)) ** 2)


def purity(state) -> float:
    """Tr(rho^2)."""
    rho = _as_density(state)
    return float(np.real(np.trace(rho @ rho)))


def entropy(state, base: float = 2.0) -> float:
    """Von Neumann entropy S(rho) = -Tr(rho log rho)."""
    rho = _as_density(state)
    eigenvalues = np.linalg.eigvalsh(rho)
    eigenvalues = eigenvalues[eigenvalues > 1e-12]
    return float(-np.sum(eigenvalues * np.log(eigenvalues)) / math.log(base))


def partial_trace(state, trace_qubits) -> DensityMatrix:
    """Trace out ``trace_qubits``, returning the reduced density matrix.

    The remaining qubits keep their relative order (and are re-indexed from
    zero, lowest original index first).
    """
    rho = _as_density(state)
    dim = rho.shape[0]
    num_qubits = int(round(math.log2(dim)))
    if 2**num_qubits != dim:
        raise SimulatorError("density matrix dimension is not a power of two")
    trace_qubits = sorted(set(trace_qubits))
    if any(q < 0 or q >= num_qubits for q in trace_qubits):
        raise SimulatorError("trace qubit index out of range")
    keep = [q for q in range(num_qubits) if q not in trace_qubits]
    tensor = rho.reshape((2,) * (2 * num_qubits))
    # Row axes 0..n-1 (axis a = qubit n-1-a); column axes n..2n-1 similarly.
    # Trace ascending qubit indices; earlier removals only shift labels of
    # qubits above the removed one, which the ``traced`` offset accounts for.
    remaining = num_qubits
    traced = 0
    for q in trace_qubits:
        adjusted = q - traced
        axis_row = remaining - 1 - adjusted
        tensor = np.trace(tensor, axis1=axis_row, axis2=axis_row + remaining)
        remaining -= 1
        traced += 1
    reduced_dim = 2 ** len(keep)
    return DensityMatrix(tensor.reshape(reduced_dim, reduced_dim), validate=False)


def concurrence(state) -> float:
    """Two-qubit concurrence (entanglement monotone)."""
    rho = _as_density(state)
    if rho.shape[0] != 4:
        raise SimulatorError("concurrence is defined for two qubits")
    sigma_y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    yy = np.kron(sigma_y, sigma_y)
    rho_tilde = yy @ rho.conj() @ yy
    eigenvalues = np.linalg.eigvals(rho @ rho_tilde)
    lambdas = np.sqrt(np.abs(np.real(eigenvalues)))
    lambdas = np.sort(lambdas)[::-1]
    return float(max(0.0, lambdas[0] - lambdas[1] - lambdas[2] - lambdas[3]))


def process_fidelity(channel_unitary, target_unitary) -> float:
    """Fidelity between two unitaries: |Tr(U+ V)|^2 / d^2."""
    u = np.asarray(channel_unitary, dtype=complex)
    v = np.asarray(target_unitary, dtype=complex)
    if u.shape != v.shape:
        raise SimulatorError("unitary shapes differ")
    dim = u.shape[0]
    return float(abs(np.trace(u.conj().T @ v)) ** 2 / dim**2)


def hellinger_fidelity(counts_a: dict, counts_b: dict) -> float:
    """Classical fidelity between two counts histograms."""
    total_a = sum(counts_a.values())
    total_b = sum(counts_b.values())
    if total_a == 0 or total_b == 0:
        raise SimulatorError("empty counts")
    keys = set(counts_a) | set(counts_b)
    overlap = sum(
        math.sqrt((counts_a.get(k, 0) / total_a) * (counts_b.get(k, 0) / total_b))
        for k in keys
    )
    return float(overlap**2)
