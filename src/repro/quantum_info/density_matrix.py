"""Mixed-state representation used by the noisy (Aer-style) simulator."""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import SimulatorError


class DensityMatrix:
    """An ``n``-qubit density operator rho."""

    def __init__(self, data, validate=True):
        self._data = np.asarray(data, dtype=complex).copy()
        if self._data.ndim == 1:
            self._data = np.outer(self._data, self._data.conj())
        if self._data.ndim != 2 or self._data.shape[0] != self._data.shape[1]:
            raise SimulatorError("density matrix must be square")
        dim = self._data.shape[0]
        num_qubits = int(round(math.log2(dim))) if dim > 0 else -1
        if num_qubits < 0 or 2**num_qubits != dim:
            raise SimulatorError(f"dimension {dim} is not a power of two")
        self._num_qubits = num_qubits
        if validate:
            if abs(float(np.trace(self._data).real) - 1.0) > 1e-6:
                raise SimulatorError("density matrix trace is not one")
            if not np.allclose(self._data, self._data.conj().T, atol=1e-8):
                raise SimulatorError("density matrix is not Hermitian")

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """The pure |0...0><0...0| state."""
        dim = 2**num_qubits
        data = np.zeros((dim, dim), dtype=complex)
        data[0, 0] = 1.0
        return cls(data, validate=False)

    @classmethod
    def from_instruction(cls, circuit: QuantumCircuit) -> "DensityMatrix":
        """Evolve |0...0> by a unitary-only circuit."""
        return cls.zero_state(circuit.num_qubits).evolve(circuit)

    @property
    def data(self) -> np.ndarray:
        """The density matrix array."""
        return self._data

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return self._data.shape[0]

    # -- evolution ------------------------------------------------------------

    def _apply_unitary(self, matrix, qargs) -> np.ndarray:
        """rho -> U rho U+ applied on ``qargs``.

        Both sides go through the specialized kernels: the left product
        treats rho's columns as a batch, the right product is the conjugated
        left product of the transpose.
        """
        from repro.simulators import kernels

        rho = kernels.apply_unitary(
            self._data, matrix, list(qargs), self._num_qubits
        )
        # Right-multiplication by U+ = conjugate applied to the transposed rho.
        rho = kernels.apply_unitary(
            rho.conj().T, matrix, list(qargs), self._num_qubits, mutate=True
        ).conj().T
        return rho

    def evolve(self, operation, qargs=None) -> "DensityMatrix":
        """Apply a gate, matrix, circuit, or Kraus channel.

        A Kraus channel is supplied as a list of matrices ``[K_0, K_1, ...]``.
        """
        if isinstance(operation, QuantumCircuit):
            state = self
            qubit_index = {q: i for i, q in enumerate(operation.qubits)}
            for item in operation.data:
                op = item.operation
                if op.name == "barrier":
                    continue
                if not isinstance(op, Gate):
                    raise SimulatorError(
                        f"cannot evolve density matrix by '{op.name}'"
                    )
                targets = [qubit_index[q] for q in item.qubits]
                state = state.evolve(op.to_matrix(), qargs=targets)
            return state
        if isinstance(operation, Gate):
            operation = operation.to_matrix()
        if isinstance(operation, (list, tuple)):
            return self.apply_channel(operation, qargs)
        matrix = np.asarray(operation, dtype=complex)
        if qargs is None:
            qargs = list(range(self._num_qubits))
        fresh = DensityMatrix.__new__(DensityMatrix)
        fresh._num_qubits = self._num_qubits
        fresh._data = self._apply_unitary(matrix, qargs)
        return fresh

    def apply_channel(self, kraus_ops, qargs=None) -> "DensityMatrix":
        """Apply a CPTP channel given by Kraus operators on ``qargs``."""
        if qargs is None:
            qargs = list(range(self._num_qubits))
        from repro.simulators import kernels

        qargs = list(qargs)
        total = np.zeros_like(self._data)
        for kraus in kraus_ops:
            kraus = np.asarray(kraus, dtype=complex)
            term = kernels.apply_unitary(
                self._data, kraus, qargs, self._num_qubits
            )
            term = kernels.apply_unitary(
                term.conj().T, kraus, qargs, self._num_qubits, mutate=True
            ).conj().T
            total += term
        fresh = DensityMatrix.__new__(DensityMatrix)
        fresh._num_qubits = self._num_qubits
        fresh._data = total
        return fresh

    # -- measurement ------------------------------------------------------------

    def probabilities(self, qargs=None) -> np.ndarray:
        """Diagonal measurement probabilities, optionally marginalized."""
        from repro.quantum_info.statevector import Statevector

        diag = np.real(np.diag(self._data)).clip(min=0.0)
        helper = Statevector.__new__(Statevector)
        helper._data = np.sqrt(diag)
        helper._num_qubits = self._num_qubits
        return helper.probabilities(qargs)

    def probabilities_dict(self, qargs=None) -> dict:
        """Probabilities keyed by bitstring."""
        probs = self.probabilities(qargs)
        width = self._num_qubits if qargs is None else len(list(qargs))
        return {
            format(i, f"0{width}b"): float(p)
            for i, p in enumerate(probs)
            if p > 1e-12
        }

    def sample_counts(self, shots: int, seed=None) -> dict:
        """Sample measurement outcomes from the diagonal.

        All shots are drawn with one vectorized ``searchsorted`` over the
        cumulative distribution and binned with ``np.unique`` — same
        scheme as ``Statevector.sample_counts`` and the qasm simulator's
        sampling path.
        """
        rng = np.random.default_rng(seed)
        cdf = np.cumsum(self.probabilities())
        outcomes = np.searchsorted(
            cdf, rng.random(shots) * cdf[-1], side="right"
        )
        np.minimum(outcomes, self.dim - 1, out=outcomes)
        width = self._num_qubits
        unique, tallies = np.unique(outcomes, return_counts=True)
        return {
            format(int(outcome), f"0{width}b"): int(tally)
            for outcome, tally in zip(unique, tallies)
        }

    # -- functionals --------------------------------------------------------------

    def expectation_value(self, operator, qargs=None) -> complex:
        """Tr(rho O) with O acting on ``qargs``."""
        if hasattr(operator, "to_matrix"):
            operator = operator.to_matrix()
        matrix = np.asarray(operator, dtype=complex)
        if qargs is None:
            num_targets = int(round(math.log2(matrix.shape[0])))
            qargs = list(range(num_targets))
        from repro.simulators import kernels

        evolved = kernels.apply_unitary(
            self._data, matrix, list(qargs), self._num_qubits
        )
        return complex(np.trace(evolved))

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states."""
        return float(np.real(np.trace(self._data @ self._data)))

    def __eq__(self, other):
        if not isinstance(other, DensityMatrix):
            return NotImplemented
        return self._data.shape == other._data.shape and bool(
            np.allclose(self._data, other._data)
        )

    def __repr__(self):
        return f"DensityMatrix(dim={self.dim})"
