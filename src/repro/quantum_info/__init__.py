"""Quantum information primitives: states, operators, Paulis, measures."""

from repro.quantum_info.density_matrix import DensityMatrix
from repro.quantum_info.measures import (
    concurrence,
    entropy,
    hellinger_fidelity,
    partial_trace,
    process_fidelity,
    purity,
    state_fidelity,
)
from repro.quantum_info.operator import Operator
from repro.quantum_info.pauli import Pauli, PauliSumOp
from repro.quantum_info.random import (
    random_density_matrix,
    random_hermitian,
    random_statevector,
    random_unitary,
)
from repro.quantum_info.statevector import Statevector

__all__ = [
    "DensityMatrix",
    "Operator",
    "Pauli",
    "PauliSumOp",
    "Statevector",
    "concurrence",
    "entropy",
    "hellinger_fidelity",
    "partial_trace",
    "process_fidelity",
    "purity",
    "random_density_matrix",
    "random_hermitian",
    "random_statevector",
    "random_unitary",
    "state_fidelity",
]
