"""Measurement, reset, and barrier instructions."""

from __future__ import annotations

from repro.circuit.instruction import Instruction


class Measure(Instruction):
    """Projective Z-basis measurement of one qubit into one clbit."""

    def __init__(self):
        super().__init__("measure", 1, 1)

    def inverse(self):
        from repro.exceptions import CircuitError

        raise CircuitError("measurement is not invertible")


class Reset(Instruction):
    """Reset a qubit to |0> (measure and conditionally flip)."""

    def __init__(self):
        super().__init__("reset", 1, 0)

    def inverse(self):
        from repro.exceptions import CircuitError

        raise CircuitError("reset is not invertible")


class Barrier(Instruction):
    """A directive preventing the transpiler from reordering across it."""

    def __init__(self, num_qubits):
        super().__init__("barrier", num_qubits, 0)

    def inverse(self):
        return Barrier(self.num_qubits)
