"""The :class:`QuantumCircuit` — the central user-facing object.

Mirrors the API the paper demonstrates in Section IV::

    q = QuantumRegister(4, 'q')
    circ = QuantumCircuit(q)
    circ.h(q[2])
    circ.cx(q[2], q[3])
    ...
    measured = circ + measurement

plus the analysis and transformation methods (depth, count_ops, inverse,
compose, parameter binding) that the transpiler and algorithm layers build
on.
"""

from __future__ import annotations

import itertools

from repro.circuit.bit import Clbit, Qubit
from repro.circuit.circuitinstruction import CircuitInstruction
from repro.circuit.gate import Gate
from repro.circuit.instruction import Instruction
from repro.circuit.library import standard_gates as sg
from repro.circuit.measure import Barrier, Measure, Reset
from repro.circuit.register import ClassicalRegister, QuantumRegister, Register
from repro.exceptions import CircuitError


class QuantumCircuit:
    """An ordered list of instructions over quantum and classical registers."""

    _name_counter = itertools.count()

    def __init__(self, *regs, name=None):
        if name is None:
            name = f"circuit-{next(QuantumCircuit._name_counter)}"
        self.name = name
        self.qregs: list[QuantumRegister] = []
        self.cregs: list[ClassicalRegister] = []
        self._qubits: list[Qubit] = []
        self._clbits: list[Clbit] = []
        self._qubit_indices: dict[Qubit, int] = {}
        self._clbit_indices: dict[Clbit, int] = {}
        self.data: list[CircuitInstruction] = []

        # Integer shorthand: QuantumCircuit(3) or QuantumCircuit(3, 2).
        if regs and all(isinstance(reg, int) for reg in regs):
            if len(regs) > 2:
                raise CircuitError(
                    "integer form takes at most (num_qubits, num_clbits)"
                )
            if regs[0] > 0:
                self.add_register(QuantumRegister(regs[0], "q"))
            if len(regs) == 2 and regs[1] > 0:
                self.add_register(ClassicalRegister(regs[1], "c"))
        else:
            for reg in regs:
                self.add_register(reg)

    # -- registers & bits ----------------------------------------------------

    def add_register(self, register: Register) -> None:
        """Add a quantum or classical register to the circuit."""
        if isinstance(register, QuantumRegister):
            if any(existing.name == register.name for existing in self.qregs):
                raise CircuitError(f"duplicate register name '{register.name}'")
            self.qregs.append(register)
            for bit in register:
                self._qubit_indices[bit] = len(self._qubits)
                self._qubits.append(bit)
        elif isinstance(register, ClassicalRegister):
            if any(existing.name == register.name for existing in self.cregs):
                raise CircuitError(f"duplicate register name '{register.name}'")
            self.cregs.append(register)
            for bit in register:
                self._clbit_indices[bit] = len(self._clbits)
                self._clbits.append(bit)
        else:
            raise CircuitError(f"expected a register, got {type(register).__name__}")

    @property
    def qubits(self) -> list[Qubit]:
        """All qubits, in register-addition order."""
        return list(self._qubits)

    @property
    def clbits(self) -> list[Clbit]:
        """All classical bits, in register-addition order."""
        return list(self._clbits)

    @property
    def num_qubits(self) -> int:
        """Total number of qubits."""
        return len(self._qubits)

    @property
    def num_clbits(self) -> int:
        """Total number of classical bits."""
        return len(self._clbits)

    def find_bit(self, bit) -> int:
        """Return the flat index of a qubit or clbit in this circuit."""
        if isinstance(bit, Qubit):
            try:
                return self._qubit_indices[bit]
            except KeyError:
                raise CircuitError(f"{bit!r} is not in this circuit") from None
        if isinstance(bit, Clbit):
            try:
                return self._clbit_indices[bit]
            except KeyError:
                raise CircuitError(f"{bit!r} is not in this circuit") from None
        raise CircuitError(f"expected a bit, got {type(bit).__name__}")

    # -- argument resolution ---------------------------------------------------

    def _resolve_qargs(self, spec) -> list[Qubit]:
        """Flatten a qubit specifier into a list of qubits of this circuit."""
        if isinstance(spec, Qubit):
            self.find_bit(spec)
            return [spec]
        if isinstance(spec, int):
            if spec < 0 or spec >= len(self._qubits):
                raise CircuitError(f"qubit index {spec} out of range")
            return [self._qubits[spec]]
        if isinstance(spec, QuantumRegister):
            return list(spec)
        if isinstance(spec, (list, tuple, range)):
            resolved = []
            for item in spec:
                resolved.extend(self._resolve_qargs(item))
            return resolved
        if isinstance(spec, slice):
            return self._qubits[spec]
        raise CircuitError(f"cannot interpret {spec!r} as qubits")

    def _resolve_cargs(self, spec) -> list[Clbit]:
        """Flatten a clbit specifier into a list of clbits of this circuit."""
        if isinstance(spec, Clbit):
            self.find_bit(spec)
            return [spec]
        if isinstance(spec, int):
            if spec < 0 or spec >= len(self._clbits):
                raise CircuitError(f"clbit index {spec} out of range")
            return [self._clbits[spec]]
        if isinstance(spec, ClassicalRegister):
            return list(spec)
        if isinstance(spec, (list, tuple, range)):
            resolved = []
            for item in spec:
                resolved.extend(self._resolve_cargs(item))
            return resolved
        if isinstance(spec, slice):
            return self._clbits[spec]
        raise CircuitError(f"cannot interpret {spec!r} as clbits")

    # -- appending ------------------------------------------------------------

    def append(self, instruction: Instruction, qargs=(), cargs=()) -> None:
        """Append an instruction, broadcasting register arguments.

        Broadcasting follows OpenQASM semantics: a 1-qubit gate applied to a
        whole register is applied to each of its qubits; a multi-qubit gate
        given equal-length bit lists is applied position-wise.
        """
        if not isinstance(instruction, Instruction):
            raise CircuitError(
                f"expected an Instruction, got {type(instruction).__name__}"
            )
        qarg_groups = [self._resolve_qargs(arg) for arg in qargs]
        carg_groups = [self._resolve_cargs(arg) for arg in cargs]
        for qubits, clbits in self._broadcast(
            instruction, qarg_groups, carg_groups
        ):
            self._check_dups(qubits)
            self.data.append(CircuitInstruction(instruction, qubits, clbits))

    def _broadcast(self, instruction, qarg_groups, carg_groups):
        """Yield concrete (qubits, clbits) applications for one append call."""
        expected_q = instruction.num_qubits
        expected_c = instruction.num_clbits
        if instruction.name == "barrier":
            flat = [bit for group in qarg_groups for bit in group]
            yield flat, []
            return
        lengths = {len(group) for group in qarg_groups + carg_groups}
        lengths.discard(1)
        if len(lengths) > 1:
            raise CircuitError(
                f"cannot broadcast arguments of mismatched lengths {sorted(lengths)}"
            )
        repeat = lengths.pop() if lengths else 1
        if len(qarg_groups) != expected_q:
            # Allow the flat form: append(gate, [q0, q1]) for a 2-qubit gate.
            flat = [bit for group in qarg_groups for bit in group]
            flat_c = [bit for group in carg_groups for bit in group]
            if len(flat) == expected_q and len(flat_c) == expected_c:
                yield flat, flat_c
                return
            raise CircuitError(
                f"'{instruction.name}' expects {expected_q} qubit argument(s), "
                f"got {len(qarg_groups)}"
            )
        if len(carg_groups) != expected_c:
            raise CircuitError(
                f"'{instruction.name}' expects {expected_c} clbit argument(s), "
                f"got {len(carg_groups)}"
            )
        for i in range(repeat):
            qubits = [
                group[0] if len(group) == 1 else group[i] for group in qarg_groups
            ]
            clbits = [
                group[0] if len(group) == 1 else group[i] for group in carg_groups
            ]
            yield qubits, clbits

    @staticmethod
    def _check_dups(qubits):
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit arguments: {qubits}")

    # -- standard-gate builder methods ----------------------------------------

    def i(self, qubit):
        """Apply the identity gate."""
        self.append(sg.IGate(), [qubit])

    id = i

    def x(self, qubit):
        """Apply a Pauli-X gate."""
        self.append(sg.XGate(), [qubit])

    def y(self, qubit):
        """Apply a Pauli-Y gate."""
        self.append(sg.YGate(), [qubit])

    def z(self, qubit):
        """Apply a Pauli-Z gate."""
        self.append(sg.ZGate(), [qubit])

    def h(self, qubit):
        """Apply a Hadamard gate."""
        self.append(sg.HGate(), [qubit])

    def s(self, qubit):
        """Apply an S gate."""
        self.append(sg.SGate(), [qubit])

    def sdg(self, qubit):
        """Apply an S-dagger gate."""
        self.append(sg.SdgGate(), [qubit])

    def t(self, qubit):
        """Apply a T gate."""
        self.append(sg.TGate(), [qubit])

    def tdg(self, qubit):
        """Apply a T-dagger gate."""
        self.append(sg.TdgGate(), [qubit])

    def sx(self, qubit):
        """Apply a sqrt(X) gate."""
        self.append(sg.SXGate(), [qubit])

    def sxdg(self, qubit):
        """Apply a sqrt(X)-dagger gate."""
        self.append(sg.SXdgGate(), [qubit])

    def rx(self, theta, qubit):
        """Apply an X rotation."""
        self.append(sg.RXGate(theta), [qubit])

    def ry(self, theta, qubit):
        """Apply a Y rotation."""
        self.append(sg.RYGate(theta), [qubit])

    def rz(self, phi, qubit):
        """Apply a Z rotation."""
        self.append(sg.RZGate(phi), [qubit])

    def u1(self, lam, qubit):
        """Apply a u1 phase gate."""
        self.append(sg.U1Gate(lam), [qubit])

    def p(self, lam, qubit):
        """Apply a phase gate (alias of u1)."""
        self.append(sg.PhaseGate(lam), [qubit])

    def u2(self, phi, lam, qubit):
        """Apply a u2 gate."""
        self.append(sg.U2Gate(phi, lam), [qubit])

    def u3(self, theta, phi, lam, qubit):
        """Apply the generic single-qubit gate u3."""
        self.append(sg.U3Gate(theta, phi, lam), [qubit])

    def u(self, theta, phi, lam, qubit):
        """Apply the generic single-qubit gate (modern name)."""
        self.append(sg.UGate(theta, phi, lam), [qubit])

    def cx(self, control, target):
        """Apply a CNOT gate."""
        self.append(sg.CXGate(), [control, target])

    cnot = cx

    def cy(self, control, target):
        """Apply a controlled-Y gate."""
        self.append(sg.CYGate(), [control, target])

    def cz(self, control, target):
        """Apply a controlled-Z gate."""
        self.append(sg.CZGate(), [control, target])

    def ch(self, control, target):
        """Apply a controlled-Hadamard gate."""
        self.append(sg.CHGate(), [control, target])

    def swap(self, qubit1, qubit2):
        """Apply a SWAP gate."""
        self.append(sg.SwapGate(), [qubit1, qubit2])

    def crx(self, theta, control, target):
        """Apply a controlled X rotation."""
        self.append(sg.CRXGate(theta), [control, target])

    def cry(self, theta, control, target):
        """Apply a controlled Y rotation."""
        self.append(sg.CRYGate(theta), [control, target])

    def crz(self, theta, control, target):
        """Apply a controlled Z rotation."""
        self.append(sg.CRZGate(theta), [control, target])

    def cu1(self, lam, control, target):
        """Apply a controlled phase gate."""
        self.append(sg.CU1Gate(lam), [control, target])

    cp = cu1

    def cu3(self, theta, phi, lam, control, target):
        """Apply a controlled u3 gate."""
        self.append(sg.CU3Gate(theta, phi, lam), [control, target])

    def rzz(self, theta, qubit1, qubit2):
        """Apply a ZZ interaction."""
        self.append(sg.RZZGate(theta), [qubit1, qubit2])

    def rxx(self, theta, qubit1, qubit2):
        """Apply an XX interaction."""
        self.append(sg.RXXGate(theta), [qubit1, qubit2])

    def ryy(self, theta, qubit1, qubit2):
        """Apply a YY interaction."""
        self.append(sg.RYYGate(theta), [qubit1, qubit2])

    def ccx(self, control1, control2, target):
        """Apply a Toffoli gate."""
        self.append(sg.CCXGate(), [control1, control2, target])

    toffoli = ccx

    def cswap(self, control, target1, target2):
        """Apply a Fredkin gate."""
        self.append(sg.CSwapGate(), [control, target1, target2])

    fredkin = cswap

    def unitary(self, matrix, qubits, label=None):
        """Apply an arbitrary unitary matrix to ``qubits``."""
        gate = sg.UnitaryGate(matrix, label=label)
        self.append(gate, [qubits])

    def initialize(self, state, qubits=None):
        """Prepare an arbitrary state on ``qubits`` (must be in |0...0>).

        Uses Möttönen state preparation; the result matches ``state`` up to
        global phase.
        """
        from repro.synthesis.state_preparation import initialize as _init

        _init(self, state, qubits)

    # -- non-unitary operations -------------------------------------------------

    def measure(self, qubit, clbit):
        """Measure ``qubit`` into ``clbit`` (broadcasts over registers)."""
        self.append(Measure(), [qubit], [clbit])

    def measure_all(self, add_register=True):
        """Measure every qubit; adds a ``meas`` register unless told not to.

        When ``add_register`` is False the circuit must already contain at
        least ``num_qubits`` classical bits, which receive the results in
        order.
        """
        if add_register:
            meas = ClassicalRegister(self.num_qubits, "meas")
            self.add_register(meas)
            targets = list(meas)
        else:
            if self.num_clbits < self.num_qubits:
                raise CircuitError("not enough classical bits to measure into")
            targets = self._clbits[: self.num_qubits]
        self.barrier()
        for qubit, clbit in zip(self._qubits, targets):
            self.append(Measure(), [qubit], [clbit])

    def reset(self, qubit):
        """Reset ``qubit`` to |0> (broadcasts over registers)."""
        self.append(Reset(), [qubit])

    def barrier(self, *qargs):
        """Insert a barrier over the given qubits (all qubits if none)."""
        if not qargs:
            qubits = list(self._qubits)
        else:
            qubits = []
            for arg in qargs:
                qubits.extend(self._resolve_qargs(arg))
        if qubits:
            self.data.append(CircuitInstruction(Barrier(len(qubits)), qubits, []))

    # -- composition ------------------------------------------------------------

    def compose(self, other: "QuantumCircuit", qubits=None, clbits=None,
                front=False, inplace=False):
        """Append ``other``'s instructions onto this circuit.

        Args:
            other: the circuit to splice in.
            qubits: qubits of ``self`` that ``other``'s qubits map onto
                (defaults to the first ``other.num_qubits`` qubits).
            clbits: same for classical bits.
            front: if True, insert before the existing instructions.
            inplace: if True, modify ``self``; otherwise return a new circuit.

        Returns:
            The composed circuit (None when ``inplace``).
        """
        target = self if inplace else self.copy()
        if qubits is None:
            qubit_map_list = target._qubits[: other.num_qubits]
        else:
            qubit_map_list = target._resolve_qargs(qubits)
        if clbits is None:
            clbit_map_list = target._clbits[: other.num_clbits]
        else:
            clbit_map_list = target._resolve_cargs(clbits)
        if len(qubit_map_list) < other.num_qubits:
            raise CircuitError(
                f"cannot compose a {other.num_qubits}-qubit circuit onto "
                f"{len(qubit_map_list)} qubit(s)"
            )
        if len(clbit_map_list) < other.num_clbits:
            raise CircuitError(
                f"cannot compose a circuit with {other.num_clbits} clbits onto "
                f"{len(clbit_map_list)} clbit(s)"
            )
        qubit_map = dict(zip(other._qubits, qubit_map_list))
        clbit_map = dict(zip(other._clbits, clbit_map_list))
        spliced = [
            CircuitInstruction(
                item.operation.copy(),
                [qubit_map[q] for q in item.qubits],
                [clbit_map[c] for c in item.clbits],
            )
            for item in other.data
        ]
        if front:
            target.data = spliced + target.data
        else:
            target.data.extend(spliced)
        if not inplace:
            return target
        return None

    def __add__(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Concatenate two circuits, unioning their registers (paper Sec. IV)."""
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        combined = QuantumCircuit(name=f"{self.name}+{other.name}")
        for reg in self.qregs + other.qregs:
            if reg not in combined.qregs:
                combined.add_register(reg)
        for reg in self.cregs + other.cregs:
            if reg not in combined.cregs:
                combined.add_register(reg)
        for item in self.data + other.data:
            combined.data.append(
                CircuitInstruction(
                    item.operation.copy(), list(item.qubits), list(item.clbits)
                )
            )
        return combined

    def copy(self, name=None) -> "QuantumCircuit":
        """Return a copy sharing registers but with an independent data list."""
        fresh = QuantumCircuit(name=name or self.name)
        for reg in self.qregs:
            fresh.add_register(reg)
        for reg in self.cregs:
            fresh.add_register(reg)
        fresh.data = [
            CircuitInstruction(
                item.operation.copy(), list(item.qubits), list(item.clbits)
            )
            for item in self.data
        ]
        return fresh

    def copy_empty_like(self, name=None) -> "QuantumCircuit":
        """Return an empty circuit with the same registers."""
        fresh = QuantumCircuit(name=name or self.name)
        for reg in self.qregs:
            fresh.add_register(reg)
        for reg in self.cregs:
            fresh.add_register(reg)
        return fresh

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (reversed order, inverted gates)."""
        inverted = self.copy_empty_like(name=f"{self.name}_dg")
        for item in reversed(self.data):
            inverted.data.append(
                CircuitInstruction(
                    item.operation.inverse(), list(item.qubits), list(item.clbits)
                )
            )
        return inverted

    def repeat(self, reps: int) -> "QuantumCircuit":
        """Return this circuit repeated ``reps`` times."""
        if reps < 0:
            raise CircuitError("repetition count must be non-negative")
        repeated = self.copy_empty_like(name=f"{self.name}**{reps}")
        for _ in range(reps):
            repeated.compose(self, qubits=repeated._qubits,
                             clbits=repeated._clbits, inplace=True)
        return repeated

    def to_gate(self, label=None) -> Gate:
        """Convert a unitary-only circuit into a composite :class:`Gate`."""
        qubit_position = {qubit: i for i, qubit in enumerate(self._qubits)}
        definition = []
        for item in self.data:
            op = item.operation
            if op.name == "barrier":
                continue
            if not isinstance(op, Gate):
                raise CircuitError(
                    f"cannot convert to gate: '{op.name}' is not unitary"
                )
            positions = tuple(qubit_position[q] for q in item.qubits)
            definition.append((op.copy(), positions, ()))
        gate = Gate(self.name, self.num_qubits, label=label)
        gate._definition = definition
        return gate

    # -- parameters -------------------------------------------------------------

    @property
    def parameters(self) -> set:
        """The set of unbound parameters appearing in the circuit."""
        from repro.circuit.parameterbinding import get_bind_plan

        return set(get_bind_plan(self).parameters)

    def bind_parameters(self, binding) -> "QuantumCircuit":
        """Return a copy with parameters substituted.

        Args:
            binding: either a dict ``{Parameter: value}`` or a sequence of
                values matched to ``sorted(parameters, key=name)``.

        Repeated binds of the same template reuse a cached
        :class:`~repro.circuit.parameterbinding.BindPlan` (the
        parameter -> instruction-index map), so only the parameterized
        instructions are rebound instead of rescanning every instruction.
        """
        from repro.circuit.parameterbinding import get_bind_plan

        plan = get_bind_plan(self)
        if not isinstance(binding, dict):
            binding = plan.make_binding(binding)
        bound = self.copy_empty_like()
        parameterized = plan.parameterized_indices
        for index, item in enumerate(self.data):
            op = item.operation
            if index in parameterized:
                op = op.bind_parameters(binding)
            else:
                op = op.copy()
            bound.data.append(
                CircuitInstruction(op, list(item.qubits), list(item.clbits))
            )
        return bound

    assign_parameters = bind_parameters

    # -- analysis -----------------------------------------------------------------

    def size(self) -> int:
        """Number of operations, excluding barriers."""
        return sum(1 for item in self.data if item.operation.name != "barrier")

    def width(self) -> int:
        """Total number of qubits plus clbits."""
        return self.num_qubits + self.num_clbits

    def depth(self) -> int:
        """Circuit depth: length of the longest gate-dependency path."""
        level: dict = {}
        depth = 0
        for item in self.data:
            if item.operation.name == "barrier":
                # Barriers synchronize their wires but add no depth.
                wires = list(item.qubits)
                sync = max((level.get(w, 0) for w in wires), default=0)
                for w in wires:
                    level[w] = sync
                continue
            wires = list(item.qubits) + list(item.clbits)
            if item.operation.condition is not None:
                wires.extend(item.operation.condition[0])
            new_level = max((level.get(w, 0) for w in wires), default=0) + 1
            for w in wires:
                level[w] = new_level
            depth = max(depth, new_level)
        return depth

    def count_ops(self) -> dict:
        """Histogram of operation names, in insertion order of first use."""
        counts: dict = {}
        for item in self.data:
            name = item.operation.name
            counts[name] = counts.get(name, 0) + 1
        return counts

    def num_nonlocal_gates(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(
            1
            for item in self.data
            if isinstance(item.operation, Gate) and item.operation.num_qubits > 1
        )

    # -- interchange formats --------------------------------------------------------

    def qasm(self) -> str:
        """Serialize to OpenQASM 2.0 (Fig. 1a of the paper)."""
        from repro.qasm.exporter import circuit_to_qasm

        return circuit_to_qasm(self)

    @classmethod
    def from_qasm_str(cls, qasm: str) -> "QuantumCircuit":
        """Parse an OpenQASM 2.0 program into a circuit."""
        from repro.qasm.parser import parse_qasm

        return parse_qasm(qasm)

    @classmethod
    def from_qasm_file(cls, path: str) -> "QuantumCircuit":
        """Parse an OpenQASM 2.0 file into a circuit."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_qasm_str(handle.read())

    def draw(self, output: str = "text") -> str:
        """Render the circuit; only the ASCII drawer is provided."""
        from repro.visualization.text import circuit_to_text

        if output != "text":
            raise CircuitError(f"unsupported drawer '{output}'")
        return circuit_to_text(self)

    def __str__(self):
        return self.draw()

    def __repr__(self):
        return (
            f"<QuantumCircuit {self.name}: {self.num_qubits} qubits, "
            f"{self.num_clbits} clbits, {len(self.data)} instructions>"
        )

    def __len__(self):
        return len(self.data)

    def __eq__(self, other):
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.qregs == other.qregs
            and self.cregs == other.cregs
            and self.data == other.data
        )
