"""The standard gate library.

Covers the Clifford+T set the paper highlights (H, T, CNOT — a universal
library, Sec. II-A), the IBM QX elementary operations ``U(theta, phi, lambda)``
and CNOT (Sec. II-B), the OpenQASM 2.0 ``qelib1.inc`` gates, and the
two-qubit rotation gates used by the application layer (QAOA et al.).

All matrices use the little-endian convention described in
:mod:`repro.circuit.matrix_utils`; qargs[0] is the least-significant bit.
Definitions are expressed as ``(gate, positions, ())`` tuples so the
transpiler can unroll any gate down to the ``{u1, u2, u3, cx}`` basis.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuit.gate import Gate
from repro.circuit.parameter import is_parameterized
from repro.exceptions import CircuitError

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _f(value) -> float:
    """Coerce a bound parameter to float."""
    return float(value)


def controlled_matrix(base: np.ndarray) -> np.ndarray:
    """Add one control (as the least-significant qubit) to ``base``."""
    dim = base.shape[0]
    full = np.eye(2 * dim, dtype=complex)
    full[1::2, 1::2] = base
    return full


# ---------------------------------------------------------------------------
# One-qubit fixed gates
# ---------------------------------------------------------------------------


class IGate(Gate):
    """Identity gate."""

    def __init__(self):
        super().__init__("id", 1)

    def _matrix(self):
        return np.eye(2, dtype=complex)

    def _define(self):
        return [(U3Gate(0.0, 0.0, 0.0), (0,), ())]

    def inverse(self):
        return IGate()


class XGate(Gate):
    """Pauli-X (NOT) gate."""

    def __init__(self):
        super().__init__("x", 1)

    def _matrix(self):
        return np.array([[0, 1], [1, 0]], dtype=complex)

    def _define(self):
        return [(U3Gate(math.pi, 0.0, math.pi), (0,), ())]

    def inverse(self):
        return XGate()

    def control(self, num_ctrl_qubits=1):
        if num_ctrl_qubits == 1:
            return CXGate()
        if num_ctrl_qubits == 2:
            return CCXGate()
        return super().control(num_ctrl_qubits)


class YGate(Gate):
    """Pauli-Y gate."""

    def __init__(self):
        super().__init__("y", 1)

    def _matrix(self):
        return np.array([[0, -1j], [1j, 0]], dtype=complex)

    def _define(self):
        return [(U3Gate(math.pi, math.pi / 2, math.pi / 2), (0,), ())]

    def inverse(self):
        return YGate()

    def control(self, num_ctrl_qubits=1):
        if num_ctrl_qubits == 1:
            return CYGate()
        return super().control(num_ctrl_qubits)


class ZGate(Gate):
    """Pauli-Z gate."""

    def __init__(self):
        super().__init__("z", 1)

    def _matrix(self):
        return np.array([[1, 0], [0, -1]], dtype=complex)

    def _define(self):
        return [(U1Gate(math.pi), (0,), ())]

    def inverse(self):
        return ZGate()

    def control(self, num_ctrl_qubits=1):
        if num_ctrl_qubits == 1:
            return CZGate()
        return super().control(num_ctrl_qubits)


class HGate(Gate):
    """Hadamard gate."""

    def __init__(self):
        super().__init__("h", 1)

    def _matrix(self):
        return _SQRT2_INV * np.array([[1, 1], [1, -1]], dtype=complex)

    def _define(self):
        return [(U2Gate(0.0, math.pi), (0,), ())]

    def inverse(self):
        return HGate()

    def control(self, num_ctrl_qubits=1):
        if num_ctrl_qubits == 1:
            return CHGate()
        return super().control(num_ctrl_qubits)


class SGate(Gate):
    """Phase gate S = sqrt(Z)."""

    def __init__(self):
        super().__init__("s", 1)

    def _matrix(self):
        return np.array([[1, 0], [0, 1j]], dtype=complex)

    def _define(self):
        return [(U1Gate(math.pi / 2), (0,), ())]

    def inverse(self):
        return SdgGate()


class SdgGate(Gate):
    """Adjoint of the S gate."""

    def __init__(self):
        super().__init__("sdg", 1)

    def _matrix(self):
        return np.array([[1, 0], [0, -1j]], dtype=complex)

    def _define(self):
        return [(U1Gate(-math.pi / 2), (0,), ())]

    def inverse(self):
        return SGate()


class TGate(Gate):
    """T gate — phase shift by pi/4 (the 'T' of Clifford+T)."""

    def __init__(self):
        super().__init__("t", 1)

    def _matrix(self):
        return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)

    def _define(self):
        return [(U1Gate(math.pi / 4), (0,), ())]

    def inverse(self):
        return TdgGate()


class TdgGate(Gate):
    """Adjoint of the T gate."""

    def __init__(self):
        super().__init__("tdg", 1)

    def _matrix(self):
        return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)

    def _define(self):
        return [(U1Gate(-math.pi / 4), (0,), ())]

    def inverse(self):
        return TGate()


class SXGate(Gate):
    """Square root of X."""

    def __init__(self):
        super().__init__("sx", 1)

    def _matrix(self):
        return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

    def _define(self):
        return [
            (SdgGate(), (0,), ()),
            (HGate(), (0,), ()),
            (SdgGate(), (0,), ()),
        ]

    def inverse(self):
        return SXdgGate()


class SXdgGate(Gate):
    """Adjoint of sqrt(X)."""

    def __init__(self):
        super().__init__("sxdg", 1)

    def _matrix(self):
        return 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)

    def _define(self):
        return [
            (SGate(), (0,), ()),
            (HGate(), (0,), ()),
            (SGate(), (0,), ()),
        ]

    def inverse(self):
        return SXGate()


# ---------------------------------------------------------------------------
# One-qubit parameterized gates — the IBM QX elementary operations
# ---------------------------------------------------------------------------


class U3Gate(Gate):
    """The generic IBM QX single-qubit gate U(theta, phi, lambda).

    Euler decomposition Rz(phi) Ry(theta) Rz(lambda) up to global phase
    (Sec. II-B of the paper).
    """

    def __init__(self, theta, phi, lam):
        super().__init__("u3", 1, [theta, phi, lam])

    def _matrix(self):
        theta, phi, lam = (_f(p) for p in self.params)
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array(
            [
                [cos, -cmath.exp(1j * lam) * sin],
                [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
            ],
            dtype=complex,
        )

    def inverse(self):
        theta, phi, lam = self.params
        return U3Gate(-theta, -lam, -phi)


class UGate(U3Gate):
    """Alias of :class:`U3Gate` under the modern name ``u``."""

    def __init__(self, theta, phi, lam):
        super().__init__(theta, phi, lam)
        self._name = "u"

    def inverse(self):
        theta, phi, lam = self.params
        return UGate(-theta, -lam, -phi)


class U2Gate(Gate):
    """Single-qubit gate u2(phi, lambda) = u3(pi/2, phi, lambda)."""

    def __init__(self, phi, lam):
        super().__init__("u2", 1, [phi, lam])

    def _matrix(self):
        phi, lam = (_f(p) for p in self.params)
        return _SQRT2_INV * np.array(
            [
                [1, -cmath.exp(1j * lam)],
                [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
            ],
            dtype=complex,
        )

    def _define(self):
        phi, lam = self.params
        return [(U3Gate(math.pi / 2, phi, lam), (0,), ())]

    def inverse(self):
        phi, lam = self.params
        return U2Gate(-lam - math.pi, -phi + math.pi)


class U1Gate(Gate):
    """Diagonal phase gate u1(lambda) = diag(1, e^{i lambda})."""

    def __init__(self, lam):
        super().__init__("u1", 1, [lam])

    def _matrix(self):
        lam = _f(self.params[0])
        return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)

    def _define(self):
        lam = self.params[0]
        return [(U3Gate(0.0, 0.0, lam), (0,), ())]

    def inverse(self):
        return U1Gate(-self.params[0])


class PhaseGate(U1Gate):
    """Alias of :class:`U1Gate` under the modern name ``p``."""

    def __init__(self, lam):
        super().__init__(lam)
        self._name = "p"

    def inverse(self):
        return PhaseGate(-self.params[0])


class RXGate(Gate):
    """Rotation around the X axis by ``theta``."""

    def __init__(self, theta):
        super().__init__("rx", 1, [theta])

    def _matrix(self):
        theta = _f(self.params[0])
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)

    def _define(self):
        theta = self.params[0]
        return [(U3Gate(theta, -math.pi / 2, math.pi / 2), (0,), ())]

    def inverse(self):
        return RXGate(-self.params[0])

    def control(self, num_ctrl_qubits=1):
        if num_ctrl_qubits == 1:
            return CRXGate(self.params[0])
        return super().control(num_ctrl_qubits)


class RYGate(Gate):
    """Rotation around the Y axis by ``theta``."""

    def __init__(self, theta):
        super().__init__("ry", 1, [theta])

    def _matrix(self):
        theta = _f(self.params[0])
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array([[cos, -sin], [sin, cos]], dtype=complex)

    def _define(self):
        theta = self.params[0]
        return [(U3Gate(theta, 0.0, 0.0), (0,), ())]

    def inverse(self):
        return RYGate(-self.params[0])

    def control(self, num_ctrl_qubits=1):
        if num_ctrl_qubits == 1:
            return CRYGate(self.params[0])
        return super().control(num_ctrl_qubits)


class RZGate(Gate):
    """Rotation around the Z axis by ``phi`` (traceless convention)."""

    def __init__(self, phi):
        super().__init__("rz", 1, [phi])

    def _matrix(self):
        phi = _f(self.params[0])
        return np.array(
            [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]],
            dtype=complex,
        )

    def _define(self):
        # Equal to u1(phi) up to the global phase e^{-i phi/2}, which
        # OpenQASM 2.0 semantics ignore.
        phi = self.params[0]
        return [(U1Gate(phi), (0,), ())]

    def inverse(self):
        return RZGate(-self.params[0])

    def control(self, num_ctrl_qubits=1):
        if num_ctrl_qubits == 1:
            return CRZGate(self.params[0])
        return super().control(num_ctrl_qubits)


# ---------------------------------------------------------------------------
# Two-qubit gates
# ---------------------------------------------------------------------------


class CXGate(Gate):
    """Controlled-NOT; qargs are ``(control, target)``."""

    def __init__(self):
        super().__init__("cx", 2)

    def _matrix(self):
        return np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]],
            dtype=complex,
        )

    def inverse(self):
        return CXGate()


class CYGate(Gate):
    """Controlled-Y; qargs are ``(control, target)``."""

    def __init__(self):
        super().__init__("cy", 2)

    def _matrix(self):
        return controlled_matrix(YGate()._matrix())

    def _define(self):
        return [
            (SdgGate(), (1,), ()),
            (CXGate(), (0, 1), ()),
            (SGate(), (1,), ()),
        ]

    def inverse(self):
        return CYGate()


class CZGate(Gate):
    """Controlled-Z; symmetric in its two qubits."""

    def __init__(self):
        super().__init__("cz", 2)

    def _matrix(self):
        return np.diag([1, 1, 1, -1]).astype(complex)

    def _define(self):
        return [
            (HGate(), (1,), ()),
            (CXGate(), (0, 1), ()),
            (HGate(), (1,), ()),
        ]

    def inverse(self):
        return CZGate()


class CHGate(Gate):
    """Controlled-Hadamard; qargs are ``(control, target)``."""

    def __init__(self):
        super().__init__("ch", 2)

    def _matrix(self):
        return controlled_matrix(HGate()._matrix())

    def _define(self):
        # qelib1.inc decomposition.
        return [
            (HGate(), (1,), ()),
            (SdgGate(), (1,), ()),
            (CXGate(), (0, 1), ()),
            (HGate(), (1,), ()),
            (TGate(), (1,), ()),
            (CXGate(), (0, 1), ()),
            (TGate(), (1,), ()),
            (HGate(), (1,), ()),
            (SGate(), (1,), ()),
            (XGate(), (1,), ()),
            (SGate(), (0,), ()),
        ]

    def inverse(self):
        return CHGate()


class SwapGate(Gate):
    """SWAP gate — three alternating CNOTs, as the paper notes (Sec. V-B)."""

    def __init__(self):
        super().__init__("swap", 2)

    def _matrix(self):
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )

    def _define(self):
        return [
            (CXGate(), (0, 1), ()),
            (CXGate(), (1, 0), ()),
            (CXGate(), (0, 1), ()),
        ]

    def inverse(self):
        return SwapGate()


class CRXGate(Gate):
    """Controlled X rotation; qargs are ``(control, target)``."""

    def __init__(self, theta):
        super().__init__("crx", 2, [theta])

    def _matrix(self):
        return controlled_matrix(RXGate(self.params[0])._matrix())

    def _define(self):
        theta = self.params[0]
        return [
            (U1Gate(math.pi / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
            (U3Gate(-theta / 2, 0.0, 0.0), (1,), ()),
            (CXGate(), (0, 1), ()),
            (U3Gate(theta / 2, -math.pi / 2, 0.0), (1,), ()),
        ]

    def inverse(self):
        return CRXGate(-self.params[0])


class CRYGate(Gate):
    """Controlled Y rotation; qargs are ``(control, target)``."""

    def __init__(self, theta):
        super().__init__("cry", 2, [theta])

    def _matrix(self):
        return controlled_matrix(RYGate(self.params[0])._matrix())

    def _define(self):
        theta = self.params[0]
        return [
            (RYGate(theta / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
            (RYGate(-theta / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
        ]

    def inverse(self):
        return CRYGate(-self.params[0])


class CRZGate(Gate):
    """Controlled Z rotation; qargs are ``(control, target)``."""

    def __init__(self, theta):
        super().__init__("crz", 2, [theta])

    def _matrix(self):
        return controlled_matrix(RZGate(self.params[0])._matrix())

    def _define(self):
        theta = self.params[0]
        return [
            (U1Gate(theta / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
            (U1Gate(-theta / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
        ]

    def inverse(self):
        return CRZGate(-self.params[0])


class CU1Gate(Gate):
    """Controlled phase gate diag(1, 1, 1, e^{i lambda}); symmetric."""

    def __init__(self, lam):
        super().__init__("cu1", 2, [lam])

    def _matrix(self):
        lam = _f(self.params[0])
        return np.diag([1, 1, 1, cmath.exp(1j * lam)]).astype(complex)

    def _define(self):
        lam = self.params[0]
        return [
            (U1Gate(lam / 2), (0,), ()),
            (CXGate(), (0, 1), ()),
            (U1Gate(-lam / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
            (U1Gate(lam / 2), (1,), ()),
        ]

    def inverse(self):
        return CU1Gate(-self.params[0])


class CU3Gate(Gate):
    """Controlled u3 gate; qargs are ``(control, target)``."""

    def __init__(self, theta, phi, lam):
        super().__init__("cu3", 2, [theta, phi, lam])

    def _matrix(self):
        theta, phi, lam = self.params
        return controlled_matrix(U3Gate(theta, phi, lam)._matrix())

    def _define(self):
        theta, phi, lam = self.params
        return [
            (U1Gate((lam + phi) / 2), (0,), ()),
            (U1Gate((lam - phi) / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
            (U3Gate(-theta / 2, 0.0, -(phi + lam) / 2), (1,), ()),
            (CXGate(), (0, 1), ()),
            (U3Gate(theta / 2, phi, 0.0), (1,), ()),
        ]

    def inverse(self):
        theta, phi, lam = self.params
        return CU3Gate(-theta, -lam, -phi)


class RZZGate(Gate):
    """Two-qubit ZZ interaction exp(-i theta/2 Z⊗Z)."""

    def __init__(self, theta):
        super().__init__("rzz", 2, [theta])

    def _matrix(self):
        theta = _f(self.params[0])
        plus = cmath.exp(1j * theta / 2)
        minus = cmath.exp(-1j * theta / 2)
        return np.diag([minus, plus, plus, minus]).astype(complex)

    def _define(self):
        theta = self.params[0]
        return [
            (CXGate(), (0, 1), ()),
            (RZGate(theta), (1,), ()),
            (CXGate(), (0, 1), ()),
        ]

    def inverse(self):
        return RZZGate(-self.params[0])


class RXXGate(Gate):
    """Two-qubit XX interaction exp(-i theta/2 X⊗X)."""

    def __init__(self, theta):
        super().__init__("rxx", 2, [theta])

    def _define(self):
        theta = self.params[0]
        return [
            (HGate(), (0,), ()),
            (HGate(), (1,), ()),
            (RZZGate(theta), (0, 1), ()),
            (HGate(), (0,), ()),
            (HGate(), (1,), ()),
        ]

    def inverse(self):
        return RXXGate(-self.params[0])


class RYYGate(Gate):
    """Two-qubit YY interaction exp(-i theta/2 Y⊗Y)."""

    def __init__(self, theta):
        super().__init__("ryy", 2, [theta])

    def _define(self):
        theta = self.params[0]
        return [
            (RXGate(math.pi / 2), (0,), ()),
            (RXGate(math.pi / 2), (1,), ()),
            (RZZGate(theta), (0, 1), ()),
            (RXGate(-math.pi / 2), (0,), ()),
            (RXGate(-math.pi / 2), (1,), ()),
        ]

    def inverse(self):
        return RYYGate(-self.params[0])


# ---------------------------------------------------------------------------
# Three-qubit gates
# ---------------------------------------------------------------------------


class CCXGate(Gate):
    """Toffoli gate; qargs are ``(control, control, target)``."""

    def __init__(self):
        super().__init__("ccx", 3)

    def _matrix(self):
        return controlled_matrix(controlled_matrix(XGate()._matrix()))

    def _define(self):
        # qelib1.inc Clifford+T decomposition (6 CNOTs, 7 T gates).
        a, b, c = 0, 1, 2
        return [
            (HGate(), (c,), ()),
            (CXGate(), (b, c), ()),
            (TdgGate(), (c,), ()),
            (CXGate(), (a, c), ()),
            (TGate(), (c,), ()),
            (CXGate(), (b, c), ()),
            (TdgGate(), (c,), ()),
            (CXGate(), (a, c), ()),
            (TGate(), (b,), ()),
            (TGate(), (c,), ()),
            (HGate(), (c,), ()),
            (CXGate(), (a, b), ()),
            (TGate(), (a,), ()),
            (TdgGate(), (b,), ()),
            (CXGate(), (a, b), ()),
        ]

    def inverse(self):
        return CCXGate()


class CSwapGate(Gate):
    """Fredkin gate; qargs are ``(control, target, target)``."""

    def __init__(self):
        super().__init__("cswap", 3)

    def _matrix(self):
        return controlled_matrix(SwapGate()._matrix())

    def _define(self):
        a, b, c = 0, 1, 2
        return [
            (CXGate(), (c, b), ()),
            (CCXGate(), (a, b, c), ()),
            (CXGate(), (c, b), ()),
        ]

    def inverse(self):
        return CSwapGate()


# ---------------------------------------------------------------------------
# Arbitrary unitaries
# ---------------------------------------------------------------------------


class UnitaryGate(Gate):
    """An arbitrary unitary supplied as a dense matrix."""

    def __init__(self, matrix, label=None):
        from repro.circuit.matrix_utils import is_unitary

        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise CircuitError("unitary matrix must be square")
        dim = matrix.shape[0]
        num_qubits = int(round(math.log2(dim)))
        if 2**num_qubits != dim:
            raise CircuitError(f"matrix dimension {dim} is not a power of two")
        if not is_unitary(matrix, atol=1e-8):
            raise CircuitError("matrix is not unitary")
        super().__init__("unitary", num_qubits, label=label)
        self._unitary = matrix

    def _matrix(self):
        return self._unitary

    def inverse(self):
        return UnitaryGate(self._unitary.conj().T, label=self.label)

    def __eq__(self, other):
        if not isinstance(other, UnitaryGate):
            return NotImplemented
        return self._unitary.shape == other._unitary.shape and np.allclose(
            self._unitary, other._unitary
        )


class DiagonalGate(Gate):
    """A k-qubit gate diagonal in the computational basis.

    Stored as the diagonal vector itself (``2**k`` unit-modulus entries),
    so simulators can apply it as one vectorized multiply without ever
    materializing the ``2**k x 2**k`` dense matrix.  This is the output of
    the transpiler's ``FuseDiagonalGates`` pass, which collapses runs of
    cu1/cp/rz/t/s/z-style gates (QFT circuits are mostly such runs) into a
    single fused diagonal.
    """

    def __init__(self, diagonal, label=None):
        diagonal = np.asarray(diagonal, dtype=complex).reshape(-1)
        dim = diagonal.size
        num_qubits = int(round(math.log2(dim)))
        if 2**num_qubits != dim:
            raise CircuitError(
                f"diagonal length {dim} is not a power of two"
            )
        if not np.allclose(np.abs(diagonal), 1.0, atol=1e-8):
            raise CircuitError("diagonal entries must have unit modulus")
        super().__init__("diagonal", num_qubits, label=label)
        self._diag = diagonal

    @property
    def diagonal(self) -> np.ndarray:
        """The diagonal vector (little-endian index convention)."""
        return self._diag

    def _matrix(self):
        return np.diag(self._diag)

    def inverse(self):
        return DiagonalGate(self._diag.conj(), label=self.label)

    def __eq__(self, other):
        if not isinstance(other, DiagonalGate):
            return NotImplemented
        return self._diag.size == other._diag.size and np.allclose(
            self._diag, other._diag
        )


class ControlledUnitaryGate(Gate):
    """A generic single-control wrapper around any base gate."""

    def __init__(self, base: Gate):
        if base.is_parameterized():
            raise CircuitError("cannot control a gate with unbound parameters")
        super().__init__(f"c{base.name}", base.num_qubits + 1, list(base.params))
        self._base = base

    @property
    def base_gate(self) -> Gate:
        """The uncontrolled gate."""
        return self._base

    def _params_key(self):
        # Delegate to the (possibly mutated) base gate so the instance
        # matrix cache invalidates when the base's parameters change.
        return self._base._params_key()

    def _matrix(self):
        return controlled_matrix(self._base.to_matrix())

    def inverse(self):
        return ControlledUnitaryGate(self._base.inverse())


# ---------------------------------------------------------------------------
# Registry — OpenQASM gate name -> constructor
# ---------------------------------------------------------------------------

STANDARD_GATES = {
    "id": (IGate, 0, 1),
    "u0": (lambda: IGate(), 0, 1),
    "x": (XGate, 0, 1),
    "y": (YGate, 0, 1),
    "z": (ZGate, 0, 1),
    "h": (HGate, 0, 1),
    "s": (SGate, 0, 1),
    "sdg": (SdgGate, 0, 1),
    "t": (TGate, 0, 1),
    "tdg": (TdgGate, 0, 1),
    "sx": (SXGate, 0, 1),
    "sxdg": (SXdgGate, 0, 1),
    "u1": (U1Gate, 1, 1),
    "p": (PhaseGate, 1, 1),
    "u2": (U2Gate, 2, 1),
    "u3": (U3Gate, 3, 1),
    "u": (UGate, 3, 1),
    "rx": (RXGate, 1, 1),
    "ry": (RYGate, 1, 1),
    "rz": (RZGate, 1, 1),
    "cx": (CXGate, 0, 2),
    "CX": (CXGate, 0, 2),
    "cy": (CYGate, 0, 2),
    "cz": (CZGate, 0, 2),
    "ch": (CHGate, 0, 2),
    "swap": (SwapGate, 0, 2),
    "crx": (CRXGate, 1, 2),
    "cry": (CRYGate, 1, 2),
    "crz": (CRZGate, 1, 2),
    "cu1": (CU1Gate, 1, 2),
    "cp": (CU1Gate, 1, 2),
    "cu3": (CU3Gate, 3, 2),
    "rzz": (RZZGate, 1, 2),
    "rxx": (RXXGate, 1, 2),
    "ryy": (RYYGate, 1, 2),
    "ccx": (CCXGate, 0, 3),
    "cswap": (CSwapGate, 0, 3),
}


# Standard-library gate matrices are pure functions of (class, params):
# opt them into the shared matrix LRU.  ``UnitaryGate`` and
# ``ControlledUnitaryGate`` carry per-instance state and stay excluded.
for _ctor, _num_params, _num_qubits in STANDARD_GATES.values():
    if isinstance(_ctor, type) and issubclass(_ctor, Gate):
        _ctor._matrix_cacheable = True
del _ctor, _num_params, _num_qubits


def get_standard_gate(name: str, params=()) -> Gate:
    """Instantiate a standard gate by OpenQASM name.

    Args:
        name: gate mnemonic, e.g. ``"cx"`` or ``"u3"``.
        params: sequence of parameters; its length must match the gate.

    Raises:
        CircuitError: for unknown names or wrong parameter counts.
    """
    if name not in STANDARD_GATES:
        raise CircuitError(f"unknown standard gate '{name}'")
    ctor, num_params, _num_qubits = STANDARD_GATES[name]
    params = list(params)
    if len(params) != num_params:
        raise CircuitError(
            f"gate '{name}' takes {num_params} parameter(s), got {len(params)}"
        )
    return ctor(*params)


def standard_gate_num_qubits(name: str) -> int:
    """Number of qubits the named standard gate acts on."""
    if name not in STANDARD_GATES:
        raise CircuitError(f"unknown standard gate '{name}'")
    return STANDARD_GATES[name][2]
