"""Symbolic circuit parameters.

:class:`Parameter` is a named free symbol; arithmetic on parameters builds
:class:`ParameterExpression` trees that can later be bound to numeric values.
This is the minimal machinery needed for variational algorithms (VQE, QAOA)
where one template circuit is evaluated at many parameter points.
"""

from __future__ import annotations

import math
import uuid

from repro.exceptions import CircuitError


class ParameterExpression:
    """An expression over :class:`Parameter` symbols and constants.

    Internally the expression is a closure ``fn(binding) -> float`` plus the
    set of free parameters, which keeps the implementation small while
    supporting +, -, *, /, negation, and ``sin``/``cos``/``exp`` composition.
    """

    __slots__ = ("_parameters", "_fn", "_repr")

    def __init__(self, parameters, fn, repr_str):
        self._parameters = frozenset(parameters)
        self._fn = fn
        self._repr = repr_str

    @property
    def parameters(self) -> frozenset:
        """The free parameters appearing in this expression."""
        return self._parameters

    def bind(self, binding: dict) -> float | "ParameterExpression":
        """Substitute values for parameters.

        Args:
            binding: mapping from :class:`Parameter` to numeric value.  May
                bind a superset or subset of this expression's parameters.

        Returns:
            A float if every free parameter is bound, otherwise a new
            expression over the remaining free parameters.
        """
        missing = self._parameters - set(binding)
        if not missing:
            return float(self._fn(binding))
        captured = dict(binding)
        remaining = missing

        def fn(more):
            merged = dict(captured)
            merged.update(more)
            return self._fn(merged)

        return ParameterExpression(remaining, fn, f"bind({self._repr})")

    # -- arithmetic ---------------------------------------------------------

    @staticmethod
    def _coerce(value):
        if isinstance(value, ParameterExpression):
            return value
        if isinstance(value, (int, float)):
            const = float(value)
            return ParameterExpression((), lambda _b, c=const: c, repr(value))
        return None

    def _binary(self, other, op, sym, reflected=False):
        other = self._coerce(other)
        if other is None:
            return NotImplemented
        left, right = (other, self) if reflected else (self, other)
        return ParameterExpression(
            left._parameters | right._parameters,
            lambda b: op(left._fn(b), right._fn(b)),
            f"({left._repr} {sym} {right._repr})",
        )

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b, "+")

    def __radd__(self, other):
        return self._binary(other, lambda a, b: a + b, "+", reflected=True)

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b, "-")

    def __rsub__(self, other):
        return self._binary(other, lambda a, b: a - b, "-", reflected=True)

    def __mul__(self, other):
        return self._binary(other, lambda a, b: a * b, "*")

    def __rmul__(self, other):
        return self._binary(other, lambda a, b: a * b, "*", reflected=True)

    def __truediv__(self, other):
        return self._binary(other, lambda a, b: a / b, "/")

    def __rtruediv__(self, other):
        return self._binary(other, lambda a, b: a / b, "/", reflected=True)

    def __neg__(self):
        return ParameterExpression(
            self._parameters, lambda b: -self._fn(b), f"(-{self._repr})"
        )

    def sin(self):
        """Return ``sin`` of this expression."""
        return ParameterExpression(
            self._parameters, lambda b: math.sin(self._fn(b)), f"sin({self._repr})"
        )

    def cos(self):
        """Return ``cos`` of this expression."""
        return ParameterExpression(
            self._parameters, lambda b: math.cos(self._fn(b)), f"cos({self._repr})"
        )

    def __float__(self):
        if self._parameters:
            names = sorted(p.name for p in self._parameters)
            raise CircuitError(
                f"expression has unbound parameters {names}; bind them first"
            )
        return float(self._fn({}))

    def __repr__(self):
        return self._repr

    def __str__(self):
        return self._repr


class Parameter(ParameterExpression):
    """A named free symbol usable as a gate angle."""

    __slots__ = ("_name", "_uuid")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise CircuitError("parameter name must be a non-empty string")
        self._name = name
        self._uuid = uuid.uuid4()
        super().__init__((self,), lambda b: b[self], name)

    @property
    def name(self) -> str:
        """The symbol's name."""
        return self._name

    def __eq__(self, other):
        if not isinstance(other, Parameter):
            return NotImplemented
        return self._uuid == other._uuid

    def __hash__(self):
        return hash(self._uuid)

    def __repr__(self):
        return f"Parameter({self._name})"

    def __str__(self):
        return self._name


def parameter_value(value) -> float:
    """Coerce a gate parameter to float, raising on unbound symbols."""
    if isinstance(value, ParameterExpression):
        return float(value)
    return float(value)


def is_parameterized(value) -> bool:
    """Return True when ``value`` contains unbound parameters."""
    return isinstance(value, ParameterExpression) and bool(value.parameters)
