"""Symbolic circuit parameters.

:class:`Parameter` is a named free symbol; arithmetic on parameters builds
:class:`ParameterExpression` trees that can later be bound to numeric values.
This is the minimal machinery needed for variational algorithms (VQE, QAOA)
where one template circuit is evaluated at many parameter points.

Expressions are stored as explicit operation trees (nested tuples) rather
than closures: trees pickle across process-pool workers, and
:meth:`ParameterExpression.evaluate` can substitute whole numpy arrays for
the symbols, evaluating one expression at a full batch of parameter points
in a handful of vectorized ops.  ``np.sin``/``np.cos`` on float64 agree
bitwise with ``math.sin``/``math.cos`` per element, so the batched and
scalar paths produce identical angles.
"""

from __future__ import annotations

import math
import uuid

import numpy as np

from repro.exceptions import CircuitError

#: Tree node tags: ("p", Parameter), ("c", float), unary ("neg"/"sin"/"cos",
#: child), binary ("+"/"-"/"*"/"/", left, right).
_BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def _eval_tree(tree, binding):
    """Evaluate a tree against ``{Parameter: value}``.

    Values may be scalars or numpy arrays; mixed trees broadcast naturally.
    Scalar trig goes through :mod:`math` (the historical scalar behaviour),
    arrays through numpy — the two agree bitwise on float64.
    """
    tag = tree[0]
    if tag == "p":
        return binding[tree[1]]
    if tag == "c":
        return tree[1]
    if tag == "neg":
        return -_eval_tree(tree[1], binding)
    if tag in ("sin", "cos"):
        value = _eval_tree(tree[1], binding)
        if isinstance(value, np.ndarray):
            return np.sin(value) if tag == "sin" else np.cos(value)
        return math.sin(value) if tag == "sin" else math.cos(value)
    return _BINARY_OPS[tag](
        _eval_tree(tree[1], binding), _eval_tree(tree[2], binding)
    )


def _substitute(tree, binding):
    """Fold bound parameters into constants, leaving the rest symbolic."""
    tag = tree[0]
    if tag == "p":
        if tree[1] in binding:
            return ("c", float(binding[tree[1]]))
        return tree
    if tag == "c":
        return tree
    if tag in ("neg", "sin", "cos"):
        return (tag, _substitute(tree[1], binding))
    return (tag, _substitute(tree[1], binding), _substitute(tree[2], binding))


class ParameterExpression:
    """An expression over :class:`Parameter` symbols and constants.

    Internally the expression is an operation tree plus the set of free
    parameters, supporting +, -, *, /, negation, and ``sin``/``cos``
    composition.  Trees are plain tuples, so expressions pickle (process
    executors ship them inside assembled experiments) and evaluate over
    numpy arrays as well as scalars.
    """

    __slots__ = ("_parameters", "_tree", "_repr")

    def __init__(self, parameters, tree, repr_str):
        self._parameters = frozenset(parameters)
        self._tree = tree
        self._repr = repr_str

    @property
    def parameters(self) -> frozenset:
        """The free parameters appearing in this expression."""
        return self._parameters

    def bind(self, binding: dict) -> float | "ParameterExpression":
        """Substitute values for parameters.

        Args:
            binding: mapping from :class:`Parameter` to numeric value.  May
                bind a superset or subset of this expression's parameters.

        Returns:
            A float if every free parameter is bound, otherwise a new
            expression over the remaining free parameters.
        """
        missing = self._parameters - set(binding)
        if not missing:
            return float(_eval_tree(self._tree, binding))
        return ParameterExpression(
            missing, _substitute(self._tree, binding), f"bind({self._repr})"
        )

    def evaluate(self, binding: dict):
        """Evaluate with scalar *or numpy-array* values per parameter.

        Unlike :meth:`bind` this does not coerce to float, so feeding
        ``{theta: values[:, i]}`` yields the whole batch of angles in one
        vectorized pass.  Every free parameter must be bound.
        """
        missing = self._parameters - set(binding)
        if missing:
            names = sorted(p.name for p in missing)
            raise CircuitError(f"expression has unbound parameters {names}")
        return _eval_tree(self._tree, binding)

    # -- pickling (slots, no dict) ------------------------------------------

    def __getstate__(self):
        return (self._parameters, self._tree, self._repr)

    def __setstate__(self, state):
        self._parameters, self._tree, self._repr = state

    # -- arithmetic ---------------------------------------------------------

    @staticmethod
    def _coerce(value):
        if isinstance(value, ParameterExpression):
            return value
        if isinstance(value, (int, float)):
            return ParameterExpression((), ("c", float(value)), repr(value))
        return None

    def _binary(self, other, sym, reflected=False):
        other = self._coerce(other)
        if other is None:
            return NotImplemented
        left, right = (other, self) if reflected else (self, other)
        return ParameterExpression(
            left._parameters | right._parameters,
            (sym, left._tree, right._tree),
            f"({left._repr} {sym} {right._repr})",
        )

    def __add__(self, other):
        return self._binary(other, "+")

    def __radd__(self, other):
        return self._binary(other, "+", reflected=True)

    def __sub__(self, other):
        return self._binary(other, "-")

    def __rsub__(self, other):
        return self._binary(other, "-", reflected=True)

    def __mul__(self, other):
        return self._binary(other, "*")

    def __rmul__(self, other):
        return self._binary(other, "*", reflected=True)

    def __truediv__(self, other):
        return self._binary(other, "/")

    def __rtruediv__(self, other):
        return self._binary(other, "/", reflected=True)

    def __neg__(self):
        return ParameterExpression(
            self._parameters, ("neg", self._tree), f"(-{self._repr})"
        )

    def sin(self):
        """Return ``sin`` of this expression."""
        return ParameterExpression(
            self._parameters, ("sin", self._tree), f"sin({self._repr})"
        )

    def cos(self):
        """Return ``cos`` of this expression."""
        return ParameterExpression(
            self._parameters, ("cos", self._tree), f"cos({self._repr})"
        )

    def __float__(self):
        if self._parameters:
            names = sorted(p.name for p in self._parameters)
            raise CircuitError(
                f"expression has unbound parameters {names}; bind them first"
            )
        return float(_eval_tree(self._tree, {}))

    def __repr__(self):
        return self._repr

    def __str__(self):
        return self._repr


class Parameter(ParameterExpression):
    """A named free symbol usable as a gate angle."""

    __slots__ = ("_name", "_uuid")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise CircuitError("parameter name must be a non-empty string")
        self._name = name
        self._uuid = uuid.uuid4()
        super().__init__((self,), ("p", self), name)

    @property
    def name(self) -> str:
        """The symbol's name."""
        return self._name

    def __getstate__(self):
        # The tree holds a self-reference; rebuild it on load instead of
        # letting pickle chase the cycle through the tuple.
        return (self._name, self._uuid)

    def __setstate__(self, state):
        self._name, self._uuid = state
        self._parameters = frozenset((self,))
        self._tree = ("p", self)
        self._repr = self._name

    def __eq__(self, other):
        if not isinstance(other, Parameter):
            return NotImplemented
        return self._uuid == other._uuid

    def __hash__(self):
        return hash(self._uuid)

    def __repr__(self):
        return f"Parameter({self._name})"

    def __str__(self):
        return self._name


def parameter_value(value) -> float:
    """Coerce a gate parameter to float, raising on unbound symbols."""
    if isinstance(value, ParameterExpression):
        return float(value)
    return float(value)


def is_parameterized(value) -> bool:
    """Return True when ``value`` contains unbound parameters."""
    return isinstance(value, ParameterExpression) and bool(value.parameters)
