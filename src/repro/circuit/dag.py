"""Directed-acyclic-graph IR for circuits.

The transpiler's analysis and routing passes (Sec. V-B) work on wire
dependencies rather than the flat instruction list: two gates on disjoint
qubits commute trivially, and a router consumes the *front layer* of gates
whose predecessors have all been executed.

Since PR 4 the DAG is the transpiler's working representation, not just a
view: every pass receives a :class:`DAGCircuit` and the flat
:class:`~repro.circuit.quantumcircuit.QuantumCircuit` exists only at the
pipeline boundary (:func:`circuit_to_dag` / :func:`dag_to_circuit`).  The
graph is stored as one doubly-linked list per wire (qubit, clbit, or
condition bit), which makes node surgery — removal, one-for-many
substitution — a local splice instead of a global rebuild.
"""

from __future__ import annotations

import itertools

from repro.circuit.circuitinstruction import CircuitInstruction
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import CircuitError


class DAGOpNode:
    """One operation node in the DAG."""

    __slots__ = ("node_id", "operation", "qubits", "clbits")

    def __init__(self, node_id, operation, qubits, clbits):
        self.node_id = node_id
        self.operation = operation
        self.qubits = tuple(qubits)
        self.clbits = tuple(clbits)

    @property
    def name(self) -> str:
        """Operation name."""
        return self.operation.name

    def __repr__(self):
        return f"DAGOpNode({self.node_id}: {self.operation.name} {list(self.qubits)})"


def _node_wires(node: DAGOpNode) -> list:
    """Every wire the node touches (qubits, clbits, condition bits), deduped."""
    wires = list(node.qubits) + list(node.clbits)
    condition = node.operation.condition
    if condition is not None:
        wires.extend(condition[0])
    seen = set()
    unique = []
    for wire in wires:
        if wire not in seen:
            seen.add(wire)
            unique.append(wire)
    return unique


class DAGCircuit:
    """Wire-dependency DAG over a circuit's operations.

    Ground truth is per-wire doubly-linked lists (``_prev`` / ``_next``
    keyed by ``(node_id, wire)``); aggregated successor/predecessor sets
    are derived on demand.  ``_order`` records node ids in a valid
    topological order with lazy deletion (removed ids are skipped, and the
    list is compacted when mostly dead).
    """

    def __init__(self, circuit: QuantumCircuit | None = None):
        self._circuit = circuit
        self._counter = itertools.count()
        self._nodes: dict[int, DAGOpNode] = {}
        self._order: list[int] = []
        self._wire_head: dict = {}
        self._wire_tail: dict = {}
        self._next: dict = {}
        self._prev: dict = {}
        self.name = None
        self.qregs: list = []
        self.cregs: list = []
        self.qubits: list = []
        self.clbits: list = []
        if circuit is not None:
            self.name = circuit.name
            self.qregs = list(circuit.qregs)
            self.cregs = list(circuit.cregs)
            self.qubits = list(circuit.qubits)
            self.clbits = list(circuit.clbits)
            for item in circuit.data:
                self.apply_operation_back(
                    item.operation, item.qubits, item.clbits
                )

    # -- metadata --------------------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        """The source circuit (materialized if this DAG was built fresh)."""
        if self._circuit is not None:
            return self._circuit
        return self.to_circuit()

    @property
    def num_qubits(self) -> int:
        """Number of qubit wires."""
        return len(self.qubits)

    @property
    def num_clbits(self) -> int:
        """Number of classical wires."""
        return len(self.clbits)

    def copy_empty_like(self) -> "DAGCircuit":
        """A new DAG with the same wires/registers and no operations."""
        fresh = DAGCircuit()
        fresh._circuit = self._circuit
        fresh.name = self.name
        fresh.qregs = list(self.qregs)
        fresh.cregs = list(self.cregs)
        fresh.qubits = list(self.qubits)
        fresh.clbits = list(self.clbits)
        return fresh

    # -- construction ----------------------------------------------------------

    def apply_operation_back(self, operation, qubits, clbits=()) -> DAGOpNode:
        """Append an operation at the end of its wires."""
        node_id = next(self._counter)
        node = DAGOpNode(node_id, operation, qubits, clbits)
        self._nodes[node_id] = node
        self._order.append(node_id)
        for wire in _node_wires(node):
            tail = self._wire_tail.get(wire)
            if tail is None:
                self._wire_head[wire] = node_id
            else:
                self._next[(tail, wire)] = node_id
                self._prev[(node_id, wire)] = tail
            self._wire_tail[wire] = node_id
        return node

    def __contains__(self, node: DAGOpNode) -> bool:
        return node.node_id in self._nodes

    # -- basic queries ---------------------------------------------------------

    def op_nodes(self, name=None) -> list[DAGOpNode]:
        """All operation nodes in topological (insertion) order."""
        if len(self._order) > 2 * len(self._nodes):
            self._order = [i for i in self._order if i in self._nodes]
        nodes = [self._nodes[i] for i in self._order if i in self._nodes]
        if name is not None:
            nodes = [n for n in nodes if n.operation.name == name]
        return nodes

    def topological_op_nodes(self) -> list[DAGOpNode]:
        """Operation nodes in a valid topological order."""
        return self.op_nodes()

    def node_wires(self, node: DAGOpNode) -> list:
        """The wires ``node`` touches (qubits, clbits, condition bits)."""
        return _node_wires(node)

    def wire_successor(self, node: DAGOpNode, wire) -> DAGOpNode | None:
        """The next node on ``wire`` after ``node`` (None at the wire end)."""
        nxt = self._next.get((node.node_id, wire))
        return self._nodes[nxt] if nxt is not None else None

    def wire_predecessor(self, node: DAGOpNode, wire) -> DAGOpNode | None:
        """The node on ``wire`` just before ``node`` (None at the start)."""
        prev = self._prev.get((node.node_id, wire))
        return self._nodes[prev] if prev is not None else None

    def successors(self, node: DAGOpNode) -> list[DAGOpNode]:
        """Direct successors of ``node`` across all of its wires."""
        ids = {
            self._next.get((node.node_id, wire))
            for wire in _node_wires(node)
        }
        ids.discard(None)
        return [self._nodes[i] for i in sorted(ids)]

    def predecessors(self, node: DAGOpNode) -> list[DAGOpNode]:
        """Direct predecessors of ``node`` across all of its wires."""
        ids = {
            self._prev.get((node.node_id, wire))
            for wire in _node_wires(node)
        }
        ids.discard(None)
        return [self._nodes[i] for i in sorted(ids)]

    def front_layer(self) -> list[DAGOpNode]:
        """Nodes with no predecessors on any of their wires."""
        front = []
        for node_id in self._order:
            node = self._nodes.get(node_id)
            if node is None:
                continue
            if all(
                (node_id, wire) not in self._prev
                for wire in _node_wires(node)
            ):
                front.append(node)
        return front

    # -- node surgery ----------------------------------------------------------

    def remove_op_node(self, node: DAGOpNode) -> None:
        """Delete a node, splicing each wire's neighbours together."""
        node_id = node.node_id
        if node_id not in self._nodes:
            raise CircuitError("node not in DAG")
        for wire in _node_wires(node):
            prev = self._prev.pop((node_id, wire), None)
            nxt = self._next.pop((node_id, wire), None)
            if prev is not None:
                if nxt is not None:
                    self._next[(prev, wire)] = nxt
                else:
                    self._next.pop((prev, wire), None)
            if nxt is not None:
                if prev is not None:
                    self._prev[(nxt, wire)] = prev
                else:
                    self._prev.pop((nxt, wire), None)
            if self._wire_head.get(wire) == node_id:
                if nxt is not None:
                    self._wire_head[wire] = nxt
                else:
                    self._wire_head.pop(wire, None)
            if self._wire_tail.get(wire) == node_id:
                if prev is not None:
                    self._wire_tail[wire] = prev
                else:
                    self._wire_tail.pop(wire, None)
        del self._nodes[node_id]

    def substitute_node(self, node: DAGOpNode, operation) -> DAGOpNode:
        """Swap a node's operation in place (same wires, same position)."""
        if node.node_id not in self._nodes:
            raise CircuitError("node not in DAG")
        if operation.num_qubits != len(node.qubits):
            raise CircuitError(
                f"cannot substitute {len(node.qubits)}-qubit node with "
                f"{operation.num_qubits}-qubit operation"
            )
        if operation.condition != node.operation.condition:
            raise CircuitError(
                "substitute_node cannot change the condition (wires would "
                "differ); use substitute_node_with_dag"
            )
        node.operation = operation
        return node

    def substitute_node_with_dag(self, node: DAGOpNode,
                                 replacement: "DAGCircuit",
                                 wires=None) -> list[DAGOpNode]:
        """Replace ``node`` with the contents of another DAG.

        ``wires`` maps the replacement DAG's wires (its qubits then
        clbits, in order) onto this DAG's wires; it defaults to the
        substituted node's own ``qubits + clbits``.  Replacement
        operations may only touch mapped wires.  The substituted node's
        condition (if any) is propagated onto unconditioned replacement
        operations, exactly like the unroller does.
        """
        node_id = node.node_id
        if node_id not in self._nodes:
            raise CircuitError("node not in DAG")
        old_wires = _node_wires(node)
        if wires is None:
            wires = list(node.qubits) + list(node.clbits)
        inner_wires = list(replacement.qubits) + list(replacement.clbits)
        if len(inner_wires) != len(wires):
            raise CircuitError(
                f"replacement DAG has {len(inner_wires)} wires; "
                f"{len(wires)} outer wires supplied"
            )
        wire_map = dict(zip(inner_wires, wires))
        condition = node.operation.condition
        allowed = set(old_wires)

        new_nodes: list[DAGOpNode] = []
        for rnode in replacement.op_nodes():
            operation = rnode.operation.copy()
            if operation.condition is not None:
                raise CircuitError(
                    "replacement operations may not carry their own "
                    "conditions"
                )
            if condition is not None:
                operation.condition = condition
            qubits = [wire_map[w] for w in rnode.qubits]
            clbits = [wire_map[w] for w in rnode.clbits]
            new_id = next(self._counter)
            new_node = DAGOpNode(new_id, operation, qubits, clbits)
            for wire in _node_wires(new_node):
                if wire not in allowed:
                    raise CircuitError(
                        "replacement operation touches a wire outside the "
                        "substituted node's wires"
                    )
            self._nodes[new_id] = new_node
            new_nodes.append(new_node)

        position = self._order.index(node_id)
        self._order[position:position + 1] = [n.node_id for n in new_nodes]

        for wire in old_wires:
            chain = [
                n.node_id for n in new_nodes
                if wire in set(_node_wires(n))
            ]
            prev = self._prev.pop((node_id, wire), None)
            nxt = self._next.pop((node_id, wire), None)
            seq = ([prev] if prev is not None else []) + chain + (
                [nxt] if nxt is not None else []
            )
            if not seq:
                self._wire_head.pop(wire, None)
                self._wire_tail.pop(wire, None)
                continue
            if prev is None:
                self._wire_head[wire] = seq[0]
                self._prev.pop((seq[0], wire), None)
            if nxt is None:
                self._wire_tail[wire] = seq[-1]
                self._next.pop((seq[-1], wire), None)
            for a, b in zip(seq, seq[1:]):
                self._next[(a, wire)] = b
                self._prev[(b, wire)] = a
        del self._nodes[node_id]
        return new_nodes

    # -- analysis --------------------------------------------------------------

    def layers(self):
        """Yield lists of nodes by ASAP level (like Fig. 1b columns)."""
        level: dict[int, int] = {}
        buckets: dict[int, list[DAGOpNode]] = {}
        for node in self.op_nodes():
            preds = (
                self._prev.get((node.node_id, wire))
                for wire in _node_wires(node)
            )
            lvl = max(
                (level[p] for p in preds if p is not None), default=-1
            ) + 1
            level[node.node_id] = lvl
            buckets.setdefault(lvl, []).append(node)
        for lvl in sorted(buckets):
            yield buckets[lvl]

    def depth(self) -> int:
        """Longest path length over op nodes (barriers excluded)."""
        level: dict[int, int] = {}
        depth = 0
        for node in self.op_nodes():
            preds = (
                self._prev.get((node.node_id, wire))
                for wire in _node_wires(node)
            )
            lvl = max((level[p] for p in preds if p is not None), default=0)
            if node.operation.name != "barrier":
                lvl += 1
            level[node.node_id] = lvl
            depth = max(depth, lvl)
        return depth

    def count_ops(self) -> dict:
        """Histogram of op names."""
        counts: dict = {}
        for node in self.op_nodes():
            counts[node.name] = counts.get(node.name, 0) + 1
        return counts

    def size(self) -> int:
        """Number of operations (barriers included)."""
        return len(self._nodes)

    def two_qubit_ops(self) -> list[DAGOpNode]:
        """All 2-qubit gates (the CNOT-constraint carriers of Sec. II-B)."""
        return [
            n
            for n in self.op_nodes()
            if len(n.qubits) == 2 and n.operation.name != "barrier"
        ]

    def to_circuit(self) -> QuantumCircuit:
        """Rebuild a flat circuit in topological order."""
        if self._circuit is not None:
            fresh = self._circuit.copy_empty_like()
            fresh.name = self.name if self.name is not None else fresh.name
        else:
            fresh = QuantumCircuit(
                name=self.name if self.name is not None else "dag-circuit"
            )
            for register in self.qregs:
                fresh.add_register(register)
            for register in self.cregs:
                fresh.add_register(register)
        for node in self.op_nodes():
            fresh.data.append(
                CircuitInstruction(
                    node.operation.copy(), list(node.qubits), list(node.clbits)
                )
            )
        return fresh


def circuit_to_dag(circuit: QuantumCircuit) -> DAGCircuit:
    """Convert a flat circuit into the DAG IR (pipeline entry boundary)."""
    return DAGCircuit(circuit)


def dag_to_circuit(dag: DAGCircuit) -> QuantumCircuit:
    """Convert the DAG IR back to a flat circuit (pipeline exit boundary)."""
    return dag.to_circuit()
