"""Directed-acyclic-graph view of a circuit.

The transpiler's analysis and routing passes (Sec. V-B) work on wire
dependencies rather than the flat instruction list: two gates on disjoint
qubits commute trivially, and a router consumes the *front layer* of gates
whose predecessors have all been executed.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro.circuit.circuitinstruction import CircuitInstruction
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import CircuitError


class DAGOpNode:
    """One operation node in the DAG."""

    __slots__ = ("node_id", "operation", "qubits", "clbits")

    def __init__(self, node_id, operation, qubits, clbits):
        self.node_id = node_id
        self.operation = operation
        self.qubits = tuple(qubits)
        self.clbits = tuple(clbits)

    @property
    def name(self) -> str:
        """Operation name."""
        return self.operation.name

    def __repr__(self):
        return f"DAGOpNode({self.node_id}: {self.operation.name} {list(self.qubits)})"


class DAGCircuit:
    """Wire-dependency DAG over a circuit's operations."""

    def __init__(self, circuit: QuantumCircuit):
        self._circuit = circuit
        self._counter = itertools.count()
        self._nodes: dict[int, DAGOpNode] = {}
        self._succ: dict[int, set[int]] = defaultdict(set)
        self._pred: dict[int, set[int]] = defaultdict(set)
        self._order: list[int] = []
        last_on_wire: dict = {}
        for item in circuit.data:
            wires = list(item.qubits) + list(item.clbits)
            if item.operation.condition is not None:
                wires.extend(item.operation.condition[0])
            node_id = next(self._counter)
            node = DAGOpNode(node_id, item.operation, item.qubits, item.clbits)
            self._nodes[node_id] = node
            self._order.append(node_id)
            for wire in wires:
                prev = last_on_wire.get(wire)
                if prev is not None and prev != node_id:
                    self._succ[prev].add(node_id)
                    self._pred[node_id].add(prev)
                last_on_wire[wire] = node_id

    # -- basic queries ---------------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        """The source circuit."""
        return self._circuit

    def op_nodes(self, name=None) -> list[DAGOpNode]:
        """All operation nodes in topological (insertion) order."""
        nodes = [self._nodes[i] for i in self._order if i in self._nodes]
        if name is not None:
            nodes = [n for n in nodes if n.operation.name == name]
        return nodes

    def successors(self, node: DAGOpNode) -> list[DAGOpNode]:
        """Direct successors of ``node``."""
        return [self._nodes[i] for i in sorted(self._succ[node.node_id])
                if i in self._nodes]

    def predecessors(self, node: DAGOpNode) -> list[DAGOpNode]:
        """Direct predecessors of ``node``."""
        return [self._nodes[i] for i in sorted(self._pred[node.node_id])
                if i in self._nodes]

    def front_layer(self) -> list[DAGOpNode]:
        """Nodes with no unexecuted predecessors."""
        return [
            self._nodes[i]
            for i in self._order
            if i in self._nodes and not self._pred[i]
        ]

    def remove_op_node(self, node: DAGOpNode) -> None:
        """Delete a node, splicing predecessors to successors."""
        node_id = node.node_id
        if node_id not in self._nodes:
            raise CircuitError("node not in DAG")
        preds = self._pred.pop(node_id, set())
        succs = self._succ.pop(node_id, set())
        for p in preds:
            self._succ[p].discard(node_id)
            self._succ[p] |= succs
        for s in succs:
            self._pred[s].discard(node_id)
            self._pred[s] |= preds
        del self._nodes[node_id]

    def layers(self):
        """Yield lists of nodes by ASAP level (like Fig. 1b columns)."""
        level: dict[int, int] = {}
        buckets: dict[int, list[DAGOpNode]] = defaultdict(list)
        for node_id in self._order:
            if node_id not in self._nodes:
                continue
            preds = self._pred[node_id]
            lvl = max((level[p] for p in preds if p in level), default=-1) + 1
            level[node_id] = lvl
            buckets[lvl].append(self._nodes[node_id])
        for lvl in sorted(buckets):
            yield buckets[lvl]

    def depth(self) -> int:
        """Longest path length over op nodes (barriers excluded)."""
        level: dict[int, int] = {}
        depth = 0
        for node_id in self._order:
            if node_id not in self._nodes:
                continue
            node = self._nodes[node_id]
            preds = self._pred[node_id]
            lvl = max((level[p] for p in preds if p in level), default=0)
            if node.operation.name != "barrier":
                lvl += 1
            level[node_id] = lvl
            depth = max(depth, lvl)
        return depth

    def count_ops(self) -> dict:
        """Histogram of op names."""
        counts: dict = {}
        for node in self.op_nodes():
            counts[node.name] = counts.get(node.name, 0) + 1
        return counts

    def two_qubit_ops(self) -> list[DAGOpNode]:
        """All 2-qubit gates (the CNOT-constraint carriers of Sec. II-B)."""
        return [
            n
            for n in self.op_nodes()
            if len(n.qubits) == 2 and n.operation.name != "barrier"
        ]

    def to_circuit(self) -> QuantumCircuit:
        """Rebuild a flat circuit in topological order."""
        fresh = self._circuit.copy_empty_like()
        for node in self.op_nodes():
            fresh.data.append(
                CircuitInstruction(
                    node.operation.copy(), list(node.qubits), list(node.clbits)
                )
            )
        return fresh
