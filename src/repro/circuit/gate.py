"""The :class:`Gate` base class — unitary instructions.

Gates extend :class:`Instruction` with a dense unitary matrix.  Composite
gates may leave ``_matrix`` unimplemented; ``to_matrix`` then assembles the
unitary from the gate's definition recursively.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.circuit.instruction import Instruction
from repro.circuit.matrix_utils import apply_matrix
from repro.exceptions import CircuitError

#: Shared LRU of computed matrices for ``_matrix_cacheable`` gate classes,
#: keyed on ``(class, bound-params)``.  Transpiled circuits apply thousands
#: of identical ``u3``/``cx`` instances; this makes each matrix a dict hit.
_MATRIX_CACHE: OrderedDict = OrderedDict()
_MATRIX_CACHE_SIZE = 512


def clear_matrix_cache():
    """Drop the shared gate-matrix LRU (for tests/benchmarks)."""
    _MATRIX_CACHE.clear()


class Gate(Instruction):
    """A unitary operation on qubits only."""

    #: Set ``True`` on classes whose matrix is a pure function of
    #: ``(class, params)`` — the standard-gate library opts in; gates that
    #: carry extra state (``UnitaryGate``, ``ControlledUnitaryGate``) do not.
    _matrix_cacheable = False

    def __init__(self, name, num_qubits, params=None, label=None):
        super().__init__(name, num_qubits, 0, params=params, label=label)

    def _matrix(self):
        """Return the dense unitary, or None to derive it from the definition."""
        return None

    def _params_key(self):
        """Hashable key identifying the bound parameters, or None.

        ``None`` disables caching (parameters that are not plain numbers).
        """
        try:
            return tuple(float(p) for p in self.params)
        except (TypeError, ValueError):
            return None

    def to_matrix(self) -> np.ndarray:
        """The gate's ``2**n x 2**n`` unitary in little-endian convention.

        Results are cached: per instance (validated against the current
        parameter values, so ``bind_parameters``/param mutation invalidates
        naturally) and, for standard-library gates, in a shared LRU across
        instances.  Cached matrices are marked read-only; copy before
        mutating.
        """
        if self.is_parameterized():
            raise CircuitError(
                f"gate '{self.name}' has unbound parameters; bind before to_matrix"
            )
        key = self._params_key()
        if key is None:
            return self._compute_matrix()
        cached = getattr(self, "_matrix_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        shared_key = (type(self), key) if type(self)._matrix_cacheable else None
        if shared_key is not None:
            matrix = _MATRIX_CACHE.get(shared_key)
            if matrix is not None:
                _MATRIX_CACHE.move_to_end(shared_key)
                self._matrix_cache = (key, matrix)
                return matrix
        matrix = self._compute_matrix()
        matrix.setflags(write=False)
        self._matrix_cache = (key, matrix)
        if shared_key is not None:
            _MATRIX_CACHE[shared_key] = matrix
            while len(_MATRIX_CACHE) > _MATRIX_CACHE_SIZE:
                _MATRIX_CACHE.popitem(last=False)
        return matrix

    def _compute_matrix(self) -> np.ndarray:
        """Uncached matrix assembly: explicit ``_matrix`` or definition walk."""
        matrix = self._matrix()
        if matrix is not None:
            return np.asarray(matrix, dtype=complex)
        definition = self.definition
        if definition is None:
            raise CircuitError(f"gate '{self.name}' has neither matrix nor definition")
        dim = 2**self.num_qubits
        unitary = np.eye(dim, dtype=complex)
        for sub, qargs, _cargs in definition:
            if not isinstance(sub, Gate):
                raise CircuitError(
                    f"definition of '{self.name}' contains non-unitary '{sub.name}'"
                )
            unitary = apply_matrix(unitary, sub.to_matrix(), list(qargs), self.num_qubits)
        return unitary

    def control(self, num_ctrl_qubits=1) -> "Gate":
        """Return the controlled version of this gate.

        The generic construction builds the controlled unitary matrix
        directly; standard gates override with structural definitions where
        one exists (e.g. ``x.control() -> cx``).
        """
        from repro.circuit.library.standard_gates import ControlledUnitaryGate

        base = self
        for _ in range(num_ctrl_qubits):
            base = ControlledUnitaryGate(base)
        return base

    def power(self, exponent: float) -> "Gate":
        """Return this gate raised to ``exponent`` via eigendecomposition."""
        from repro.circuit.library.standard_gates import UnitaryGate
        from scipy.linalg import fractional_matrix_power

        matrix = fractional_matrix_power(self.to_matrix(), exponent)
        return UnitaryGate(matrix, label=f"{self.name}^{exponent}")
