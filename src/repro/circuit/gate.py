"""The :class:`Gate` base class — unitary instructions.

Gates extend :class:`Instruction` with a dense unitary matrix.  Composite
gates may leave ``_matrix`` unimplemented; ``to_matrix`` then assembles the
unitary from the gate's definition recursively.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.instruction import Instruction
from repro.circuit.matrix_utils import apply_matrix
from repro.exceptions import CircuitError


class Gate(Instruction):
    """A unitary operation on qubits only."""

    def __init__(self, name, num_qubits, params=None, label=None):
        super().__init__(name, num_qubits, 0, params=params, label=label)

    def _matrix(self):
        """Return the dense unitary, or None to derive it from the definition."""
        return None

    def to_matrix(self) -> np.ndarray:
        """The gate's ``2**n x 2**n`` unitary in little-endian convention."""
        if self.is_parameterized():
            raise CircuitError(
                f"gate '{self.name}' has unbound parameters; bind before to_matrix"
            )
        matrix = self._matrix()
        if matrix is not None:
            return np.asarray(matrix, dtype=complex)
        definition = self.definition
        if definition is None:
            raise CircuitError(f"gate '{self.name}' has neither matrix nor definition")
        dim = 2**self.num_qubits
        unitary = np.eye(dim, dtype=complex)
        for sub, qargs, _cargs in definition:
            if not isinstance(sub, Gate):
                raise CircuitError(
                    f"definition of '{self.name}' contains non-unitary '{sub.name}'"
                )
            unitary = apply_matrix(unitary, sub.to_matrix(), list(qargs), self.num_qubits)
        return unitary

    def control(self, num_ctrl_qubits=1) -> "Gate":
        """Return the controlled version of this gate.

        The generic construction builds the controlled unitary matrix
        directly; standard gates override with structural definitions where
        one exists (e.g. ``x.control() -> cx``).
        """
        from repro.circuit.library.standard_gates import ControlledUnitaryGate

        base = self
        for _ in range(num_ctrl_qubits):
            base = ControlledUnitaryGate(base)
        return base

    def power(self, exponent: float) -> "Gate":
        """Return this gate raised to ``exponent`` via eigendecomposition."""
        from repro.circuit.library.standard_gates import UnitaryGate
        from scipy.linalg import fractional_matrix_power

        matrix = fractional_matrix_power(self.to_matrix(), exponent)
        return UnitaryGate(matrix, label=f"{self.name}^{exponent}")
