"""Structural parameter-binding plans.

Binding a parameterized template used to rescan every instruction on every
bind call (``op.is_parameterized()`` walks all params each time).  A
:class:`BindPlan` computes the parameter -> instruction-index map once per
circuit structure and is cached on the circuit, so repeated binds — the
inner loop of every variational algorithm — touch only the parameterized
instructions.

The same plan is the batched fast path of the V2 primitives: given a
``(batch, num_parameters)`` value array, :meth:`BindPlan.resolve_arrays`
evaluates each parameterized expression *once over the whole batch axis*
(numpy-vectorized through the expression tree), yielding per-instruction
angle vectors without constructing ``batch`` bound circuit copies.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.parameter import ParameterExpression
from repro.exceptions import CircuitError


def plan_key(data) -> tuple:
    """Cheap identity key for a circuit's instruction list.

    Appending, replacing, or rebuilding ``data`` changes the length or the
    end-point instruction identities, which is what invalidates a cached
    plan.  (In-place mutation of an existing operation's params would slip
    through, but nothing in the codebase rebinds params in place — binding
    always copies.)
    """
    if not data:
        return (0, None, None)
    return (len(data), id(data[0]), id(data[-1]))


class BindPlan:
    """Precomputed parameter layout of one circuit structure."""

    def __init__(self, circuit):
        self.key = plan_key(circuit.data)
        #: ``(data_index, param_slots, expressions)`` per parameterized
        #: instruction; slots index into ``operation.params``.
        self.entries: list = []
        parameters: set = set()
        for index, item in enumerate(circuit.data):
            op = item.operation
            slots: list = []
            expressions: list = []
            for slot, param in enumerate(op.params):
                if (
                    isinstance(param, ParameterExpression)
                    and param.parameters
                ):
                    slots.append(slot)
                    expressions.append(param)
                    parameters |= param.parameters
            if slots:
                self.entries.append((index, slots, expressions))
        self.parameters = parameters
        #: Positional-bind order, matching ``sorted(parameters, key=name)``.
        self.ordered = sorted(parameters, key=lambda p: p.name)
        self.parameterized_indices = frozenset(
            index for index, _slots, _exprs in self.entries
        )

    @property
    def num_parameters(self) -> int:
        return len(self.ordered)

    def make_binding(self, values) -> dict:
        """Map a value sequence onto the sorted parameter order."""
        values = list(values)
        if len(values) != len(self.ordered):
            raise CircuitError(
                f"expected {len(self.ordered)} values, got {len(values)}"
            )
        return dict(zip(self.ordered, values))

    def resolve_arrays(self, values: np.ndarray) -> dict:
        """Vectorized resolution of every bound angle for a value batch.

        Args:
            values: ``(batch, num_parameters)`` array, columns in
                :attr:`ordered` order.

        Returns:
            ``{data_index: (param_slots, [angles, ...])}`` where each
            ``angles`` is a float64 ``(batch,)`` vector — one evaluated
            expression per parameterized slot.  Bitwise identical per row
            to scalar binding (``np.sin``/``np.cos`` match ``math`` on
            float64).
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(self.ordered):
            raise CircuitError(
                f"parameter values must have shape (batch, "
                f"{len(self.ordered)}), got {values.shape}"
            )
        batch = values.shape[0]
        binding = {
            parameter: values[:, column]
            for column, parameter in enumerate(self.ordered)
        }
        resolved = {}
        for index, slots, expressions in self.entries:
            angles = []
            for expression in expressions:
                angle = expression.evaluate(binding)
                angle = np.asarray(angle, dtype=float)
                if angle.ndim == 0:
                    angle = np.full(batch, float(angle))
                angles.append(angle)
            resolved[index] = (slots, angles)
        return resolved


def get_bind_plan(circuit) -> BindPlan:
    """The circuit's cached :class:`BindPlan`, rebuilt when ``data`` changed."""
    cached = getattr(circuit, "_bind_plan_cache", None)
    if cached is not None and cached.key == plan_key(circuit.data):
        return cached
    plan = BindPlan(circuit)
    circuit._bind_plan_cache = plan
    return plan
