"""The base :class:`Instruction` type.

An instruction names an operation on a fixed number of quantum and classical
bits, optionally parameterized by angles.  Composite instructions expose a
``definition``: a list of ``(sub_instruction, qubit_positions, clbit_positions)``
tuples whose positions index into the parent instruction's own bits.  The
transpiler's unroller expands definitions recursively down to a basis.
"""

from __future__ import annotations

import copy as _copy

from repro.circuit.parameter import ParameterExpression, is_parameterized
from repro.exceptions import CircuitError


class Instruction:
    """A named operation on ``num_qubits`` qubits and ``num_clbits`` clbits."""

    def __init__(self, name, num_qubits, num_clbits, params=None, label=None):
        if num_qubits < 0 or num_clbits < 0:
            raise CircuitError("instruction bit counts must be non-negative")
        self._name = name
        self._num_qubits = num_qubits
        self._num_clbits = num_clbits
        self._params = list(params) if params is not None else []
        self._label = label
        self._definition = None
        #: Optional classical condition, as a ``(ClassicalRegister, int)`` pair.
        self.condition = None

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        """Lower-case OpenQASM-style mnemonic of the operation."""
        return self._name

    @property
    def num_qubits(self) -> int:
        """Number of qubits the instruction acts on."""
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        """Number of classical bits the instruction acts on."""
        return self._num_clbits

    @property
    def params(self) -> list:
        """The instruction's parameters (angles, bound or symbolic)."""
        return self._params

    @params.setter
    def params(self, value):
        self._params = list(value)

    @property
    def label(self):
        """Optional user label for drawers."""
        return self._label

    # -- definition ---------------------------------------------------------

    @property
    def definition(self):
        """Decomposition into sub-instructions, or None for primitives.

        The value is a list of ``(instruction, qargs, cargs)`` tuples where
        ``qargs``/``cargs`` are integer positions into this instruction's own
        qubits/clbits.
        """
        if self._definition is None:
            self._definition = self._define()
        return self._definition

    def _define(self):
        """Build the definition; primitives return None."""
        return None

    # -- transformations ----------------------------------------------------

    def inverse(self) -> "Instruction":
        """Return the inverse instruction.

        The generic implementation reverses the definition and inverts each
        sub-instruction; primitives must override.
        """
        definition = self.definition
        if definition is None:
            raise CircuitError(f"instruction '{self._name}' has no inverse defined")
        inverted = Instruction(
            self._name + "_dg", self._num_qubits, self._num_clbits, self._params
        )
        inverted._definition = [
            (sub.inverse(), qargs, cargs) for sub, qargs, cargs in reversed(definition)
        ]
        return inverted

    def copy(self) -> "Instruction":
        """Return a deep-enough copy (params copied, definition shared)."""
        fresh = _copy.copy(self)
        fresh._params = list(self._params)
        return fresh

    def is_parameterized(self) -> bool:
        """True when any parameter contains an unbound symbol."""
        return any(is_parameterized(param) for param in self._params)

    def bind_parameters(self, binding: dict) -> "Instruction":
        """Return a copy with symbolic parameters substituted via ``binding``."""
        fresh = self.copy()
        new_params = []
        for param in fresh._params:
            if isinstance(param, ParameterExpression):
                new_params.append(param.bind(binding))
            else:
                new_params.append(param)
        fresh._params = new_params
        fresh._definition = None
        return fresh

    def c_if(self, register, value) -> "Instruction":
        """Attach a classical condition (OpenQASM ``if (creg==value)``)."""
        if value < 0:
            raise CircuitError("condition value must be non-negative")
        self.condition = (register, int(value))
        return self

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        if (
            self._name != other._name
            or self._num_qubits != other._num_qubits
            or self._num_clbits != other._num_clbits
            or self.condition != other.condition
        ):
            return False
        if len(self._params) != len(other._params):
            return False
        for mine, theirs in zip(self._params, other._params):
            if isinstance(mine, ParameterExpression) or isinstance(
                theirs, ParameterExpression
            ):
                if repr(mine) != repr(theirs):
                    return False
            elif abs(complex(mine) - complex(theirs)) > 1e-10:
                return False
        return True

    def __repr__(self):
        if self._params:
            params = ", ".join(str(param) for param in self._params)
            return f"{type(self).__name__}({params})"
        return f"{type(self).__name__}()"
