"""Quantum and classical registers.

Registers are named, fixed-size collections of bits, mirroring OpenQASM 2.0's
``qreg``/``creg`` declarations.  Indexing a register yields its bits; slicing
yields a list of bits.
"""

from __future__ import annotations

import itertools
import re

from repro.circuit.bit import Clbit, Qubit
from repro.exceptions import CircuitError

_VALID_NAME = re.compile(r"^[a-z][a-zA-Z0-9_]*$")


class Register:
    """A named, fixed-size collection of bits."""

    #: Bit subclass instantiated for each slot; set by subclasses.
    bit_type = None
    #: Prefix used for auto-generated names; set by subclasses.
    prefix = "reg"

    _anonymous_counter = itertools.count()

    __slots__ = ("_name", "_size", "_bits", "_hash")

    def __init__(self, size, name=None):
        if name is None:
            name = f"{self.prefix}{next(Register._anonymous_counter)}"
        if not isinstance(name, str) or not _VALID_NAME.match(name):
            raise CircuitError(
                f"register name must match [a-z][a-zA-Z0-9_]*, got {name!r}"
            )
        if not isinstance(size, int) or size <= 0:
            raise CircuitError(f"register size must be a positive int, got {size!r}")
        self._name = name
        self._size = size
        self._hash = hash((type(self).__name__, name, size))
        self._bits = [self.bit_type(self, i) for i in range(size)]

    @property
    def name(self) -> str:
        """The register's name."""
        return self._name

    @property
    def size(self) -> int:
        """Number of bits in the register."""
        return self._size

    def __len__(self):
        return self._size

    def __getitem__(self, key):
        if isinstance(key, slice):
            return self._bits[key]
        if isinstance(key, (list, tuple)):
            return [self._bits[i] for i in key]
        return self._bits[key]

    def __iter__(self):
        return iter(self._bits)

    def __contains__(self, bit):
        return bit in self._bits

    def index(self, bit) -> int:
        """Return the index of ``bit`` within this register."""
        try:
            return self._bits.index(bit)
        except ValueError:
            raise CircuitError(f"{bit!r} is not in register '{self._name}'") from None

    def __repr__(self):
        return f"{type(self).__name__}({self._size}, '{self._name}')"

    def __eq__(self, other):
        if not isinstance(other, Register):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._name == other._name
            and self._size == other._size
        )

    def __hash__(self):
        return self._hash


class QuantumRegister(Register):
    """A register of qubits (OpenQASM ``qreg``)."""

    bit_type = Qubit
    prefix = "q"
    __slots__ = ()


class ClassicalRegister(Register):
    """A register of classical bits (OpenQASM ``creg``)."""

    bit_type = Clbit
    prefix = "c"
    __slots__ = ()
