"""Terra-equivalent circuit layer: bits, registers, gates, and circuits."""

from repro.circuit.bit import Clbit, Qubit
from repro.circuit.circuitinstruction import CircuitInstruction
from repro.circuit.gate import Gate
from repro.circuit.instruction import Instruction
from repro.circuit.measure import Barrier, Measure, Reset
from repro.circuit.parameter import Parameter, ParameterExpression
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.random_circuit import random_circuit, random_clifford_t_circuit
from repro.circuit.register import ClassicalRegister, QuantumRegister, Register

__all__ = [
    "Barrier",
    "CircuitInstruction",
    "ClassicalRegister",
    "Clbit",
    "Gate",
    "Instruction",
    "Measure",
    "Parameter",
    "ParameterExpression",
    "QuantumCircuit",
    "QuantumRegister",
    "Qubit",
    "Register",
    "Reset",
    "random_circuit",
    "random_clifford_t_circuit",
]
