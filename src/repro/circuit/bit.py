"""Bit objects: the atomic wires of a quantum circuit.

A :class:`Qubit` or :class:`Clbit` is identified by the register that owns it
and its index within that register.  Bits are immutable and hashable so they
can serve as dictionary keys in layouts and DAGs.
"""

from __future__ import annotations

from repro.exceptions import CircuitError


class Bit:
    """A generic circuit bit, owned by a register at a fixed index."""

    __slots__ = ("_register", "_index", "_hash")

    def __init__(self, register, index):
        if not isinstance(index, int):
            raise CircuitError(f"bit index must be an int, got {type(index).__name__}")
        if index < 0 or index >= register.size:
            raise CircuitError(
                f"index {index} out of range for register '{register.name}' "
                f"of size {register.size}"
            )
        self._register = register
        self._index = index
        self._hash = hash((type(self).__name__, register.name, register.size, index))

    @property
    def register(self):
        """The register this bit belongs to."""
        return self._register

    @property
    def index(self) -> int:
        """The index of this bit within its register."""
        return self._index

    def __repr__(self):
        return f"{type(self).__name__}({self._register.name}, {self._index})"

    def __eq__(self, other):
        if not isinstance(other, Bit):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._register == other._register
            and self._index == other._index
        )

    def __hash__(self):
        return self._hash


class Qubit(Bit):
    """A quantum bit."""

    __slots__ = ()


class Clbit(Bit):
    """A classical bit."""

    __slots__ = ()
