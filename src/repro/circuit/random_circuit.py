"""Random circuit generation for tests and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.circuit.library import standard_gates as sg
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import CircuitError

_ONE_QUBIT_FIXED = [
    sg.IGate, sg.XGate, sg.YGate, sg.ZGate, sg.HGate,
    sg.SGate, sg.SdgGate, sg.TGate, sg.TdgGate,
]
_ONE_QUBIT_PARAM = [sg.RXGate, sg.RYGate, sg.RZGate, sg.U1Gate]
_TWO_QUBIT_FIXED = [sg.CXGate, sg.CZGate, sg.SwapGate]
_TWO_QUBIT_PARAM = [sg.CRZGate, sg.CU1Gate, sg.RZZGate]
_CLIFFORD_T = [
    sg.HGate, sg.SGate, sg.SdgGate, sg.TGate, sg.TdgGate,
    sg.XGate, sg.YGate, sg.ZGate,
]


def random_circuit(num_qubits, depth, seed=None, measure=False,
                   two_qubit_prob=0.3) -> QuantumCircuit:
    """Generate a pseudo-random circuit.

    Args:
        num_qubits: circuit width.
        depth: number of gate layers to attempt.
        seed: RNG seed for reproducibility.
        measure: append a final measure-all when True.
        two_qubit_prob: probability that a slot becomes a two-qubit gate.

    Returns:
        A :class:`QuantumCircuit` over a register named ``q``.
    """
    if num_qubits < 1:
        raise CircuitError("random circuit needs at least one qubit")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0)
    for _ in range(depth):
        available = list(range(num_qubits))
        rng.shuffle(available)
        while available:
            use_two = (
                len(available) >= 2 and rng.random() < two_qubit_prob
            )
            if use_two:
                a = available.pop()
                b = available.pop()
                if rng.random() < 0.5:
                    cls = _TWO_QUBIT_FIXED[rng.integers(len(_TWO_QUBIT_FIXED))]
                    circuit.append(cls(), [a, b])
                else:
                    cls = _TWO_QUBIT_PARAM[rng.integers(len(_TWO_QUBIT_PARAM))]
                    circuit.append(cls(rng.uniform(0, 2 * np.pi)), [a, b])
            else:
                q = available.pop()
                if rng.random() < 0.5:
                    cls = _ONE_QUBIT_FIXED[rng.integers(len(_ONE_QUBIT_FIXED))]
                    circuit.append(cls(), [q])
                else:
                    cls = _ONE_QUBIT_PARAM[rng.integers(len(_ONE_QUBIT_PARAM))]
                    circuit.append(cls(rng.uniform(0, 2 * np.pi)), [q])
    if measure:
        for i in range(num_qubits):
            circuit.measure(i, i)
    return circuit


def random_clifford_t_circuit(num_qubits, num_gates, seed=None,
                              cx_prob=0.3) -> QuantumCircuit:
    """Generate a random circuit over the Clifford+T library (paper Sec. II-A)."""
    if num_qubits < 1:
        raise CircuitError("random circuit needs at least one qubit")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < cx_prob:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            cls = _CLIFFORD_T[rng.integers(len(_CLIFFORD_T))]
            circuit.append(cls(), [int(rng.integers(num_qubits))])
    return circuit
