"""A single entry in a circuit's instruction list."""

from __future__ import annotations


class CircuitInstruction:
    """An operation bound to concrete qubits and clbits.

    Supports tuple-style unpacking, ``op, qargs, cargs = item``, for
    compatibility with the historical Qiskit data format the paper-era API
    used.
    """

    __slots__ = ("operation", "qubits", "clbits")

    def __init__(self, operation, qubits=(), clbits=()):
        self.operation = operation
        self.qubits = tuple(qubits)
        self.clbits = tuple(clbits)

    def __iter__(self):
        yield self.operation
        yield list(self.qubits)
        yield list(self.clbits)

    def __eq__(self, other):
        if not isinstance(other, CircuitInstruction):
            return NotImplemented
        return (
            self.operation == other.operation
            and self.qubits == other.qubits
            and self.clbits == other.clbits
        )

    def __repr__(self):
        return (
            f"CircuitInstruction({self.operation!r}, "
            f"qubits={list(self.qubits)}, clbits={list(self.clbits)})"
        )
