"""Dense linear-algebra helpers shared by gates, simulators, and tests.

Conventions (identical to Qiskit's little-endian ordering):

* A computational-basis index ``x`` encodes qubit ``i`` in bit ``i`` of ``x``
  (qubit 0 is the least-significant bit).
* A ``k``-qubit gate matrix applied to qargs ``[q0, q1, ...]`` treats ``q0``
  as the least-significant bit of the gate's own ``2**k`` index space.

Note that the paper's Section V-A prints matrices in the big-endian textbook
convention; the two differ only by a fixed qubit permutation.
"""

from __future__ import annotations

import numpy as np


def apply_matrix(state, matrix, targets, num_qubits):
    """Apply a ``2**k x 2**k`` matrix to ``targets`` of an ``num_qubits`` state.

    Args:
        state: ndarray of shape ``(2**num_qubits,)`` or ``(2**num_qubits, B)``
            for a batch of ``B`` column vectors.
        matrix: the gate matrix (``k = len(targets)`` qubits).
        targets: qubit indices the matrix acts on; ``targets[0]`` is the
            least-significant bit of the matrix's index space.
        num_qubits: total number of qubits in ``state``.

    Returns:
        ndarray of the same shape as ``state``.
    """
    state = np.asarray(state)
    n = num_qubits
    k = len(targets)
    batch_shape = state.shape[1:]
    tensor = state.reshape((2,) * n + batch_shape)
    mat = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))

    # Axis of qubit q in the reshaped state (C order: axis 0 = qubit n-1).
    state_axes = [n - 1 - q for q in targets]
    # Input axis of the matrix corresponding to target j.
    mat_in_axes = [2 * k - 1 - j for j in range(k)]

    result = np.tensordot(mat, tensor, axes=(mat_in_axes, state_axes))
    # The matrix output axes now lead; move them back to the target slots.
    src = [k - 1 - j for j in range(k)]
    result = np.moveaxis(result, src, state_axes)
    return result.reshape(state.shape)


def embed_unitary(matrix, targets, num_qubits):
    """Embed a ``k``-qubit unitary on ``targets`` into the full space.

    Returns the ``2**num_qubits`` square matrix acting as ``matrix`` on the
    target qubits and the identity elsewhere.

    Built as ``kron(I, matrix)`` (gate on the low qubits) followed by a
    basis-index permutation that moves gate bit ``i`` to ``targets[i]`` —
    one Kronecker product plus one fancy-indexed gather instead of pushing
    a dense ``2**n`` identity through ``apply_matrix``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    k = len(targets)
    base = np.kron(np.eye(2 ** (num_qubits - k), dtype=complex), matrix)
    if list(targets) == list(range(k)):
        return base
    # Virtual ordering: gate bits first, then the remaining qubits ascending.
    permutation = list(targets) + [
        q for q in range(num_qubits) if q not in set(targets)
    ]
    source = np.arange(2**num_qubits)
    lookup = np.zeros_like(source)
    for position, qubit in enumerate(permutation):
        lookup |= ((source >> qubit) & 1) << position
    return base[np.ix_(lookup, lookup)]


def is_unitary(matrix, atol=1e-10) -> bool:
    """Check whether ``matrix`` is unitary to tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix.conj().T @ matrix
    return np.allclose(product, np.eye(matrix.shape[0]), atol=atol)


def allclose_up_to_global_phase(a, b, atol=1e-8) -> bool:
    """Compare two matrices or vectors ignoring an overall complex phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    flat_a = a.ravel()
    flat_b = b.ravel()
    pivot = int(np.argmax(np.abs(flat_b)))
    if abs(flat_b[pivot]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = flat_a[pivot] / flat_b[pivot]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(flat_a, phase * flat_b, atol=atol))


def kron_all(matrices):
    """Kronecker product of a sequence of matrices, left to right."""
    result = np.array([[1.0 + 0.0j]])
    for matrix in matrices:
        result = np.kron(result, matrix)
    return result
