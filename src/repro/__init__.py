"""repro — a from-scratch reproduction of IBM's Qiskit tool chain.

Reproduces the system described in "IBM's Qiskit Tool Chain: Working with
and Developing for Real Quantum Computers" (DATE 2019): circuits and
OpenQASM 2.0 (Terra), simulators with noise and a decision-diagram backend
(Aer + Sec. V-A), transpilation/mapping to the IBM QX architectures
(Sec. II-B/V-B), application algorithms (Aqua), and characterization
(Ignis).
"""

from repro.circuit import (
    ClassicalRegister,
    Parameter,
    QuantumCircuit,
    QuantumRegister,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "ClassicalRegister",
    "Parameter",
    "QuantumCircuit",
    "QuantumRegister",
    "ReproError",
    "__version__",
]


def __getattr__(name):
    # Lazy top-level conveniences to avoid import cycles at package load.
    if name == "execute":
        from repro.providers.execute import execute

        return execute
    if name == "transpile":
        from repro.providers.execute import transpile

        return transpile
    if name == "Aer":
        from repro.providers.aer import Aer

        return Aer
    if name == "SamplerV2":
        from repro.primitives import SamplerV2

        return SamplerV2
    if name == "EstimatorV2":
        from repro.primitives import EstimatorV2

        return EstimatorV2
    if name == "RuntimeService":
        from repro.runtime import RuntimeService

        return RuntimeService
    raise AttributeError(f"module 'repro' has no attribute '{name}'")
