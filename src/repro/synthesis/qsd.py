"""Quantum Shannon Decomposition: arbitrary-unitary synthesis.

Synthesizes any ``n``-qubit unitary into the {u1, u2, u3, cx} basis by the
recursive cosine-sine construction of Shende, Bullock & Markov:

    U  =  (u1 ⊕ u2) · UC-RY · (v1 ⊕ v2)

where the cosine-sine decomposition (scipy) provides the three factors, the
middle factor is a uniformly-controlled RY on the top qubit, and each
block-diagonal factor demultiplexes into two smaller unitaries around a
uniformly-controlled RZ.  Recursion bottoms out at ZYZ for one qubit.

This is the synthesis layer the paper's design-automation framing calls
for (its Refs. [21], [23], [41]): with it, the transpiler can unroll
arbitrary ``unitary`` gates onto the IBM QX basis.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import cossin, schur

from repro.circuit.library.standard_gates import U1Gate
from repro.circuit.matrix_utils import (
    allclose_up_to_global_phase,
    is_unitary,
)
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import CircuitError
from repro.synthesis.multiplexed import apply_uc_rotation


def synthesize_unitary(matrix, up_to_phase: bool = True) -> QuantumCircuit:
    """Synthesize a circuit implementing ``matrix`` (little-endian).

    Args:
        matrix: the ``2**n x 2**n`` unitary.
        up_to_phase: when False, a global-phase ``u1``+relabel correction is
            appended so the circuit matrix matches exactly (not only up to
            phase).

    Returns:
        A :class:`QuantumCircuit` over gates {u3, ry, rz, u1, cx}.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise CircuitError("unitary must be square")
    dim = matrix.shape[0]
    num_qubits = int(round(math.log2(dim)))
    if 2**num_qubits != dim:
        raise CircuitError("dimension must be a power of two")
    if not is_unitary(matrix, atol=1e-8):
        raise CircuitError("matrix is not unitary")
    circuit = QuantumCircuit(num_qubits)
    _synthesize(circuit, matrix, list(range(num_qubits)))
    if not up_to_phase:
        _fix_global_phase(circuit, matrix)
    return circuit


def _fix_global_phase(circuit: QuantumCircuit, target: np.ndarray) -> None:
    from repro.quantum_info.operator import Operator

    built = Operator.from_circuit(circuit).data
    pivot = int(np.argmax(np.abs(target)))
    row, col = divmod(pivot, target.shape[0])
    phase = target[row, col] / built[row, col]
    angle = float(np.angle(phase))
    if abs(angle) < 1e-12:
        return
    # Global phase e^{i a} = u1(a) sandwiched by X on any one qubit ... but
    # simpler: u1(a) acts as diag(1, e^{ia}); apply u1(a) then "undo" the
    # conditional part with an X-conjugated u1(a).
    from repro.circuit.library.standard_gates import XGate

    circuit.append(U1Gate(angle), [0])
    circuit.append(XGate(), [0])
    circuit.append(U1Gate(angle), [0])
    circuit.append(XGate(), [0])


def _synthesize(circuit: QuantumCircuit, matrix: np.ndarray, qubits) -> None:
    """Recursive QSD onto ``qubits`` (qubits[-1] is the block/select bit)."""
    if len(qubits) == 1:
        _append_one_qubit(circuit, matrix, qubits[0])
        return
    half = matrix.shape[0] // 2
    left, thetas, right = cossin(matrix, p=half, q=half, separate=True)
    # left/right are pairs of half-size unitaries (block diagonal factors);
    # thetas are the CS angles: the middle factor rotates the top qubit by
    # RY(2 theta_x), multiplexed on the lower qubits' state x.
    v1, v2 = right
    u1, u2 = left
    _demultiplex(circuit, v1, v2, qubits)
    apply_uc_rotation(
        circuit, "ry", 2.0 * np.asarray(thetas), qubits[:-1], qubits[-1]
    )
    _demultiplex(circuit, u1, u2, qubits)


def _demultiplex(circuit: QuantumCircuit, block0: np.ndarray,
                 block1: np.ndarray, qubits) -> None:
    """Emit ``block0 ⊕ block1`` selected by ``qubits[-1]``.

    Uses ``block0 ⊕ block1 = (I ⊗ V)(D ⊕ D†)(I ⊗ W)`` with
    ``block0 block1† = V D² V†`` (Schur) and ``W = D V† block1``; the middle
    diagonal is a uniformly-controlled RZ on the select qubit.
    """
    select = qubits[-1]
    lower = qubits[:-1]
    product = block0 @ block1.conj().T
    # Schur of a unitary (normal) matrix: T is diagonal, Z unitary.
    t_matrix, z_matrix = schur(product, output="complex")
    eigenvalues = np.diag(t_matrix)
    # Guard against numerical non-normality leaking into off-diagonals.
    if not np.allclose(t_matrix, np.diag(eigenvalues), atol=1e-8):
        raise CircuitError("demultiplexing failed: non-normal product")
    half_phases = np.angle(eigenvalues) / 2.0
    d_matrix = np.exp(1j * half_phases)
    v_matrix = z_matrix
    w_matrix = (d_matrix[:, None] * v_matrix.conj().T) @ block1
    _synthesize(circuit, w_matrix, lower)
    # (D ⊕ D†): phase e^{i phi_x} when select=0, e^{-i phi_x} when select=1
    # == RZ(-2 phi_x) on the select qubit for lower-state x.
    apply_uc_rotation(circuit, "rz", -2.0 * half_phases, lower, select)
    _synthesize(circuit, v_matrix, lower)


def _append_one_qubit(circuit: QuantumCircuit, matrix: np.ndarray,
                      qubit: int) -> None:
    from repro.transpiler.passes.unroller import u3_from_matrix

    gate = u3_from_matrix(matrix)
    circuit.append(gate, [qubit])
