"""Unitary and state synthesis (quantum Shannon decomposition, Möttönen)."""

from repro.synthesis.mcx import (
    mcx_circuit,
    mcx_recursive,
    mcx_vchain,
)
from repro.synthesis.multiplexed import (
    apply_uc_rotation,
    transform_angles,
    uc_rotation_circuit,
)
from repro.synthesis.qsd import synthesize_unitary
from repro.synthesis.state_preparation import initialize, prepare_state

__all__ = [
    "apply_uc_rotation",
    "initialize",
    "mcx_circuit",
    "mcx_recursive",
    "mcx_vchain",
    "prepare_state",
    "synthesize_unitary",
    "transform_angles",
    "uc_rotation_circuit",
]
