"""Uniformly-controlled (multiplexed) rotations.

A uniformly-controlled rotation applies ``R(angle[x])`` to a target qubit
for every classical state ``x`` of the control qubits.  The Möttönen et al.
construction realizes it with ``2**k`` plain rotations interleaved with
``2**k`` CNOTs whose controls follow the Gray code, after a Walsh-Hadamard
style transform of the angle vector.  This is the workhorse of both the
Shannon decomposition and state preparation.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.library.standard_gates import CXGate, RYGate, RZGate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import CircuitError

_ROTATIONS = {"ry": RYGate, "rz": RZGate}


def _gray(value: int) -> int:
    return value ^ (value >> 1)


def _control_index(step: int) -> int:
    """Index of the control whose Gray-code bit flips after ``step``.

    Equals the position of the lowest set bit of ``step + 1`` (the binary
    ruler sequence).
    """
    return ((step + 1) & -(step + 1)).bit_length() - 1


def transform_angles(angles) -> np.ndarray:
    """Map per-pattern angles to the interleaved-rotation angles.

    The circuit applies, for control state ``x``, the net rotation
    ``sum_j (-1)**popcount(x & gray(j)) theta'_j``; inverting that linear
    map gives ``theta' = M.T @ theta / 2**k``.
    """
    angles = np.asarray(angles, dtype=float)
    size = angles.shape[0]
    if size & (size - 1):
        raise CircuitError("angle count must be a power of two")
    signs = np.empty((size, size))
    for x in range(size):
        for j in range(size):
            signs[x, j] = (-1) ** bin(x & _gray(j)).count("1")
    return signs.T @ angles / size


def apply_uc_rotation(circuit: QuantumCircuit, axis: str, angles,
                      controls, target) -> None:
    """Append a uniformly-controlled RY or RZ to ``circuit``.

    Args:
        circuit: circuit to extend (qubits given as indices).
        axis: ``"ry"`` or ``"rz"``.
        angles: ``2**len(controls)`` rotation angles; ``angles[x]`` applies
            when control ``controls[i]`` holds bit ``i`` of ``x``.
        controls: control qubit indices (may be empty).
        target: target qubit index.
    """
    if axis not in _ROTATIONS:
        raise CircuitError(f"unsupported multiplexed axis '{axis}'")
    rotation = _ROTATIONS[axis]
    controls = list(controls)
    angles = np.asarray(angles, dtype=float)
    expected = 2 ** len(controls)
    if angles.shape[0] != expected:
        raise CircuitError(
            f"need {expected} angles for {len(controls)} controls, "
            f"got {angles.shape[0]}"
        )
    if not controls:
        if abs(angles[0]) > 1e-12:
            circuit.append(rotation(angles[0]), [target])
        return
    transformed = transform_angles(angles)
    size = angles.shape[0]
    for step in range(size):
        if abs(transformed[step]) > 1e-12:
            circuit.append(rotation(transformed[step]), [target])
        # The final CNOT (step == size-1) closes the ladder from the
        # highest control.
        control = controls[min(_control_index(step), len(controls) - 1)]
        circuit.append(CXGate(), [control, target])


def uc_rotation_circuit(axis: str, angles, num_controls: int) -> QuantumCircuit:
    """Standalone uniformly-controlled rotation circuit.

    Qubits ``0..num_controls-1`` are the controls, the last qubit is the
    target.
    """
    circuit = QuantumCircuit(num_controls + 1)
    apply_uc_rotation(
        circuit, axis, angles, list(range(num_controls)), num_controls
    )
    return circuit
