"""Multi-controlled X synthesis.

``k``-controlled NOTs are the workhorse of oracle construction (Grover,
arithmetic).  Exact decompositions:

* k = 1, 2: native CX / Toffoli.
* k >= 3 with ``k - 2`` clean ancillas: the linear-cost Toffoli V-chain.
* k >= 3 without ancillas: recursive splitting via one borrowed *dirty*
  qubit (any idle wire), doubling the Toffoli count per level.
"""

from __future__ import annotations

from repro.circuit.library.standard_gates import CCXGate, CXGate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import CircuitError


def mcx_vchain(circuit: QuantumCircuit, controls, target, ancillas) -> None:
    """Append a k-controlled X using ``k - 2`` clean (|0>) ancillas.

    The ancillas are returned to |0>, so they can be reused.
    """
    controls = list(controls)
    ancillas = list(ancillas)
    k = len(controls)
    if k == 0:
        raise CircuitError("need at least one control")
    if k == 1:
        circuit.append(CXGate(), [controls[0], target])
        return
    if k == 2:
        circuit.append(CCXGate(), [controls[0], controls[1], target])
        return
    if len(ancillas) < k - 2:
        raise CircuitError(
            f"V-chain needs {k - 2} ancillas for {k} controls, got "
            f"{len(ancillas)}"
        )
    used = ancillas[: k - 2]
    # Accumulate the AND of all controls into the last ancilla.
    circuit.append(CCXGate(), [controls[0], controls[1], used[0]])
    for i in range(k - 3):
        circuit.append(CCXGate(), [controls[i + 2], used[i], used[i + 1]])
    circuit.append(CCXGate(), [controls[-1], used[-1], target])
    # Uncompute.
    for i in reversed(range(k - 3)):
        circuit.append(CCXGate(), [controls[i + 2], used[i], used[i + 1]])
    circuit.append(CCXGate(), [controls[0], controls[1], used[0]])


def mcx_recursive(circuit: QuantumCircuit, controls, target,
                  borrowed) -> None:
    """Append a k-controlled X using one *dirty* borrowed qubit.

    ``borrowed`` may hold any state; it is restored.  Splits the controls
    into two halves with the borrowed qubit as a relay
    (Barenco et al., Lemma 7.3):

        MCX(C, t) = MCX(C2+b, t) MCX(C1, b) MCX(C2+b, t) MCX(C1, b)

    where each half uses the *other* half's qubits as dirty ancillas via
    the V-chain-with-dirty-ancillas construction; for the sizes used here
    (halving) plain recursion suffices.
    """
    controls = list(controls)
    k = len(controls)
    if k <= 2:
        mcx_vchain(circuit, controls, target, [])
        return
    half = (k + 1) // 2
    first = controls[:half]
    second = controls[half:] + [borrowed]
    # Dirty-ancilla relay: toggling twice cancels any initial ancilla state.
    for _ in range(2):
        _mcx_dirty(circuit, first, borrowed, second[:-1] + [target])
        _mcx_dirty(circuit, second, target, first)


def _mcx_dirty(circuit: QuantumCircuit, controls, target, dirty_pool) -> None:
    """k-controlled X using dirty ancillas from ``dirty_pool``.

    Implements the Toffoli ladder that is self-inverse on the ancillas
    (each ancilla is toggled an even number of times regardless of its
    state).
    """
    controls = list(controls)
    k = len(controls)
    if k <= 2:
        mcx_vchain(circuit, controls, target, [])
        return
    needed = k - 2
    pool = [q for q in dirty_pool if q != target and q not in controls]
    if len(pool) < needed:
        raise CircuitError(
            f"need {needed} dirty ancillas for {k} controls, got {len(pool)}"
        )
    ancillas = pool[:needed]
    # Ladder (Barenco Lemma 7.2): two sweeps make every ancilla toggle even.
    def ladder():
        circuit.append(CCXGate(), [controls[-1], ancillas[-1], target])
        for i in reversed(range(k - 3)):
            circuit.append(
                CCXGate(), [controls[i + 2], ancillas[i], ancillas[i + 1]]
            )
        circuit.append(CCXGate(), [controls[0], controls[1], ancillas[0]])
        for i in range(k - 3):
            circuit.append(
                CCXGate(), [controls[i + 2], ancillas[i], ancillas[i + 1]]
            )

    ladder()
    # Second half-ladder restores the ancillas.
    circuit.append(CCXGate(), [controls[-1], ancillas[-1], target])
    for i in reversed(range(k - 3)):
        circuit.append(
            CCXGate(), [controls[i + 2], ancillas[i], ancillas[i + 1]]
        )
    circuit.append(CCXGate(), [controls[0], controls[1], ancillas[0]])
    for i in range(k - 3):
        circuit.append(
            CCXGate(), [controls[i + 2], ancillas[i], ancillas[i + 1]]
        )


def mcx_circuit(num_controls: int, use_ancillas: bool = True) -> QuantumCircuit:
    """Standalone MCX circuit: controls first, target next, ancillas last."""
    if num_controls < 1:
        raise CircuitError("need at least one control")
    num_ancillas = max(0, num_controls - 2) if use_ancillas else 0
    circuit = QuantumCircuit(num_controls + 1 + num_ancillas)
    controls = list(range(num_controls))
    target = num_controls
    ancillas = list(range(num_controls + 1, num_controls + 1 + num_ancillas))
    mcx_vchain(circuit, controls, target, ancillas)
    return circuit
