"""Arbitrary state preparation (Möttönen et al.).

Prepares any target statevector from |0...0> by running the disentangling
sequence in reverse: for each qubit from the top down, a uniformly-
controlled RZ aligns the phases and a uniformly-controlled RY moves the
magnitudes, so the prepared state matches the target up to global phase.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import CircuitError
from repro.synthesis.multiplexed import apply_uc_rotation


def _disentangling_angles(amplitudes):
    """Angles removing the top qubit of ``amplitudes``.

    Returns ``(ry_angles, rz_angles, reduced)`` where applying
    RY(-ry)/RZ(-rz) multiplexed on the lower qubits maps the state to
    ``reduced ⊗ |0>``.
    """
    half = amplitudes.shape[0] // 2
    low = amplitudes[:half]       # top qubit = 0
    high = amplitudes[half:]      # top qubit = 1
    magnitudes = np.sqrt(np.abs(low) ** 2 + np.abs(high) ** 2)
    ry_angles = np.zeros(half)
    rz_angles = np.zeros(half)
    reduced = np.zeros(half, dtype=complex)
    for x in range(half):
        if magnitudes[x] < 1e-12:
            reduced[x] = 0.0
            continue
        a = low[x]
        b = high[x]
        ry_angles[x] = 2.0 * math.atan2(abs(b), abs(a))
        phase_a = np.angle(a) if abs(a) > 1e-12 else 0.0
        phase_b = np.angle(b) if abs(b) > 1e-12 else 0.0
        rz_angles[x] = phase_b - phase_a
        reduced[x] = magnitudes[x] * np.exp(1j * (phase_a + phase_b) / 2.0)
    return ry_angles, rz_angles, reduced


def prepare_state(target) -> QuantumCircuit:
    """Return a circuit preparing ``target`` from |0...0> (up to phase)."""
    target = np.asarray(target, dtype=complex).ravel()
    dim = target.shape[0]
    num_qubits = int(round(math.log2(dim)))
    if 2**num_qubits != dim:
        raise CircuitError("state dimension must be a power of two")
    norm = np.linalg.norm(target)
    if norm < 1e-12:
        raise CircuitError("cannot prepare the zero vector")
    amplitudes = target / norm

    # Collect the disentangling sequence top-down, then emit it reversed.
    steps = []
    current = amplitudes
    for qubit in reversed(range(num_qubits)):
        ry_angles, rz_angles, current = _disentangling_angles(current)
        steps.append((qubit, ry_angles, rz_angles))

    circuit = QuantumCircuit(num_qubits, name="prepare")
    for qubit, ry_angles, rz_angles in reversed(steps):
        controls = list(range(qubit))
        apply_uc_rotation(circuit, "ry", ry_angles, controls, qubit)
        if np.abs(rz_angles).max() > 1e-12:
            apply_uc_rotation(circuit, "rz", rz_angles, controls, qubit)
    return circuit


def initialize(circuit: QuantumCircuit, target, qubits=None) -> None:
    """Append state preparation for ``target`` onto ``qubits`` of circuit.

    The qubits must be in the |0> state for the result to equal ``target``.
    """
    preparation = prepare_state(target)
    if qubits is None:
        qubits = circuit.qubits[: preparation.num_qubits]
    else:
        qubits = circuit._resolve_qargs(qubits)
    circuit.compose(preparation, qubits=qubits, inplace=True)
