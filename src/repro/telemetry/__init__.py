"""Pipeline telemetry: hierarchical tracing and the unified metrics registry.

The observability layer of the execution pipeline:

* **Tracing** — ``enable_tracing()`` swaps the process-global no-op
  tracer for a recording one; every job submitted afterwards records a
  hierarchical trace (``job`` → ``assemble`` → ``transpile`` →
  per-pass → ``dispatch`` → per-experiment ``run``/``retry`` →
  ``collect``) with deterministic span ids, queryable as
  ``job.trace()``.  Span context propagates across the process-pool
  boundary through the experiment config, so worker spans join the
  parent trace.  Disabled (the default), the instrumentation allocates
  no spans.
* **Metrics** — ``get_metrics_registry()`` returns the always-on
  process-wide registry of labelled counters/gauges/histograms that
  absorbs the legacy ledgers (``fault_stats``,
  ``transpile_cache_stats``, ``dd_table_stats``) and exports as a JSON
  tree or Prometheus text.
* **Exporters** — JSON-lines span streams (:func:`export_jsonl`,
  :class:`JsonlExporter`) and :func:`prometheus_text`.
"""

from repro.telemetry.exporters import (
    JsonlExporter,
    export_jsonl,
    load_jsonl,
    prometheus_text,
)
from repro.telemetry.jobtrace import ExperimentRecorder, JobTrace
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_metrics_registry,
    reset_metrics,
)
from repro.telemetry.span import (
    Span,
    SpanContext,
    SpanStatus,
    derive_span_id,
    derive_trace_id,
)
from repro.telemetry.trace import Trace
from repro.telemetry.tracer import (
    NoOpTracer,
    RecordingTracer,
    TraceStore,
    current_span,
    disable_tracing,
    enable_tracing,
    get_global_tracer,
    get_trace_store,
    get_tracer,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "ExperimentRecorder",
    "Gauge",
    "Histogram",
    "JobTrace",
    "JsonlExporter",
    "MetricError",
    "MetricsRegistry",
    "NoOpTracer",
    "RecordingTracer",
    "Span",
    "SpanContext",
    "SpanStatus",
    "Trace",
    "TraceStore",
    "current_span",
    "derive_span_id",
    "derive_trace_id",
    "disable_tracing",
    "enable_tracing",
    "export_jsonl",
    "get_global_tracer",
    "get_metrics_registry",
    "get_trace_store",
    "get_tracer",
    "load_jsonl",
    "prometheus_text",
    "reset_metrics",
    "tracing_enabled",
]
