"""Spans: the unit of hierarchical tracing.

A :class:`Span` records one timed stage of the execution pipeline — a
job, an assemble step, a transpiler pass, one experiment attempt inside a
process-pool worker — with monotonic duration, wall-clock start (for
cross-process ordering), structured attributes, and an OK/ERROR status.

Span identity is *deterministic*: ids are sha256-derived from the trace
id, the parent span id, the span name, and a sequence number (the child
index under that parent, or an explicit stable index such as the
experiment's position in its batch).  Two runs of the same seeded job
therefore produce byte-identical span ids, and the span tree of a batch
is identical no matter which executor ran it.

Spans serialize losslessly to plain dictionaries (:meth:`Span.to_dict` /
:meth:`Span.from_dict`); that is how worker processes ship their spans
back across the Qobj/result boundary.
"""

from __future__ import annotations

import hashlib
import time


class SpanStatus:
    """String constants for a span's terminal status."""

    OK = "OK"
    ERROR = "ERROR"


def derive_trace_id(key) -> str:
    """Deterministic 16-hex-digit trace id from a stable key (job id)."""
    return hashlib.sha256(f"trace:{key}".encode()).hexdigest()[:16]


def derive_span_id(trace_id: str, parent_id: str, name: str,
                   seq: int) -> str:
    """Deterministic 16-hex-digit span id from the span's tree position."""
    return hashlib.sha256(
        f"span:{trace_id}:{parent_id}:{name}:{seq}".encode()
    ).hexdigest()[:16]


class SpanContext:
    """The serializable identity of a span: ``(trace_id, span_id)``.

    This is what crosses process boundaries — a worker receives its
    parent's context in the experiment config and parents its own spans
    to it, so the whole batch forms one connected trace.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> dict:
        """JSON/pickle-compatible form for config injection."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanContext":
        """Rebuild a context shipped through a config dictionary."""
        return cls(payload["trace_id"], payload["span_id"])

    def __repr__(self):
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One timed, attributed stage of the pipeline.

    Lifecycle: constructed open (``duration`` is None), mutated via
    :meth:`set_attribute` / :meth:`add_event` / :meth:`set_error`, and
    closed exactly once by :meth:`end` (idempotent).  ``start_wall`` is
    wall-clock (comparable across processes on one host); ``duration``
    is measured on the monotonic clock.
    """

    #: Diagnostic tally of Span objects ever constructed in this process.
    #: The no-op tracer must leave it untouched (asserted in tests and in
    #: the telemetry benchmark).
    allocations = 0

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "seq", "attributes",
        "events", "status", "error", "start_wall", "duration", "_start",
    )

    def __init__(self, name: str, trace_id: str, parent_id: str = "",
                 seq: int = 0, attributes=None):
        Span.allocations += 1
        self.name = name
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.seq = int(seq)
        self.span_id = derive_span_id(trace_id, parent_id, name, seq)
        self.attributes = dict(attributes or {})
        self.events: list = []
        self.status = SpanStatus.OK
        self.error = None
        self.start_wall = time.time()
        self.duration = None
        self._start = time.perf_counter()

    @property
    def context(self) -> SpanContext:
        """This span's propagatable identity."""
        return SpanContext(self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        """Whether :meth:`end` has run."""
        return self.duration is not None

    def set_attribute(self, key: str, value) -> None:
        """Attach one structured attribute."""
        self.attributes[key] = value

    def set_attributes(self, attributes: dict) -> None:
        """Attach several structured attributes at once."""
        self.attributes.update(attributes)

    def add_event(self, text: str) -> None:
        """Record a timestamped point event (offset seconds, message)."""
        self.events.append(
            (round(time.perf_counter() - self._start, 9), str(text))
        )

    def set_error(self, error) -> None:
        """Mark the span failed and record the error text."""
        self.status = SpanStatus.ERROR
        self.error = str(error)

    def end(self) -> "Span":
        """Close the span (first call wins); returns self for chaining."""
        if self.duration is None:
            self.duration = time.perf_counter() - self._start
        return self

    def to_dict(self) -> dict:
        """Lossless JSON/pickle-compatible form (ends an open span)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "seq": self.seq,
            "start_wall": self.start_wall,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "events": [list(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a (finished) span shipped from another process."""
        span = cls.__new__(cls)
        Span.allocations += 1
        span.trace_id = payload["trace_id"]
        span.span_id = payload["span_id"]
        span.parent_id = payload.get("parent_id", "")
        span.name = payload["name"]
        span.seq = payload.get("seq", 0)
        span.attributes = dict(payload.get("attributes", {}))
        span.events = [tuple(event) for event in payload.get("events", [])]
        span.status = payload.get("status", SpanStatus.OK)
        span.error = payload.get("error")
        span.start_wall = payload.get("start_wall", 0.0)
        span.duration = payload.get("duration")
        span._start = 0.0
        return span

    def __repr__(self):
        state = (
            f"{self.duration * 1e3:.2f}ms" if self.finished else "open"
        )
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"status={self.status}, {state})"
        )
