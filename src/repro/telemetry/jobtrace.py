"""Job-level telemetry: the pipeline's tracing and metrics glue.

Two classes bridge the generic tracer to the execution pipeline:

* :class:`JobTrace` lives in the submitting process, one per
  :class:`~repro.providers.backend.Job`.  It owns the deterministic root
  ``job`` span (trace id derived from the job id), opens the
  ``assemble`` / ``transpile`` / ``dispatch`` / ``collect`` stage spans,
  hands each experiment a serializable span context for the config
  payload, merges worker-recorded spans back at collect, and — tracing
  enabled or not — publishes the job's fault/retry/cache tallies into
  the process-wide metrics registry exactly once at :meth:`finalize`.

* :class:`ExperimentRecorder` lives wherever the experiment actually
  runs — a process-pool worker, a thread, or the collecting thread
  itself.  Built from the ``span_context`` dictionary in the experiment
  config, it records an ``experiment`` span (sequence number = the
  experiment's batch index, so ids are executor-independent) with one
  ``run``/``retry`` child per attempt, and ships everything back as
  plain dictionaries on ``outcome.spans``.

When tracing is disabled no span context is injected, recorders are
never constructed, and every :class:`JobTrace` method degrades to the
no-op tracer — the disabled pipeline allocates zero spans.
"""

from __future__ import annotations

import os

from repro.exceptions import BackendError
from repro.telemetry.metrics import get_metrics_registry
from repro.telemetry.span import Span, SpanContext, derive_trace_id
from repro.telemetry.trace import Trace
from repro.telemetry.tracer import (
    RecordingTracer,
    TraceStore,
    get_global_tracer,
    pop_ambient_span,
    pop_tracer_override,
    push_ambient_span,
    push_tracer_override,
)

#: Counter families that absorb the legacy ``job.fault_stats`` ledger.
#: Every family is labelled by job id, so per-job views and fleet-wide
#: totals come from the same series.
FAULT_COUNTERS = (
    ("repro_job_experiments_total", "Experiments collected per job"),
    ("repro_job_attempts_total", "Experiment attempts (retries included)"),
    ("repro_job_retries_total", "Experiment re-runs after transient faults"),
    ("repro_job_faults_injected_total", "Faults injected by chaos testing"),
    ("repro_job_fallbacks_total", "Executor degradations taken"),
    ("repro_job_failures_total", "Experiments that exhausted retries"),
    ("repro_job_backoff_seconds_total", "Seconds slept in retry backoff"),
    ("repro_job_chunks_total", "Shot-chunks planned per job"),
    ("repro_job_chunks_completed_total", "Shot-chunks that finished"),
    ("repro_job_chunks_resumed_total",
     "Shot-chunks restored from a checkpoint ledger"),
)


class JobTrace:
    """Per-job telemetry hub: root span, stage spans, metrics publication.

    Constructed at submission (``execute`` builds one before transpiling
    so compile spans join the trace; ``BaseBackend.run`` builds one
    otherwise).  The tracer is captured at construction, so a job keeps
    recording into the store that was active when it was submitted even
    if tracing is toggled afterwards.
    """

    def __init__(self, job_id: str, backend_name: str = "", tracer=None):
        self.tracer = get_global_tracer() if tracer is None else tracer
        self.enabled = self.tracer.enabled
        self.job_id = job_id
        self.trace_id = derive_trace_id(job_id)
        self.backend_name = backend_name
        self.finalized = False
        self.root = None
        self._dispatch_span = None
        self._fallbacks: list = []
        self._failed: list = []
        self._per_experiment: dict = {}
        if self.enabled:
            self.root = Span(
                "job", self.trace_id, "", 0,
                {"job_id": job_id, "backend": backend_name},
            )

    def stage(self, name: str, attributes=None):
        """Context manager for a pipeline stage span under the job root.

        Stage spans (``assemble``, ``transpile``, ``collect``) become the
        ambient span on this thread while open, so nested layers — the
        pass manager, the broadcast engine — attach without plumbing.
        """
        return self.tracer.span(name, parent=self.root,
                                attributes=attributes)

    def dispatch_started(self, kind: str, experiments: int):
        """Open the ``dispatch`` span (ends at :meth:`finalize`)."""
        self._dispatch_span = self.tracer.start_span(
            "dispatch", parent=self.root, seq=0,
            attributes={"executor": kind, "experiments": experiments},
        )
        return self._dispatch_span

    def set_executor(self, kind: str) -> None:
        """Record the executor kind that actually ran (degradations and
        the silent processes→threads flip for spec-less backends)."""
        if self._dispatch_span is not None:
            self._dispatch_span.set_attribute("executor", kind)

    def experiment_context(self, index: int, name: str, chunk=None,
                           chunks: int = 1, seq=None):
        """The serializable span context for experiment ``index``.

        Injected into the experiment config as ``span_context`` so the
        worker-side :class:`ExperimentRecorder` parents its spans to this
        job's ``dispatch`` span.  None when tracing is disabled — the
        config then carries no telemetry at all.  For a shot-chunk
        payload, ``chunk``/``chunks`` describe the unit and ``seq`` (the
        payload's batch position) keeps the deterministic span ids unique
        across the chunks of one experiment.
        """
        if not self.enabled or self._dispatch_span is None:
            return None
        context = {
            "trace_id": self.trace_id,
            "span_id": self._dispatch_span.span_id,
            "experiment_index": int(index),
            "experiment_name": name,
        }
        if chunk is not None:
            context["chunk_index"] = int(chunk)
            context["total_chunks"] = int(chunks)
            context["payload_seq"] = int(index if seq is None else seq)
        return context

    def record_fallback(self, transition: str) -> None:
        """Record one executor degradation as an ERROR child span."""
        self._fallbacks.append(transition)
        if not self.enabled:
            return
        span = self.tracer.start_span(
            "fallback", parent=self._dispatch_span or self.root,
            attributes={"transition": transition},
        )
        span.set_error(f"executor degraded: {transition}")
        self.tracer.end_span(span)

    def merge_outcomes(self, outcomes) -> None:
        """Absorb worker-recorded spans shipped on ``outcome.spans``.

        Idempotent: spans are keyed by their deterministic ids, so
        repeated partial collects never duplicate.
        """
        if not self.enabled:
            return
        store = self.tracer.store
        for outcome in outcomes:
            for payload in getattr(outcome, "spans", ()) or ():
                store.add_dict(payload)

    def finalize(self, outcomes, fallbacks=()) -> None:
        """Close the trace and publish the job's metrics (exactly once).

        Runs regardless of tracing state: the metrics registry is always
        on.  Publishes the fault/retry counters (the registry-backed
        ``job.fault_stats`` view reads them back), per-experiment DD
        unique-table gauges when present, and ends the ``dispatch`` and
        root ``job`` spans.
        """
        if self.finalized:
            return
        self.finalized = True
        from repro.providers.retry import aggregate_fault_stats

        stats = aggregate_fault_stats(outcomes, fallbacks)
        self._fallbacks = list(stats["fallbacks"])
        self._failed = list(stats["failed_experiments"])
        self._per_experiment = {
            name: dict(entry)
            for name, entry in stats["per_experiment"].items()
        }
        registry = get_metrics_registry()
        labels = {"job": self.job_id}
        values = {
            "repro_job_experiments_total": stats["experiments"],
            "repro_job_attempts_total": stats["attempts"],
            "repro_job_retries_total": stats["retries"],
            "repro_job_faults_injected_total": stats["faults_injected"],
            "repro_job_fallbacks_total": len(stats["fallbacks"]),
            "repro_job_failures_total": len(stats["failed_experiments"]),
            "repro_job_backoff_seconds_total": stats["backoff_total_s"],
            "repro_job_chunks_total": stats["total_chunks"],
            "repro_job_chunks_completed_total": stats["completed_chunks"],
            "repro_job_chunks_resumed_total": stats["resumed_chunks"],
        }
        for name, help_text in FAULT_COUNTERS:
            registry.counter(name, help_text, labelnames=("job",)).inc(
                values[name], labels=labels
            )
        dd_gauge = registry.gauge(
            "repro_dd_table_stats",
            "DD unique-table statistics per experiment",
            labelnames=("job", "experiment", "stat"),
        )
        for outcome in outcomes:
            data = outcome.data if isinstance(outcome.data, dict) else {}
            table = data.get("dd_table_stats")
            if not isinstance(table, dict):
                continue
            for stat, value in table.items():
                if isinstance(value, (int, float)):
                    dd_gauge.set(value, labels={
                        "job": self.job_id,
                        "experiment": outcome.circuit_name,
                        "stat": stat,
                    })
        if self.enabled:
            if self._dispatch_span is not None:
                self._dispatch_span.set_attribute(
                    "fallbacks", list(self._fallbacks)
                )
                self.tracer.end_span(self._dispatch_span)
            self.root.set_attributes({
                "experiments": stats["experiments"],
                "attempts": stats["attempts"],
                "retries": stats["retries"],
            })
            if self._failed:
                self.root.set_error(
                    f"{len(self._failed)} experiment(s) failed: "
                    f"{', '.join(self._failed)}"
                )
            self.tracer.end_span(self.root)

    def fault_stats_view(self) -> dict:
        """The legacy ``fault_stats`` dictionary, read from the registry.

        Numeric totals come from the job-labelled counter families
        published at :meth:`finalize`; the list/detail fields
        (``fallbacks``, ``failed_experiments``, ``per_experiment``) come
        from the finalize-time snapshot.
        """
        registry = get_metrics_registry()
        labels = {"job": self.job_id}

        def value(name):
            family = registry.get(name)
            return family.value(labels) if family is not None else 0

        return {
            "experiments": int(value("repro_job_experiments_total")),
            "attempts": int(value("repro_job_attempts_total")),
            "retries": int(value("repro_job_retries_total")),
            "backoff_total_s": round(
                value("repro_job_backoff_seconds_total"), 6
            ),
            "faults_injected": int(
                value("repro_job_faults_injected_total")
            ),
            "fallbacks": list(self._fallbacks),
            "failed_experiments": list(self._failed),
            "per_experiment": {
                name: dict(entry)
                for name, entry in self._per_experiment.items()
            },
            "total_chunks": int(value("repro_job_chunks_total")),
            "completed_chunks": int(
                value("repro_job_chunks_completed_total")
            ),
            "resumed_chunks": int(
                value("repro_job_chunks_resumed_total")
            ),
        }

    def trace(self) -> Trace:
        """The job's :class:`~repro.telemetry.trace.Trace` as recorded so
        far (complete once the job's result has been collected).

        Raises :class:`BackendError` when tracing was disabled at
        submission — there is nothing to query.
        """
        if not self.enabled:
            raise BackendError(
                "tracing is disabled; call "
                "repro.telemetry.enable_tracing() before submitting the "
                "job to record its trace"
            )
        spans = list(self.tracer.store.spans(self.trace_id))
        have = {span.span_id for span in spans}
        for span in (self.root, self._dispatch_span):
            if isinstance(span, Span) and span.span_id not in have:
                spans.append(span)
        return Trace(self.trace_id, spans)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"JobTrace({self.job_id}, {state})"


class ExperimentRecorder:
    """Worker-side span recording for one experiment.

    Built inside ``run_assembled_experiment`` from the ``span_context``
    dictionary the submitting process injected into the experiment
    config.  Records into its own local tracer/store (installed as this
    thread's tracer override, so engine-level instrumentation lands
    here), and :meth:`finish` returns every recorded span as a plain
    dictionary — picklable cargo for ``outcome.spans``.
    """

    def __init__(self, payload: dict):
        self.tracer = RecordingTracer(store=TraceStore())
        parent = SpanContext(payload["trace_id"], payload["span_id"])
        index = int(payload.get("experiment_index", 0))
        attributes = {
            "experiment": payload.get("experiment_name", ""),
            "index": index,
            "pid": os.getpid(),
        }
        chunk = payload.get("chunk_index")
        if chunk is not None:
            # One span per shot-chunk: the span name changes and the seq
            # is the payload's batch position, so the deterministic ids
            # of sibling chunks (same experiment index) never collide.
            attributes["chunk"] = int(chunk)
            attributes["total_chunks"] = int(
                payload.get("total_chunks", 1)
            )
            name, seq = "chunk", int(payload.get("payload_seq", index))
        else:
            name, seq = "experiment", index
        self.span = self.tracer.start_span(
            name, parent=parent, seq=seq, attributes=attributes,
        )
        push_tracer_override(self.tracer)
        push_ambient_span(self.span)

    def start_attempt(self, attempt: int) -> Span:
        """Open the span for attempt ``attempt`` (``run`` then ``retry``)."""
        span = self.tracer.start_span(
            "run" if attempt == 0 else "retry",
            parent=self.span, seq=attempt,
            attributes={"attempt": attempt},
        )
        push_ambient_span(span)
        return span

    def end_attempt(self, span: Span, error=None) -> None:
        """Close an attempt span, marking it ERROR when the attempt raised."""
        pop_ambient_span(span)
        if error is not None:
            span.set_error(f"{type(error).__name__}: {error}")
        self.tracer.end_span(span)

    def record_backoff(self, wait: float) -> None:
        """Note a retry backoff sleep on the experiment span."""
        self.span.add_event(f"retry backoff {wait:.4f}s")

    def finish(self, outcome) -> list:
        """Close the experiment span and return all spans as dictionaries."""
        pop_ambient_span(self.span)
        pop_tracer_override()
        self.span.set_attributes({
            "status": outcome.status,
            "attempts": getattr(outcome, "attempts", 1),
            "shots": outcome.shots,
        })
        if not outcome.success and outcome.error:
            self.span.set_error(outcome.error)
        self.tracer.end_span(self.span)
        return [span.to_dict() for span in self.tracer.store.all_spans()]
