"""Exporters: JSON-lines span streams and Prometheus text dumps.

Two render targets for the telemetry layer's data:

* :class:`JsonlExporter` / :func:`export_jsonl` — one JSON object per
  finished span, suitable for streaming to a file as spans close (hook
  it into :func:`~repro.telemetry.tracer.enable_tracing` via
  ``exporter=``) or for dumping a finished trace after the fact.
* :func:`prometheus_text` — the process-wide metrics registry in
  Prometheus text exposition format.
"""

from __future__ import annotations

import json
import threading


class JsonlExporter:
    """Streams span dictionaries to a JSON-lines file as spans finish.

    Instances are callable with a span dictionary, matching the
    ``exporter`` hook of :class:`~repro.telemetry.tracer.RecordingTracer`.
    """

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "w", encoding="utf-8")

    def __call__(self, span_dict: dict) -> None:
        """Append one span dictionary as a JSON line."""
        line = json.dumps(span_dict, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def span_sort_key(span) -> tuple:
    """Deterministic ordering for exported spans (tree-ish, stable)."""
    return (span.start_wall, span.seq, span.name, span.span_id)


def export_jsonl(spans, path=None) -> str:
    """Serialize ``spans`` (an iterable, or a Trace) as JSON lines.

    Returns the JSON-lines text; also writes it to ``path`` when given.
    Spans are sorted deterministically so repeated exports of the same
    seeded trace differ only in timing fields.
    """
    span_list = sorted(spans, key=span_sort_key)
    text = "\n".join(
        json.dumps(span.to_dict(), sort_keys=True, default=str)
        for span in span_list
    )
    if text:
        text += "\n"
    if path is not None:
        with open(str(path), "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def load_jsonl(path) -> list:
    """Parse a JSON-lines span file back into span dictionaries."""
    with open(str(path), encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def prometheus_text(registry=None) -> str:
    """The metrics registry in Prometheus text exposition format.

    Defaults to the process-wide registry from
    :func:`~repro.telemetry.metrics.get_metrics_registry`.
    """
    from repro.telemetry.metrics import get_metrics_registry

    if registry is None:
        registry = get_metrics_registry()
    return registry.to_prometheus()
