"""Trace: a queryable tree view over one trace's finished spans.

A :class:`Trace` wraps the flat span list a :class:`TraceStore` holds
for one trace id and exposes tree navigation (roots, children, DFS),
lookup by name, and rendering hooks.  Children are ordered by their
deterministic sequence number first and wall-clock start second, so the
printed tree of a seeded job is stable across runs and executors.
"""

from __future__ import annotations


class Trace:
    """All spans of one trace, navigable as a tree."""

    def __init__(self, trace_id: str, spans):
        self.trace_id = trace_id
        self._spans = {span.span_id: span for span in spans}
        self._children: dict = {}
        for span in self._spans.values():
            self._children.setdefault(span.parent_id, []).append(span)
        for siblings in self._children.values():
            siblings.sort(key=lambda s: (s.seq, s.start_wall, s.name))

    def __len__(self):
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans.values())

    @property
    def spans(self) -> list:
        """Every span in the trace (unordered)."""
        return list(self._spans.values())

    def get(self, span_id: str):
        """The span with ``span_id``, or None."""
        return self._spans.get(span_id)

    def roots(self) -> list:
        """Spans whose parent is absent from the trace (usually one)."""
        return sorted(
            (
                span for span in self._spans.values()
                if span.parent_id not in self._spans
            ),
            key=lambda s: (s.seq, s.start_wall, s.name),
        )

    @property
    def root(self):
        """The first root span, or None for an empty trace."""
        roots = self.roots()
        return roots[0] if roots else None

    def children(self, span) -> list:
        """Direct children of ``span`` (or of a span id), ordered."""
        span_id = span if isinstance(span, str) else span.span_id
        return list(self._children.get(span_id, ()))

    def walk(self):
        """Yield ``(depth, span)`` pairs in depth-first tree order."""
        stack = [(0, root) for root in reversed(self.roots())]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(self.children(span)):
                stack.append((depth + 1, child))

    def span_tree(self) -> list:
        """``[(depth, span), ...]`` — :meth:`walk` materialized."""
        return list(self.walk())

    def find(self, name: str) -> list:
        """Every span named ``name``, in tree order."""
        return [span for _, span in self.walk() if span.name == name]

    def find_one(self, name: str):
        """The first span named ``name``, or None."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    @property
    def duration(self):
        """The root span's duration in seconds (None if unfinished)."""
        root = self.root
        return root.duration if root is not None else None

    def errors(self) -> list:
        """Every ERROR-status span, in tree order."""
        return [span for _, span in self.walk() if span.status == "ERROR"]

    def shape(self) -> list:
        """``[(depth, name, seq), ...]`` — the tree stripped of timings.

        Two runs of the same seeded batch produce equal shapes no matter
        which executor ran them; tests compare this.
        """
        return [(depth, span.name, span.seq) for depth, span in self.walk()]

    def render(self, width: int = 80) -> str:
        """ASCII timeline of the trace (see ``visualization.timeline``)."""
        from repro.visualization.timeline import trace_timeline

        return trace_timeline(self, width=width)

    def render_svg(self) -> str:
        """SVG timeline of the trace (see ``visualization.timeline``)."""
        from repro.visualization.timeline import trace_timeline_svg

        return trace_timeline_svg(self)

    def __repr__(self):
        root = self.root
        head = root.name if root is not None else "<empty>"
        return (
            f"Trace({self.trace_id}, root={head!r}, "
            f"spans={len(self._spans)})"
        )
