"""Tracers: no-op by default, recording when enabled.

The pipeline is instrumented unconditionally, but against an interface
whose default implementation does nothing: :func:`get_tracer` returns the
singleton :class:`NoOpTracer` until :func:`enable_tracing` installs a
:class:`RecordingTracer`.  The no-op path allocates no spans and no
per-call objects (``tracer.span(...)`` hands back one reusable context
manager), so disabled tracing costs one attribute lookup and one method
call per instrumented stage — asserted under 3% end-to-end overhead in
``benchmarks/bench_telemetry.py``.

Parentage is ambient within a thread: ``tracer.span(name)`` nests under
whatever span is currently open on this thread's stack, so deeply nested
layers (pass manager, broadcast engine) need no plumbing.  Crossing an
executor boundary is explicit instead: the submitting side serializes a
:class:`~repro.telemetry.span.SpanContext` into the experiment config,
and the worker side records into a thread-local tracer override (see
:func:`push_tracer_override`) whose spans ride back on the result.
"""

from __future__ import annotations

import itertools
import os
import threading

from repro.telemetry.span import Span, SpanContext, derive_trace_id

_tls = threading.local()


def _ambient_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_span():
    """The innermost open span on this thread, or None."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class TraceStore:
    """In-memory store of finished spans, grouped by trace id."""

    def __init__(self):
        self._lock = threading.Lock()
        self._traces: dict = {}

    def add(self, span: Span) -> None:
        """Insert or replace one span (idempotent on span id)."""
        with self._lock:
            self._traces.setdefault(span.trace_id, {})[span.span_id] = span

    def add_dict(self, payload: dict) -> Span:
        """Insert a span shipped as a dictionary from another process."""
        span = Span.from_dict(payload)
        self.add(span)
        return span

    def spans(self, trace_id: str) -> list:
        """Every stored span of one trace (insertion order)."""
        with self._lock:
            return list(self._traces.get(trace_id, {}).values())

    def trace_ids(self) -> list:
        """The trace ids currently held."""
        with self._lock:
            return list(self._traces)

    def all_spans(self) -> list:
        """Every stored span across all traces."""
        with self._lock:
            return [
                span
                for spans in self._traces.values()
                for span in spans.values()
            ]

    def clear(self) -> None:
        """Drop every stored trace."""
        with self._lock:
            self._traces.clear()


class _NoOpSpan:
    """The inert span: every mutator is a no-op; falsy for guards."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = ""
    name = ""
    status = "OK"
    error = None
    duration = None
    attributes: dict = {}
    context = None
    finished = False

    def __bool__(self):
        return False

    def set_attribute(self, key, value):
        """No-op."""

    def set_attributes(self, attributes):
        """No-op."""

    def add_event(self, text):
        """No-op."""

    def set_error(self, error):
        """No-op."""

    def end(self):
        """No-op; returns self."""
        return self


NOOP_SPAN = _NoOpSpan()


class _NoOpSpanManager:
    """Reusable, stateless context manager yielding the no-op span."""

    __slots__ = ()

    def __enter__(self):
        return NOOP_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_MANAGER = _NoOpSpanManager()


class NoOpTracer:
    """The disabled tracer: no spans, no allocations, no bookkeeping."""

    enabled = False
    store = None

    def span(self, name, parent=None, trace_id=None, seq=None,
             attributes=None):
        """A reusable no-op context manager."""
        return _NOOP_MANAGER

    def start_span(self, name, parent=None, trace_id=None, seq=None,
                   attributes=None):
        """The singleton no-op span."""
        return NOOP_SPAN

    def end_span(self, span):
        """No-op."""


class _SpanManager:
    """Context manager that opens/closes one recorded span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        _ambient_stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        stack = _ambient_stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        if exc is not None:
            self._span.set_error(f"{exc_type.__name__}: {exc}")
        self._tracer.end_span(self._span)
        return False


class RecordingTracer:
    """Records spans into a :class:`TraceStore`.

    * ``registry`` — a :class:`~repro.telemetry.metrics.MetricsRegistry`
      that receives a ``repro_stage_seconds{stage=<span name>}``
      histogram observation per finished span.
    * ``exporter`` — a callable invoked with each finished span's
      dictionary (e.g. :class:`~repro.telemetry.exporters.JsonlExporter`)
      for streaming event export.

    Span ids are deterministic: each parent keeps a per-(parent, name)
    child counter, and callers with a naturally stable index (the
    experiment's batch position, the retry attempt number) pass ``seq``
    explicitly so concurrency cannot reorder identities.
    """

    enabled = True

    def __init__(self, store=None, registry=None, exporter=None):
        self.store = store if store is not None else TraceStore()
        self.registry = registry
        self.exporter = exporter
        self._lock = threading.Lock()
        self._child_seq: dict = {}
        self._root_counter = itertools.count()

    def _next_seq(self, trace_id, parent_id, name) -> int:
        key = (trace_id, parent_id, name)
        with self._lock:
            seq = self._child_seq.get(key, 0)
            self._child_seq[key] = seq + 1
        return seq

    def start_span(self, name, parent=None, trace_id=None, seq=None,
                   attributes=None) -> Span:
        """Open a span; the caller must close it via :meth:`end_span`.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`, or
        None — in which case the innermost ambient span on this thread
        is the parent, and failing that the span roots a fresh trace.
        """
        if parent is None:
            parent = current_span()
        if parent is not None and not isinstance(
            parent, (Span, SpanContext, _NoOpSpan)
        ):
            raise TypeError(
                f"parent must be a Span or SpanContext, got "
                f"{type(parent).__name__}"
            )
        if isinstance(parent, _NoOpSpan):
            parent = None
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            parent_id = ""
            if trace_id is None:
                trace_id = derive_trace_id(
                    f"anonymous-{os.getpid()}-{next(self._root_counter)}"
                )
        if seq is None:
            seq = self._next_seq(trace_id, parent_id, name)
        return Span(name, trace_id, parent_id, seq, attributes)

    def span(self, name, parent=None, trace_id=None, seq=None,
             attributes=None) -> _SpanManager:
        """Context manager: opens a span, makes it ambient, closes it.

        An exception propagating out marks the span ERROR (and re-raises).
        """
        return _SpanManager(
            self, self.start_span(name, parent, trace_id, seq, attributes)
        )

    def end_span(self, span: Span) -> None:
        """Close and record a span (stores, exports, observes metrics)."""
        if not isinstance(span, Span):
            return
        span.end()
        self.store.add(span)
        if self.registry is not None:
            self.registry.histogram(
                "repro_stage_seconds",
                "Wall time per traced pipeline stage",
                labelnames=("stage",),
            ).observe(span.duration, labels={"stage": span.name})
        if self.exporter is not None:
            self.exporter(span.to_dict())


#: The process-global tracer; NoOp until ``enable_tracing``.
_GLOBAL: list = [NoOpTracer()]


def get_tracer():
    """The active tracer: a thread-local override if installed (worker
    recording), otherwise the process-global tracer."""
    override = getattr(_tls, "override", None)
    if override is not None:
        return override
    return _GLOBAL[0]


def get_global_tracer():
    """The process-global tracer, ignoring thread-local overrides."""
    return _GLOBAL[0]


def enable_tracing(store=None, registry=None, exporter=None
                   ) -> RecordingTracer:
    """Install (and return) a process-global :class:`RecordingTracer`.

    ``registry`` defaults to the process-wide metrics registry, so
    per-stage wall-time histograms accumulate automatically.  Passing an
    ``exporter`` callable streams every finished span's dictionary to it.
    """
    from repro.telemetry.metrics import get_metrics_registry

    tracer = RecordingTracer(
        store=store,
        registry=get_metrics_registry() if registry is None else registry,
        exporter=exporter,
    )
    _GLOBAL[0] = tracer
    return tracer


def disable_tracing() -> None:
    """Restore the no-op tracer (recorded traces are discarded)."""
    _GLOBAL[0] = NoOpTracer()


def tracing_enabled() -> bool:
    """Whether the process-global tracer records spans."""
    return _GLOBAL[0].enabled


def get_trace_store():
    """The global tracer's :class:`TraceStore`, or None when disabled."""
    return _GLOBAL[0].store


def push_ambient_span(span) -> None:
    """Make ``span`` the innermost ambient span on this thread."""
    _ambient_stack().append(span)


def pop_ambient_span(span) -> None:
    """Remove ``span`` from the top of this thread's ambient stack."""
    stack = _ambient_stack()
    if stack and stack[-1] is span:
        stack.pop()


def push_tracer_override(tracer) -> None:
    """Route this thread's :func:`get_tracer` to ``tracer`` (worker use)."""
    _tls.override = tracer


def pop_tracer_override() -> None:
    """Remove this thread's tracer override."""
    _tls.override = None


if os.environ.get("REPRO_TRACE", "").strip() in ("1", "true", "on"):
    enable_tracing()
