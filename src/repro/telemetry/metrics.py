"""The unified metrics registry: counters, gauges, histograms with labels.

One process-wide :class:`MetricsRegistry` absorbs the pipeline's
previously scattered ledgers — the transpile-cache hit/miss counters,
the DD unique-table statistics, the per-job fault/retry tallies — and
re-exposes them behind a single API with two export surfaces:
:meth:`MetricsRegistry.snapshot` (a JSON-compatible tree) and
:meth:`MetricsRegistry.to_prometheus` (Prometheus text exposition).

Metric families are created idempotently by name::

    registry = get_metrics_registry()
    hits = registry.counter("repro_transpile_cache_hits_total",
                            "Transpile cache hits")
    hits.inc()
    seconds = registry.histogram("repro_stage_seconds",
                                 "Stage wall time", labelnames=("stage",))
    seconds.observe(0.012, labels={"stage": "assemble"})

Labels are passed as plain dictionaries (several label names — ``pass``,
for one — are Python keywords).  Metrics are always on: recording a
value is a dictionary update, no tracing required.
"""

from __future__ import annotations

import threading

from repro.exceptions import ReproError

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, float("inf"),
)


class MetricError(ReproError):
    """Raised on metric misuse (label mismatch, kind collision)."""


def _label_key(labelnames, labels):
    labels = labels or {}
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared behaviour of one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames=()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: dict = {}

    def _key(self, labels):
        return _label_key(self.labelnames, labels)

    def series(self) -> dict:
        """``{label_tuple: value}`` snapshot of every labelled series."""
        with self._lock:
            return dict(self._series)

    def reset(self) -> None:
        """Drop every recorded series (the family object stays usable)."""
        with self._lock:
            self._series.clear()

    def _labels_dict(self, key) -> dict:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """A monotonically increasing tally, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1, labels=None) -> None:
        """Add ``amount`` (must be non-negative) to one series."""
        if amount < 0:
            raise MetricError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, labels=None) -> float:
        """Current value of one series (0 if never incremented)."""
        return self._series.get(self._key(labels), 0)

    def total(self, match=None) -> float:
        """Sum across series whose labels include every ``match`` pair."""
        match = match or {}
        positions = [
            (self.labelnames.index(name), str(value))
            for name, value in match.items()
        ]
        with self._lock:
            return sum(
                value for key, value in self._series.items()
                if all(key[pos] == want for pos, want in positions)
            )


class Gauge(_Metric):
    """A value that can go up and down (occupancies, capacities)."""

    kind = "gauge"

    def set(self, value: float, labels=None) -> None:
        """Set one series to ``value``."""
        with self._lock:
            self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, labels=None) -> None:
        """Add ``amount`` (may be negative) to one series."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, labels=None) -> float:
        """Current value of one series (0 if never set)."""
        return self._series.get(self._key(labels), 0)


class Histogram(_Metric):
    """A distribution: bucketed counts plus sum/count/min/max."""

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(),
                 buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)

    def observe(self, value: float, labels=None) -> None:
        """Record one observation into one series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "count": 0, "sum": 0.0,
                    "min": float("inf"), "max": float("-inf"),
                    "buckets": [0] * len(self.buckets),
                }
                self._series[key] = series
            series["count"] += 1
            series["sum"] += value
            series["min"] = min(series["min"], value)
            series["max"] = max(series["max"], value)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series["buckets"][index] += 1
                    break

    def snapshot(self, labels=None) -> dict:
        """Count/sum/min/max and per-bucket counts for one series."""
        series = self._series.get(self._key(labels))
        if series is None:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "buckets": {}}
        return {
            "count": series["count"],
            "sum": series["sum"],
            "min": series["min"],
            "max": series["max"],
            "buckets": {
                ("+Inf" if bound == float("inf") else repr(bound)): count
                for bound, count in zip(self.buckets, series["buckets"])
            },
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metric families with unified export."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise MetricError(
                        f"metric '{name}' already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help="", labelnames=()) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(),
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram` family."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name):
        """The registered family named ``name``, or None."""
        return self._metrics.get(name)

    def families(self) -> list:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every series; family objects stay registered and usable."""
        for family in self.families():
            family.reset()

    def snapshot(self) -> dict:
        """A JSON-compatible tree of every family and series."""
        tree: dict = {}
        for family in self.families():
            series = []
            if family.kind == "histogram":
                for key in sorted(family.series()):
                    entry = family.snapshot(family._labels_dict(key))
                    entry["labels"] = family._labels_dict(key)
                    series.append(entry)
            else:
                for key, value in sorted(family.series().items()):
                    series.append(
                        {"labels": family._labels_dict(key), "value": value}
                    )
            tree[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return tree

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every family."""
        lines = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.kind == "histogram":
                for key, series in sorted(family.series().items()):
                    labels = family._labels_dict(key)
                    cumulative = 0
                    for bound, count in zip(
                        family.buckets, series["buckets"]
                    ):
                        cumulative += count
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_format_labels({**labels, 'le': le})} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(labels)} "
                        f"{_format_value(series['sum'])}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(labels)} "
                        f"{series['count']}"
                    )
            else:
                for key, value in sorted(family.series().items()):
                    labels = family._labels_dict(key)
                    lines.append(
                        f"{family.name}{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def _escape(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"")


def _format_value(value) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


#: The process-wide registry every pipeline layer publishes into.
_REGISTRY = MetricsRegistry()


def get_metrics_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY


def reset_metrics() -> None:
    """Zero every series in the process-wide registry (tests, benches)."""
    _REGISTRY.reset()
