"""The primitive job: a provider job plus pub-level result collation."""

from __future__ import annotations

from repro.exceptions import BackendError
from repro.providers.executor import JobStatus


class PrimitiveJob:
    """Wraps a provider :class:`~repro.providers.backend.Job`.

    ``result()`` collects the underlying experiment outcomes and regroups
    them into one :class:`~repro.primitives.containers.PubResult` per
    submitted pub (merging memory-cap chunks back along the batch axis).

    The synchronous fallback paths (unsupported templates run per
    binding in-process) construct the job with ``job=None`` and a
    collate thunk that does the work at first ``result()`` call.
    """

    def __init__(self, job, collate):
        self._job = job
        self._collate = collate
        self._result = None

    def result(self, timeout=None):
        """Block for and return the :class:`PrimitiveResult`."""
        if self._result is None:
            provider_result = (
                None if self._job is None
                else self._job.result(timeout=timeout)
            )
            self._result = self._collate(provider_result)
        return self._result

    def stream(self):
        """Yield the provider job's incremental events (see ``Job.stream``).

        Each memory-cap chunk of the pub batch surfaces as its own
        experiment event the moment its worker finishes; call
        :meth:`result` afterwards for the collated pub-level view.
        Synchronous fallback jobs yield nothing — their work happens at
        ``result()``.
        """
        if self._job is None:
            return
        yield from self._job.stream()

    def status(self) -> str:
        """Provider job status (synchronous jobs report DONE once run)."""
        if self._job is None:
            return (
                JobStatus.DONE if self._result is not None
                else JobStatus.INITIALIZING
            )
        return self._job.status()

    def cancel(self) -> bool:
        """Cancel the underlying job if it has not started."""
        if self._job is None:
            return False
        return self._job.cancel()

    @property
    def provider_job(self):
        """The wrapped provider job (None on synchronous fallback)."""
        return self._job

    @property
    def fault_stats(self) -> dict:
        """The provider job's fault/retry ledger."""
        if self._job is None:
            return {}
        return self._job.fault_stats

    def trace(self):
        """The provider job's telemetry trace (see ``Job.trace``).

        Raises :class:`~repro.exceptions.BackendError` on synchronous
        fallback jobs, which never touch the provider pipeline.
        """
        if self._job is None:
            raise BackendError(
                "synchronous primitive jobs record no trace"
            )
        return self._job.trace()

    def __repr__(self):
        inner = "sync" if self._job is None else repr(self._job)
        return f"PrimitiveJob({inner})"


def raise_on_error(result) -> None:
    """Surface the first failed experiment of a provider result."""
    if result.success:
        return
    for outcome in result.results:
        if outcome.status == JobStatus.ERROR:
            raise BackendError(
                f"primitive experiment '{outcome.circuit_name}' failed: "
                f"{outcome.error}"
            )
    raise BackendError("primitive job failed")
