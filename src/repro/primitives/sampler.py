"""SamplerV2: batched shot sampling over parameter-broadcast pubs."""

from __future__ import annotations

from repro.exceptions import AlgorithmError
from repro.primitives.containers import (
    DataBin,
    PrimitiveResult,
    PubResult,
    SamplerPub,
)
from repro.primitives.job import PrimitiveJob, raise_on_error
from repro.simulators.batched import (
    broadcast_chunk_bounds,
    broadcast_supported,
)


class SamplerV2:
    """Samples measurement counts for every binding of every pub.

    One pub — ``(circuit, parameter_values[, parameters])`` — runs its
    whole batch axis as a single broadcast experiment: the template is
    transpiled/serialized once, binding-independent gates apply to all
    statevectors in one vectorized pass, and each binding is sampled with
    its own derived seed.  Counts are bit-identical to running the
    equivalent list of bound circuits through ``backend.run`` with the
    same batch seed, on any executor.

    Templates the broadcast engine cannot take (conditionals, resets,
    mid-circuit measurement) fall back to exactly that bound-circuit
    loop, transparently and with the same seed layout.
    """

    def __init__(self, backend=None, *, default_shots: int = 1024,
                 seed=None):
        if backend is None:
            from repro.providers.aer import Aer

            backend = Aer.get_backend("qasm_simulator")
        self._backend = backend
        self._default_shots = int(default_shots)
        self._seed = seed

    @property
    def backend(self):
        """The provider backend running the pubs."""
        return self._backend

    def run(self, pubs, *, shots=None, seed=None, **options) -> PrimitiveJob:
        """Submit pubs; returns a :class:`PrimitiveJob`.

        ``options`` (``executor``, ``max_workers``, ``retry_policy``,
        ``fault_injector``, ...) forward to the provider layer.
        """
        coerced = [SamplerPub.coerce(pub) for pub in pubs]
        if not coerced:
            raise AlgorithmError("no pubs to sample")
        shots = self._default_shots if shots is None else int(shots)
        if shots < 1:
            raise AlgorithmError("shots must be positive")
        seed = self._seed if seed is None else seed
        if all(broadcast_supported(pub.circuit) for pub in coerced):
            return self._run_broadcast(coerced, shots, seed, options)
        return self._run_loop(coerced, shots, seed, options)

    def _metadata(self, seed):
        return {"backend": self._backend.name(), "seed": seed}

    def _run_broadcast(self, pubs, shots, seed, options) -> PrimitiveJob:
        chunk_counts = [
            len(broadcast_chunk_bounds(pub.batch_size,
                                       pub.circuit.num_qubits))
            for pub in pubs
        ]
        job = self._backend.run_pubs(
            [
                (pub.circuit, pub.parameter_values, pub.parameters)
                for pub in pubs
            ],
            shots=shots, seed=seed, **options,
        )

        def collate(result):
            raise_on_error(result)
            pub_results = []
            cursor = 0
            for pub, chunks in zip(pubs, chunk_counts):
                rows = []
                for outcome in result.results[cursor:cursor + chunks]:
                    rows.extend(outcome.data["broadcast_counts"])
                cursor += chunks
                pub_results.append(PubResult(
                    DataBin(counts=[row["counts"] for row in rows],
                            shots=shots),
                    {"shots": shots, "num_bindings": pub.batch_size,
                     "chunks": chunks, "path": "broadcast"},
                ))
            return PrimitiveResult(pub_results, self._metadata(seed))

        return PrimitiveJob(job, collate)

    def _run_loop(self, pubs, shots, seed, options) -> PrimitiveJob:
        # Same seed layout as the broadcast path: one derived seed per
        # binding, concatenated across pubs — so supported pubs produce
        # identical counts either way.
        bound = []
        for pub in pubs:
            for row in pub.parameter_values:
                bound.append(pub.circuit.bind_parameters(
                    dict(zip(pub.parameters, row))
                ))
        job = self._backend.run(bound, shots=shots, seed=seed, **options)

        def collate(result):
            raise_on_error(result)
            pub_results = []
            cursor = 0
            for pub in pubs:
                batch = pub.batch_size
                counts = [
                    outcome.data["counts"]
                    for outcome in result.results[cursor:cursor + batch]
                ]
                cursor += batch
                pub_results.append(PubResult(
                    DataBin(counts=counts, shots=shots),
                    {"shots": shots, "num_bindings": batch, "path": "loop"},
                ))
            return PrimitiveResult(pub_results, self._metadata(seed))

        return PrimitiveJob(job, collate)

    def __repr__(self):
        return (
            f"SamplerV2(backend={self._backend.name()!r}, "
            f"default_shots={self._default_shots})"
        )
