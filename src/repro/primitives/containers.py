"""Data containers for the V2 primitives: PUBs, data bins, and results.

A **PUB** (Primitive Unified Bloc) is the unit of work of the V2
primitive interface: one circuit template plus an array of parameter
value sets (and, for the estimator, an observable).  The batch axis of
the value array is what the broadcast engine vectorizes — submitting one
pub with 256 bindings is one experiment, not 256.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.parameterbinding import get_bind_plan
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.quantum_info.pauli import Pauli, PauliSumOp


class DataBin:
    """Attribute bag holding one pub's output arrays.

    Sampler pubs carry ``counts`` (one histogram dict per binding) and
    ``shots``; estimator pubs carry ``evs`` (one expectation value per
    binding, as a float array).
    """

    def __init__(self, **fields):
        self._fields = tuple(sorted(fields))
        for key, value in fields.items():
            setattr(self, key, value)

    def __contains__(self, key):
        return key in self._fields

    def __iter__(self):
        return iter(self._fields)

    def __repr__(self):
        return f"DataBin({', '.join(self._fields)})"


class PubResult:
    """The result of one pub: a :class:`DataBin` plus metadata."""

    def __init__(self, data: DataBin, metadata=None):
        self.data = data
        self.metadata = dict(metadata or {})

    def __repr__(self):
        return f"PubResult({self.data!r}, metadata={self.metadata})"


class PrimitiveResult:
    """Sequence of :class:`PubResult`, one per submitted pub."""

    def __init__(self, pub_results, metadata=None):
        self._pub_results = list(pub_results)
        self.metadata = dict(metadata or {})

    def __getitem__(self, index):
        return self._pub_results[index]

    def __len__(self):
        return len(self._pub_results)

    def __iter__(self):
        return iter(self._pub_results)

    def __repr__(self):
        return (
            f"PrimitiveResult({len(self._pub_results)} pubs, "
            f"metadata={self.metadata})"
        )


def _coerce_values(circuit, values, parameters):
    """Normalize one pub's value array and parameter ordering.

    ``parameters=None`` defaults to the circuit's parameters sorted by
    name — beware that ``θ[10]`` sorts before ``θ[2]``; pass the list
    explicitly (e.g. ``VariationalForm.parameters``, creation order) when
    the column layout matters.
    """
    if parameters is None:
        parameters = list(get_bind_plan(circuit).ordered)
    else:
        parameters = list(parameters)
    if values is None:
        values = np.zeros((1, 0))
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        values = values.reshape(1, -1)
    if values.ndim != 2:
        raise AlgorithmError(
            "pub parameter values must be a (batch, num_parameters) array"
        )
    if values.shape[1] != len(parameters):
        raise AlgorithmError(
            f"pub has {len(parameters)} parameters but the value array "
            f"has {values.shape[1]} columns"
        )
    if values.shape[0] < 1:
        raise AlgorithmError("pub needs at least one parameter value set")
    return values, parameters


def coerce_observable(observable) -> PauliSumOp:
    """Accept a PauliSumOp, a Pauli / label string, or a coeff mapping."""
    if isinstance(observable, PauliSumOp):
        return observable
    if isinstance(observable, Pauli):
        return PauliSumOp([(1.0, observable)])
    if isinstance(observable, str):
        return PauliSumOp([(1.0, observable)])
    if isinstance(observable, dict):
        return PauliSumOp.from_dict(observable)
    raise AlgorithmError(
        f"cannot coerce {type(observable).__name__} to a PauliSumOp"
    )


class SamplerPub:
    """``(circuit, parameter_values, parameters)`` for the sampler."""

    def __init__(self, circuit, parameter_values, parameters):
        self.circuit = circuit
        self.parameter_values = parameter_values
        self.parameters = parameters

    @property
    def batch_size(self) -> int:
        """Number of bindings on the batch axis."""
        return self.parameter_values.shape[0]

    @classmethod
    def coerce(cls, pub) -> "SamplerPub":
        """From a circuit or a ``(circuit[, values[, parameters]])`` tuple."""
        if isinstance(pub, cls):
            return pub
        if isinstance(pub, QuantumCircuit):
            pub = (pub,)
        if not isinstance(pub, (list, tuple)) or not pub or len(pub) > 3:
            raise AlgorithmError(
                "a sampler pub is a circuit or a tuple "
                "(circuit, parameter_values[, parameters])"
            )
        circuit = pub[0]
        if not isinstance(circuit, QuantumCircuit):
            raise AlgorithmError("pub element 0 must be a QuantumCircuit")
        values = pub[1] if len(pub) > 1 else None
        parameters = pub[2] if len(pub) > 2 else None
        values, parameters = _coerce_values(circuit, values, parameters)
        return cls(circuit, values, parameters)

    def __repr__(self):
        return (
            f"SamplerPub({self.circuit.name!r}, "
            f"batch={self.batch_size}, params={len(self.parameters)})"
        )


class EstimatorPub:
    """``(circuit, observable, parameter_values, parameters)``."""

    def __init__(self, circuit, observable, parameter_values, parameters):
        self.circuit = circuit
        self.observable = observable
        self.parameter_values = parameter_values
        self.parameters = parameters

    @property
    def batch_size(self) -> int:
        """Number of bindings on the batch axis."""
        return self.parameter_values.shape[0]

    @classmethod
    def coerce(cls, pub) -> "EstimatorPub":
        """From ``(circuit, observable[, values[, parameters]])``."""
        if isinstance(pub, cls):
            return pub
        if not isinstance(pub, (list, tuple)) or len(pub) < 2 or len(pub) > 4:
            raise AlgorithmError(
                "an estimator pub is a tuple "
                "(circuit, observable, parameter_values[, parameters])"
            )
        circuit = pub[0]
        if not isinstance(circuit, QuantumCircuit):
            raise AlgorithmError("pub element 0 must be a QuantumCircuit")
        observable = coerce_observable(pub[1])
        if observable.num_qubits != circuit.num_qubits:
            raise AlgorithmError(
                f"observable acts on {observable.num_qubits} qubits but "
                f"the circuit has {circuit.num_qubits}"
            )
        values = pub[2] if len(pub) > 2 else None
        parameters = pub[3] if len(pub) > 3 else None
        values, parameters = _coerce_values(circuit, values, parameters)
        return cls(circuit, observable, values, parameters)

    def __repr__(self):
        return (
            f"EstimatorPub({self.circuit.name!r}, {self.observable!r}, "
            f"batch={self.batch_size})"
        )
