"""V2 primitives: batched Sampler/Estimator over PUBs.

The primitive unified bloc (PUB) bundles one circuit template with a
``(batch, num_parameters)`` value array; the broadcast engine
(:mod:`repro.simulators.batched`) vectorizes the batch axis so one pub is
one experiment instead of ``batch`` bound-circuit runs — with counts and
expectation values bit-identical to the per-binding loop under the same
batch seed.
"""

from repro.primitives.containers import (
    DataBin,
    EstimatorPub,
    PrimitiveResult,
    PubResult,
    SamplerPub,
)
from repro.primitives.estimator import EstimatorV2
from repro.primitives.job import PrimitiveJob
from repro.primitives.sampler import SamplerV2

__all__ = [
    "DataBin",
    "EstimatorPub",
    "EstimatorV2",
    "PrimitiveJob",
    "PrimitiveResult",
    "PubResult",
    "SamplerPub",
    "SamplerV2",
]
