"""EstimatorV2: batched expectation values over parameter-broadcast pubs."""

from __future__ import annotations

import numpy as np

from repro.exceptions import AlgorithmError, BackendError
from repro.primitives.containers import (
    DataBin,
    EstimatorPub,
    PrimitiveResult,
    PubResult,
)
from repro.primitives.job import PrimitiveJob, raise_on_error
from repro.simulators.batched import (
    broadcast_chunk_bounds,
    broadcast_supported,
    estimator_broadcastable,
)

_MODE_BACKENDS = {
    "exact": "statevector_simulator",
    "shots": "qasm_simulator",
}


class EstimatorV2:
    """Estimates ``<H>`` for every binding of every pub.

    One pub — ``(circuit, observable, parameter_values[, parameters])``
    — evaluates its whole batch axis in one broadcast experiment.  Two
    modes:

    * ``"exact"`` (default) — statevector backend; all bindings evolve in
      one ``(batch, 2**n)`` vectorized pass and each row takes a
      matrix-free ``<psi|H|psi>``.
    * ``"shots"`` — qasm backend; per-term measurement circuits share the
      evolved prefix across the batch, and every binding's energy is
      bit-identical to
      ``ExpectationEstimator(H, "shots", shots, seed=derived[b])`` on the
      bound circuit, with per-binding seeds derived from the batch seed
      exactly like ``backend.run`` derives per-experiment seeds.

    Shots-mode templates the broadcast path cannot reproduce (idle
    qubits, measurements in the template) fall back to that
    per-binding :class:`~repro.algorithms.expectation.ExpectationEstimator`
    loop — same seeds, same energies, just slower.
    """

    def __init__(self, backend=None, *, mode=None,
                 default_shots: int = 2048, seed=None):
        if mode is None:
            mode = "exact" if backend is None else {
                "statevector_simulator": "exact",
                "qasm_simulator": "shots",
            }.get(backend.name())
        if mode not in _MODE_BACKENDS:
            raise AlgorithmError(f"unknown estimator mode '{mode}'")
        if backend is None:
            from repro.providers.aer import Aer

            backend = Aer.get_backend(_MODE_BACKENDS[mode])
        elif backend.name() != _MODE_BACKENDS[mode]:
            raise AlgorithmError(
                f"mode '{mode}' needs the {_MODE_BACKENDS[mode]} backend, "
                f"got '{backend.name()}'"
            )
        self._backend = backend
        self._mode = mode
        self._default_shots = int(default_shots)
        self._seed = seed

    @property
    def mode(self) -> str:
        """``"exact"`` or ``"shots"``."""
        return self._mode

    @property
    def backend(self):
        """The provider backend running the pubs."""
        return self._backend

    def run(self, pubs, *, shots=None, seed=None, **options) -> PrimitiveJob:
        """Submit pubs; returns a :class:`PrimitiveJob`."""
        coerced = [EstimatorPub.coerce(pub) for pub in pubs]
        if not coerced:
            raise AlgorithmError("no pubs to estimate")
        shots = self._default_shots if shots is None else int(shots)
        seed = self._seed if seed is None else seed
        if self._mode == "shots" and not all(
            broadcast_supported(pub.circuit)
            and estimator_broadcastable(pub.circuit)
            for pub in coerced
        ):
            return self._run_loop_shots(coerced, shots, seed, options)
        return self._run_broadcast(coerced, shots, seed, options)

    def _metadata(self, seed, shots):
        meta = {
            "backend": self._backend.name(), "mode": self._mode,
            "seed": seed,
        }
        if self._mode == "shots":
            meta["shots"] = shots
        return meta

    def _run_broadcast(self, pubs, shots, seed, options) -> PrimitiveJob:
        chunk_counts = [
            len(broadcast_chunk_bounds(pub.batch_size,
                                       pub.circuit.num_qubits))
            for pub in pubs
        ]
        job = self._backend.run_pubs(
            [
                (pub.circuit, pub.parameter_values, pub.parameters,
                 pub.observable)
                for pub in pubs
            ],
            shots=shots, seed=seed, **options,
        )

        def collate(result):
            raise_on_error(result)
            pub_results = []
            cursor = 0
            for pub, chunks in zip(pubs, chunk_counts):
                energies = []
                for outcome in result.results[cursor:cursor + chunks]:
                    energies.extend(outcome.data["broadcast_evs"])
                cursor += chunks
                pub_results.append(PubResult(
                    DataBin(evs=np.asarray(energies, dtype=float)),
                    {"num_bindings": pub.batch_size, "chunks": chunks,
                     "path": "broadcast"},
                ))
            return PrimitiveResult(pub_results, self._metadata(seed, shots))

        return PrimitiveJob(job, collate)

    def _run_loop_shots(self, pubs, shots, seed, options) -> PrimitiveJob:
        if options.get("noise_model") is not None:
            raise BackendError(
                "the estimator primitive is noise-free; use "
                "ExpectationEstimator directly for noisy estimation"
            )

        def collate(_ignored):
            # Per-binding seeds match the broadcast path: derived from the
            # batch seed over the concatenated binding axis.
            from repro.algorithms.expectation import ExpectationEstimator
            from repro.qobj.assembler import derive_experiment_seeds

            total = sum(pub.batch_size for pub in pubs)
            seeds = derive_experiment_seeds(seed, total)
            pub_results = []
            offset = 0
            for pub in pubs:
                energies = []
                for row_index, row in enumerate(pub.parameter_values):
                    bound = pub.circuit.bind_parameters(
                        dict(zip(pub.parameters, row))
                    )
                    estimator = ExpectationEstimator(
                        pub.observable, mode="shots", shots=shots,
                        seed=seeds[offset + row_index],
                    )
                    energies.append(estimator.estimate(bound))
                offset += pub.batch_size
                pub_results.append(PubResult(
                    DataBin(evs=np.asarray(energies, dtype=float)),
                    {"num_bindings": pub.batch_size, "path": "loop"},
                ))
            return PrimitiveResult(pub_results, self._metadata(seed, shots))

        return PrimitiveJob(None, collate)

    def __repr__(self):
        return (
            f"EstimatorV2(mode={self._mode!r}, "
            f"backend={self._backend.name()!r})"
        )
