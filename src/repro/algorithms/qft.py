"""Quantum Fourier transform circuits."""

from __future__ import annotations

import math

from repro.circuit.quantumcircuit import QuantumCircuit


def qft_circuit(num_qubits: int, do_swaps: bool = True,
                inverse: bool = False) -> QuantumCircuit:
    """The QFT (or inverse QFT) on ``num_qubits`` qubits.

    Uses the textbook ladder of Hadamards and controlled phase rotations;
    ``do_swaps`` appends the final bit-reversal swaps.
    """
    circuit = QuantumCircuit(num_qubits, name="qft" if not inverse else "iqft")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for control in reversed(range(target)):
            angle = math.pi / (2 ** (target - control))
            circuit.cu1(angle, control, target)
    if do_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    if inverse:
        return circuit.inverse()
    return circuit


def qft_statevector_reference(amplitudes):
    """Classical DFT matching the QFT convention, for verification.

    QFT|x> = 1/sqrt(N) sum_y exp(2 pi i x y / N) |y> — the *inverse* DFT in
    numpy's sign convention, normalized symmetrically.
    """
    import numpy as np

    amplitudes = np.asarray(amplitudes, dtype=complex)
    n = amplitudes.shape[0]
    return np.fft.ifft(amplitudes) * math.sqrt(n)
