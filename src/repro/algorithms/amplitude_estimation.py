"""Canonical quantum amplitude estimation (Brassard et al.).

Given a preparation ``A`` with ``A|0> = sqrt(1-a)|bad> + sqrt(a)|good>``,
phase estimation of the Grover operator ``Q = -A S_0 A^-1 S_chi`` measures
``theta`` with ``a = sin^2(theta)`` to precision ``2^-m`` using ``m``
counting qubits — the quadratic speedup over Monte-Carlo sampling that
underlies the finance applications the paper's Aqua section names.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.quantum_info.operator import Operator
from repro.algorithms.phase_estimation import phase_estimation_circuit
from repro.simulators.qasm_simulator import QasmSimulator


def _good_state_indices(num_qubits: int, good_states) -> list[int]:
    indices = []
    for state in good_states:
        if isinstance(state, str):
            if len(state) != num_qubits:
                raise AlgorithmError(
                    f"good state '{state}' is not {num_qubits} bits"
                )
            indices.append(int(state, 2))
        else:
            indices.append(int(state))
    if not indices:
        raise AlgorithmError("need at least one good state")
    if any(i < 0 or i >= 2**num_qubits for i in indices):
        raise AlgorithmError("good state out of range")
    return indices


def grover_operator_matrix(preparation: QuantumCircuit,
                           good_states) -> np.ndarray:
    """Dense matrix of ``Q = -A S_0 A^-1 S_chi``."""
    num_qubits = preparation.num_qubits
    a_matrix = Operator.from_circuit(preparation).data
    dim = 2**num_qubits
    s_chi = np.eye(dim, dtype=complex)
    for index in _good_state_indices(num_qubits, good_states):
        s_chi[index, index] = -1.0
    s_zero = np.eye(dim, dtype=complex)
    s_zero[0, 0] = -1.0
    return -(a_matrix @ s_zero @ a_matrix.conj().T @ s_chi)


def true_amplitude(preparation: QuantumCircuit, good_states) -> float:
    """Exact probability of the good subspace under ``A|0>``."""
    from repro.quantum_info.statevector import Statevector

    state = Statevector.from_instruction(preparation)
    probabilities = state.probabilities()
    return float(
        sum(
            probabilities[i]
            for i in _good_state_indices(preparation.num_qubits, good_states)
        )
    )


class AmplitudeEstimationResult:
    """Outcome of a QAE run."""

    def __init__(self, estimate, true_value, num_counting, counts):
        self.estimate = estimate
        self.true_value = true_value
        self.num_counting = num_counting
        self.counts = counts

    @property
    def error(self) -> float:
        """|estimate - true value| (true value known on a simulator)."""
        return abs(self.estimate - self.true_value)

    def __repr__(self):
        return (
            f"AmplitudeEstimationResult(a~{self.estimate:.4f}, "
            f"true={self.true_value:.4f})"
        )


def estimate_amplitude(preparation: QuantumCircuit, good_states,
                       num_counting: int = 5, shots: int = 4096,
                       seed=None) -> AmplitudeEstimationResult:
    """Run canonical QAE and return the amplitude estimate.

    The estimate is the counts-weighted maximum-likelihood grid value
    ``sin^2(pi y / 2^m)`` over the most frequent outcome ``y``.
    """
    grover = grover_operator_matrix(preparation, good_states)
    circuit = phase_estimation_circuit(
        grover, num_counting, eigenstate_prep=preparation
    )
    outcome = QasmSimulator().run(circuit, shots=shots, seed=seed)
    counts = outcome["counts"]
    # Aggregate y and 2^m - y (phases theta and -theta give the same a).
    grid_size = 2**num_counting
    weights: dict[float, int] = {}
    for key, count in counts.items():
        y = int(key, 2)
        amplitude = math.sin(math.pi * y / grid_size) ** 2
        amplitude = round(amplitude, 12)
        weights[amplitude] = weights.get(amplitude, 0) + count
    best = max(weights, key=weights.get)
    return AmplitudeEstimationResult(
        best, true_amplitude(preparation, good_states), num_counting, counts
    )
