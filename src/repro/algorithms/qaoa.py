"""QAOA for MaxCut — the optimization application class of Aqua.

Builds the standard alternating cost/mixer ansatz: cost layers are ZZ
rotations over the graph's edges (native ``rzz`` decomposes to CX + RZ +
CX), the mixer is a transverse RX layer.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.optimizers import BatchableObjective, COBYLA, Optimizer
from repro.circuit.parameter import Parameter
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.quantum_info.pauli import PauliSumOp
from repro.simulators.statevector_simulator import StatevectorSimulator


def maxcut_hamiltonian(edges, num_nodes: int) -> PauliSumOp:
    """Cost Hamiltonian whose minimum encodes the maximum cut.

    For each edge (i, j, w): w/2 (Z_i Z_j - I), so the energy equals minus
    the cut weight.
    """
    terms = []
    for edge in edges:
        if len(edge) == 2:
            i, j = edge
            weight = 1.0
        else:
            i, j, weight = edge
        label = ["I"] * num_nodes
        label[num_nodes - 1 - i] = "Z"
        label[num_nodes - 1 - j] = "Z"
        terms.append((weight / 2.0, "".join(label)))
        terms.append((-weight / 2.0, "I" * num_nodes))
    return PauliSumOp(terms)


def cut_value(bitstring: str, edges) -> float:
    """Weight of the cut given by a solution bitstring (bit 0 rightmost)."""
    total = 0.0
    for edge in edges:
        if len(edge) == 2:
            i, j = edge
            weight = 1.0
        else:
            i, j, weight = edge
        bit_i = bitstring[len(bitstring) - 1 - i]
        bit_j = bitstring[len(bitstring) - 1 - j]
        if bit_i != bit_j:
            total += weight
    return total


class QAOAResult:
    """Outcome of a QAOA run."""

    def __init__(self, best_bitstring, best_cut, eigenvalue, optimal_point,
                 counts):
        self.best_bitstring = best_bitstring
        self.best_cut = best_cut
        self.eigenvalue = eigenvalue
        self.optimal_point = optimal_point
        self.counts = counts

    def __repr__(self):
        return (
            f"QAOAResult(cut={self.best_cut}, "
            f"bitstring='{self.best_bitstring}')"
        )


class QAOA:
    """Quantum Approximate Optimization Algorithm for MaxCut."""

    def __init__(self, edges, num_nodes: int, reps: int = 2,
                 optimizer: Optimizer = None, seed=None):
        if num_nodes < 2:
            raise AlgorithmError("MaxCut needs at least two nodes")
        self.edges = list(edges)
        self.num_nodes = num_nodes
        self.reps = reps
        self.optimizer = optimizer or COBYLA(maxiter=300)
        self.seed = seed
        self.hamiltonian = maxcut_hamiltonian(self.edges, num_nodes)
        self._gammas = [Parameter(f"γ[{p}]") for p in range(reps)]
        self._betas = [Parameter(f"β[{p}]") for p in range(reps)]
        self._template = self._build_template()
        self._engine = StatevectorSimulator()

    def _build_template(self) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_nodes)
        for qubit in range(self.num_nodes):
            circuit.h(qubit)
        for layer in range(self.reps):
            gamma = self._gammas[layer]
            for edge in self.edges:
                i, j = edge[0], edge[1]
                weight = edge[2] if len(edge) > 2 else 1.0
                circuit.rzz(gamma * weight, i, j)
            beta = self._betas[layer]
            for qubit in range(self.num_nodes):
                circuit.rx(2.0 * beta, qubit)
        return circuit

    def bind(self, point) -> QuantumCircuit:
        """Instantiate the ansatz at one (gamma..., beta...) point."""
        point = list(point)
        if len(point) != 2 * self.reps:
            raise AlgorithmError(f"expected {2 * self.reps} parameters")
        binding = dict(zip(self._gammas, point[: self.reps]))
        binding.update(zip(self._betas, point[self.reps :]))
        return self._template.bind_parameters(binding)

    def energy(self, point) -> float:
        """Expectation of the cost Hamiltonian at one parameter point."""
        state = self._engine.run(self.bind(point))
        return self.hamiltonian.expectation(state)

    def energy_many(self, points) -> np.ndarray:
        """Cost expectations at a batch of (gamma..., beta...) points.

        The whole batch evolves in one broadcast pass over the template;
        entry ``b`` is bitwise identical to ``energy(points[b])``.
        """
        from repro.simulators.batched import evolve_broadcast

        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        states = evolve_broadcast(
            self._template, points, self._gammas + self._betas
        )
        return np.array([
            self.hamiltonian.expectation(row) for row in states
        ])

    def run(self, initial_point=None, shots: int = 4096) -> QAOAResult:
        """Optimize the angles, then sample candidate cuts."""
        rng = np.random.default_rng(self.seed)
        if initial_point is None:
            initial_point = rng.uniform(0, np.pi, size=2 * self.reps)
        objective = BatchableObjective(self.energy, self.energy_many)
        outcome = self.optimizer.optimize(objective, np.asarray(initial_point))
        final_state = self._engine.run(self.bind(outcome.x))
        counts = final_state.sample_counts(shots, seed=self.seed)
        best_bitstring = max(
            counts, key=lambda key: (cut_value(key, self.edges), counts[key])
        )
        return QAOAResult(
            best_bitstring,
            cut_value(best_bitstring, self.edges),
            outcome.fun,
            outcome.x,
            counts,
        )


def brute_force_maxcut(edges, num_nodes: int) -> tuple[float, str]:
    """Exact MaxCut by enumeration (reference for small graphs)."""
    best = (-1.0, "")
    for assignment in range(2**num_nodes):
        bits = format(assignment, f"0{num_nodes}b")
        value = cut_value(bits, edges)
        if value > best[0]:
            best = (value, bits)
    return best
