"""Grover search — the canonical quadratic-speedup algorithm.

Builds phase oracles for marked computational-basis states, the diffusion
(inversion about the mean) operator, and the full iterated circuit with the
optimal iteration count floor(pi/4 * sqrt(N/M)).
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.library.standard_gates import UnitaryGate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.simulators.statevector_simulator import StatevectorSimulator


def multi_controlled_z(circuit: QuantumCircuit, qubits) -> None:
    """Append a Z controlled on all of ``qubits`` (phase flip of |1...1>).

    Uses native gates up to three qubits; beyond that a diagonal
    :class:`UnitaryGate` (simulator-friendly) is emitted.
    """
    qubits = list(qubits)
    if not qubits:
        raise AlgorithmError("need at least one qubit")
    if len(qubits) == 1:
        circuit.z(qubits[0])
    elif len(qubits) == 2:
        circuit.cz(qubits[0], qubits[1])
    elif len(qubits) == 3:
        circuit.h(qubits[2])
        circuit.ccx(qubits[0], qubits[1], qubits[2])
        circuit.h(qubits[2])
    else:
        dim = 2 ** len(qubits)
        diagonal = np.ones(dim, dtype=complex)
        diagonal[-1] = -1.0
        circuit.unitary(np.diag(diagonal), qubits, label=f"mcz{len(qubits)}")


def phase_oracle(num_qubits: int, marked_states) -> QuantumCircuit:
    """Oracle flipping the phase of each marked basis state.

    ``marked_states`` are bitstrings (qubit 0 rightmost) or integers.
    """
    marked = []
    for state in marked_states:
        if isinstance(state, str):
            if len(state) != num_qubits:
                raise AlgorithmError(
                    f"marked state '{state}' is not {num_qubits} bits"
                )
            marked.append(int(state, 2))
        else:
            marked.append(int(state))
    if not marked:
        raise AlgorithmError("need at least one marked state")
    if any(m < 0 or m >= 2**num_qubits for m in marked):
        raise AlgorithmError("marked state out of range")
    oracle = QuantumCircuit(num_qubits, name="oracle")
    for index in marked:
        # Map |index> to |1...1>, phase-flip, and undo.
        flips = [q for q in range(num_qubits) if not (index >> q) & 1]
        for qubit in flips:
            oracle.x(qubit)
        multi_controlled_z(oracle, range(num_qubits))
        for qubit in flips:
            oracle.x(qubit)
    return oracle


def diffusion_operator(num_qubits: int) -> QuantumCircuit:
    """Grover diffusion: 2|s><s| - I over the uniform state |s>."""
    diffusion = QuantumCircuit(num_qubits, name="diffusion")
    for qubit in range(num_qubits):
        diffusion.h(qubit)
        diffusion.x(qubit)
    multi_controlled_z(diffusion, range(num_qubits))
    for qubit in range(num_qubits):
        diffusion.x(qubit)
        diffusion.h(qubit)
    return diffusion


def optimal_iterations(num_qubits: int, num_marked: int) -> int:
    """floor(pi/4 sqrt(N/M)), at least one iteration."""
    n_total = 2**num_qubits
    return max(1, int(math.floor(math.pi / 4 * math.sqrt(n_total / num_marked))))


def grover_circuit(num_qubits: int, marked_states, iterations=None,
                   measure: bool = False) -> QuantumCircuit:
    """The full Grover circuit: H^n then iterated oracle + diffusion."""
    marked_states = list(marked_states)
    if iterations is None:
        iterations = optimal_iterations(num_qubits, len(marked_states))
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    oracle = phase_oracle(num_qubits, marked_states)
    diffusion = diffusion_operator(num_qubits)
    for _ in range(iterations):
        circuit.compose(oracle, qubits=circuit.qubits[:num_qubits], inplace=True)
        circuit.compose(diffusion, qubits=circuit.qubits[:num_qubits],
                        inplace=True)
    if measure:
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit


class GroverResult:
    """Outcome of a Grover run."""

    def __init__(self, top_state, success_probability, iterations, counts):
        self.top_state = top_state
        self.success_probability = success_probability
        self.iterations = iterations
        self.counts = counts

    def __repr__(self):
        return (
            f"GroverResult(top='{self.top_state}', "
            f"p={self.success_probability:.3f}, "
            f"iterations={self.iterations})"
        )


class Grover:
    """Convenience driver: build, simulate, report success probability."""

    def __init__(self, num_qubits: int, marked_states, iterations=None):
        self.num_qubits = num_qubits
        self.marked_states = [
            state if isinstance(state, str) else format(state, f"0{num_qubits}b")
            for state in marked_states
        ]
        self.iterations = (
            iterations
            if iterations is not None
            else optimal_iterations(num_qubits, len(self.marked_states))
        )

    def run(self, shots: int = 2048, seed=None) -> GroverResult:
        """Simulate and measure."""
        circuit = grover_circuit(
            self.num_qubits, self.marked_states, self.iterations
        )
        state = StatevectorSimulator().run(circuit)
        probabilities = state.probabilities_dict()
        success = sum(
            probabilities.get(marked, 0.0) for marked in self.marked_states
        )
        counts = state.sample_counts(shots, seed=seed)
        top_state = max(counts, key=counts.get)
        return GroverResult(top_state, success, self.iterations, counts)
