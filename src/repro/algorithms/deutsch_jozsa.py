"""Deutsch-Jozsa: decide constant vs. balanced with one oracle query."""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.simulators.qasm_simulator import QasmSimulator


def constant_oracle(num_qubits: int, value: int = 0) -> QuantumCircuit:
    """Oracle for f(x) = value (0 or 1) over ``num_qubits`` inputs."""
    oracle = QuantumCircuit(num_qubits + 1, name="const-oracle")
    if value:
        oracle.x(num_qubits)
    return oracle


def balanced_oracle(num_qubits: int, mask: int = None) -> QuantumCircuit:
    """Oracle for the balanced function f(x) = parity(x & mask)."""
    if mask is None:
        mask = (1 << num_qubits) - 1
    if mask == 0 or mask >= (1 << num_qubits):
        raise AlgorithmError("mask must select at least one input bit")
    oracle = QuantumCircuit(num_qubits + 1, name="balanced-oracle")
    for qubit in range(num_qubits):
        if (mask >> qubit) & 1:
            oracle.cx(qubit, num_qubits)
    return oracle


def deutsch_jozsa_circuit(oracle: QuantumCircuit) -> QuantumCircuit:
    """Assemble the DJ circuit around a (num_qubits+1)-wire oracle."""
    num_inputs = oracle.num_qubits - 1
    circuit = QuantumCircuit(num_inputs + 1, num_inputs)
    circuit.x(num_inputs)
    for qubit in range(num_inputs + 1):
        circuit.h(qubit)
    circuit.compose(oracle, qubits=circuit.qubits[: num_inputs + 1],
                    inplace=True)
    for qubit in range(num_inputs):
        circuit.h(qubit)
    for qubit in range(num_inputs):
        circuit.measure(qubit, qubit)
    return circuit


def run_deutsch_jozsa(oracle: QuantumCircuit, shots: int = 1024,
                      seed=None) -> str:
    """Return ``"constant"`` or ``"balanced"`` for the given oracle."""
    circuit = deutsch_jozsa_circuit(oracle)
    outcome = QasmSimulator().run(circuit, shots=shots, seed=seed)
    counts = outcome["counts"]
    zero_key = "0" * circuit.num_clbits
    zero_fraction = counts.get(zero_key, 0) / shots
    return "constant" if zero_fraction > 0.5 else "balanced"
