"""Bernstein-Vazirani: recover a hidden bitstring with one query."""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.simulators.qasm_simulator import QasmSimulator


def bv_circuit(hidden: str) -> QuantumCircuit:
    """Circuit whose measurement reveals the hidden string (bit 0 rightmost)."""
    if not hidden or any(ch not in "01" for ch in hidden):
        raise AlgorithmError("hidden string must be a non-empty bitstring")
    num_inputs = len(hidden)
    circuit = QuantumCircuit(num_inputs + 1, num_inputs)
    circuit.x(num_inputs)
    for qubit in range(num_inputs + 1):
        circuit.h(qubit)
    for qubit in range(num_inputs):
        if hidden[num_inputs - 1 - qubit] == "1":
            circuit.cx(qubit, num_inputs)
    for qubit in range(num_inputs):
        circuit.h(qubit)
    for qubit in range(num_inputs):
        circuit.measure(qubit, qubit)
    return circuit


def run_bernstein_vazirani(hidden: str, shots: int = 1024, seed=None,
                           noise_model=None) -> str:
    """Recover the hidden string (exactly, on the noiseless simulator)."""
    circuit = bv_circuit(hidden)
    outcome = QasmSimulator().run(
        circuit, shots=shots, seed=seed, noise_model=noise_model
    )
    counts = outcome["counts"]
    return max(counts, key=counts.get)
