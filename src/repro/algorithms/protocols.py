"""Entanglement-powered protocols: teleportation and superdense coding.

Classic tutorial circuits (the Qiskit tutorial library the paper points to
walks through both).  Teleportation moves an unknown qubit state with two
classical bits + one Bell pair; superdense coding sends two classical bits
with one qubit + one Bell pair.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.register import ClassicalRegister, QuantumRegister
from repro.exceptions import AlgorithmError
from repro.simulators.qasm_simulator import QasmSimulator


def teleportation_circuit(state_preparation: QuantumCircuit = None,
                          verify: bool = True) -> QuantumCircuit:
    """Quantum teleportation of qubit 0 onto qubit 2.

    Args:
        state_preparation: 1-qubit circuit preparing the payload (defaults
            to |0>).
        verify: when True, the inverse preparation plus a measurement are
            appended on the destination, so a perfect run always reads 0
            into the ``verify`` register.
    """
    qreg = QuantumRegister(3, "q")
    alice0 = ClassicalRegister(1, "m0")
    alice1 = ClassicalRegister(1, "m1")
    registers = [qreg, alice0, alice1]
    if verify:
        check = ClassicalRegister(1, "chk")
        registers.append(check)
    circuit = QuantumCircuit(*registers)
    if state_preparation is not None:
        if state_preparation.num_qubits != 1:
            raise AlgorithmError("payload preparation must be 1-qubit")
        circuit.compose(state_preparation, qubits=[qreg[0]], inplace=True)
    # Bell pair between Alice (q1) and Bob (q2).
    circuit.h(1)
    circuit.cx(1, 2)
    # Alice's Bell measurement.
    circuit.cx(0, 1)
    circuit.h(0)
    circuit.measure(qreg[0], alice0[0])
    circuit.measure(qreg[1], alice1[0])
    # Bob's conditional corrections.
    circuit.x(2)
    circuit.data[-1].operation.c_if(alice1, 1)
    circuit.z(2)
    circuit.data[-1].operation.c_if(alice0, 1)
    if verify and state_preparation is not None:
        circuit.compose(
            state_preparation.inverse(), qubits=[qreg[2]], inplace=True
        )
    if verify:
        circuit.measure(qreg[2], check[0])
    return circuit


def run_teleportation(state_preparation: QuantumCircuit = None,
                      shots: int = 1024, seed=None) -> float:
    """Run teleportation; returns the verification success probability."""
    circuit = teleportation_circuit(state_preparation, verify=True)
    outcome = QasmSimulator().run(circuit, shots=shots, seed=seed)
    # The check bit is the top classical bit (clbit 2).
    good = sum(
        value for key, value in outcome["counts"].items() if key[0] == "0"
    )
    return good / shots


def superdense_circuit(bits: str) -> QuantumCircuit:
    """Superdense coding of two classical ``bits`` (e.g. ``"10"``)."""
    if len(bits) != 2 or any(ch not in "01" for ch in bits):
        raise AlgorithmError("superdense coding sends exactly two bits")
    circuit = QuantumCircuit(2, 2, name=f"superdense({bits})")
    # Shared Bell pair.
    circuit.h(0)
    circuit.cx(0, 1)
    # Alice encodes on her half (qubit 0): bits = b1 b0.
    if bits[1] == "1":
        circuit.x(0)
    if bits[0] == "1":
        circuit.z(0)
    # Bob decodes.
    circuit.cx(0, 1)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    return circuit


def run_superdense(bits: str, shots: int = 512, seed=None) -> str:
    """Send two classical bits through superdense coding; returns them."""
    circuit = superdense_circuit(bits)
    outcome = QasmSimulator().run(circuit, shots=shots, seed=seed)
    counts = outcome["counts"]
    best = max(counts, key=counts.get)
    # Bob's decode leaves the X-encoded bit on qubit 1 (clbit 1, the left
    # key character) and the Z-encoded bit on qubit 0 (clbit 0).
    return best[1] + best[0]
