"""Aqua-equivalent application algorithms."""

from repro.algorithms.ansatz import (
    VariationalForm,
    ry_ansatz,
    ryrz_ansatz,
    two_local,
)
from repro.algorithms.bernstein_vazirani import bv_circuit, run_bernstein_vazirani
from repro.algorithms.chemistry import (
    h2_hamiltonian,
    heisenberg_chain,
    transverse_ising,
)
from repro.algorithms.deutsch_jozsa import (
    balanced_oracle,
    constant_oracle,
    deutsch_jozsa_circuit,
    run_deutsch_jozsa,
)
from repro.algorithms.expectation import (
    ExpectationEstimator,
    expectation_from_counts,
    measurement_basis_change,
)
from repro.algorithms.grover import (
    Grover,
    GroverResult,
    diffusion_operator,
    grover_circuit,
    optimal_iterations,
    phase_oracle,
)
from repro.algorithms.optimizers import (
    COBYLA,
    SPSA,
    GradientDescent,
    NelderMead,
    Optimizer,
    OptimizerResult,
    ParameterShiftDescent,
    Powell,
    ScipyOptimizer,
    get_optimizer,
)
from repro.algorithms.phase_estimation import (
    estimate_phase,
    phase_estimation_circuit,
)
from repro.algorithms.qaoa import (
    QAOA,
    QAOAResult,
    brute_force_maxcut,
    cut_value,
    maxcut_hamiltonian,
)
from repro.algorithms.amplitude_estimation import (
    AmplitudeEstimationResult,
    estimate_amplitude,
    grover_operator_matrix,
    true_amplitude,
)
from repro.algorithms.protocols import (
    run_superdense,
    run_teleportation,
    superdense_circuit,
    teleportation_circuit,
)
from repro.algorithms.qft import qft_circuit, qft_statevector_reference
from repro.algorithms.shor import (
    find_order,
    modular_multiplication_unitary,
    multiplicative_order,
    order_finding_circuit,
    shor_factor,
)
from repro.algorithms.simon import (
    run_simon,
    simon_circuit,
    simon_oracle,
    solve_gf2,
)
from repro.algorithms.vqe import VQE, VQEResult, exact_ground_energy

__all__ = [
    "AmplitudeEstimationResult",
    "COBYLA", "ExpectationEstimator", "GradientDescent", "Grover",
    "estimate_amplitude", "find_order", "grover_operator_matrix",
    "modular_multiplication_unitary", "multiplicative_order",
    "order_finding_circuit", "shor_factor", "true_amplitude",
    "GroverResult", "NelderMead", "Optimizer", "OptimizerResult", "QAOA",
    "QAOAResult", "ParameterShiftDescent", "Powell", "SPSA",
    "ScipyOptimizer", "VQE", "VQEResult", "VariationalForm",
    "balanced_oracle", "brute_force_maxcut", "bv_circuit", "constant_oracle",
    "cut_value", "deutsch_jozsa_circuit", "diffusion_operator",
    "estimate_phase", "exact_ground_energy", "expectation_from_counts",
    "get_optimizer", "grover_circuit", "h2_hamiltonian", "heisenberg_chain",
    "maxcut_hamiltonian", "measurement_basis_change", "optimal_iterations",
    "phase_estimation_circuit", "phase_oracle", "qft_circuit",
    "qft_statevector_reference", "run_bernstein_vazirani",
    "run_deutsch_jozsa", "run_simon", "run_superdense",
    "run_teleportation", "ry_ansatz", "ryrz_ansatz", "simon_circuit",
    "simon_oracle", "solve_gf2", "superdense_circuit",
    "teleportation_circuit", "transverse_ising", "two_local",
]
