"""Simon's algorithm: find a hidden XOR mask with exponential speedup.

Given a 2-to-1 oracle with ``f(x) = f(x ^ s)``, each quantum query returns
a random ``y`` with ``y . s = 0 (mod 2)``; collecting ``n-1`` independent
equations and solving over GF(2) reveals ``s``.  Includes the classical
Gaussian-elimination post-processing the algorithm requires.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.simulators.qasm_simulator import QasmSimulator


def simon_oracle(hidden: str) -> QuantumCircuit:
    """A standard Simon oracle for the hidden mask ``hidden``.

    Uses 2n qubits: inputs 0..n-1, outputs n..2n-1.  First copies x into
    the output register; then, if ``s != 0``, XORs ``s`` into the output
    conditioned on one chosen input bit, making f(x) = f(x ^ s).
    """
    if not hidden or any(ch not in "01" for ch in hidden):
        raise AlgorithmError("hidden mask must be a non-empty bitstring")
    n = len(hidden)
    oracle = QuantumCircuit(2 * n, name=f"simon({hidden})")
    for i in range(n):
        oracle.cx(i, n + i)
    mask = int(hidden, 2)
    if mask:
        # Pivot on the lowest set bit of s.
        pivot = (mask & -mask).bit_length() - 1
        for i in range(n):
            if (mask >> i) & 1:
                oracle.cx(pivot, n + i)
    return oracle


def simon_circuit(oracle: QuantumCircuit) -> QuantumCircuit:
    """One Simon query: H on inputs, oracle, H on inputs, measure inputs."""
    total = oracle.num_qubits
    n = total // 2
    circuit = QuantumCircuit(total, n)
    for i in range(n):
        circuit.h(i)
    circuit.compose(oracle, qubits=circuit.qubits[:total], inplace=True)
    for i in range(n):
        circuit.h(i)
    for i in range(n):
        circuit.measure(i, i)
    return circuit


def solve_gf2(equations: list[int], num_bits: int) -> int | None:
    """Solve ``y . s = 0`` over GF(2) for a non-zero ``s`` (None if only 0).

    ``equations`` are bitmask rows; returns the hidden mask when the null
    space is one-dimensional, raising if it is larger (not enough data).
    """
    rows = [e for e in equations if e]
    # Gaussian elimination to row echelon form.
    pivots: dict[int, int] = {}
    for row in rows:
        for bit in reversed(range(num_bits)):
            if not (row >> bit) & 1:
                continue
            if bit in pivots:
                row ^= pivots[bit]
            else:
                pivots[bit] = row
                break
    rank = len(pivots)
    free_bits = [b for b in range(num_bits) if b not in pivots]
    if rank == num_bits:
        return None  # only the trivial solution: s = 0
    if len(free_bits) > 1:
        raise AlgorithmError(
            "underdetermined system; collect more measurements"
        )
    # Back-substitute with the single free bit set to 1.
    solution = 1 << free_bits[0]
    for bit in sorted(pivots, reverse=False):
        row = pivots[bit]
        # Parity of the already-fixed part of this row decides this bit.
        parity = bin(row & solution & ~(1 << bit)).count("1") % 2
        if parity:
            solution |= 1 << bit
    return solution


def run_simon(hidden: str, shots: int = 64, seed=None) -> str:
    """End-to-end Simon: query, collect equations, solve, return the mask."""
    n = len(hidden)
    circuit = simon_circuit(simon_oracle(hidden))
    outcome = QasmSimulator().run(circuit, shots=shots, seed=seed)
    equations = [int(key, 2) for key in outcome["counts"]]
    # Every measured y must satisfy y . s = 0.
    mask = int(hidden, 2)
    for y in equations:
        if bin(y & mask).count("1") % 2:
            raise AlgorithmError("oracle produced an inconsistent equation")
    solution = solve_gf2(equations, n)
    if solution is None:
        return "0" * n
    return format(solution, f"0{n}b")
