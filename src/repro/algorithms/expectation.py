"""Pauli expectation-value estimation, exact or from measurement counts.

A VQE objective evaluates <psi(theta)| H |psi(theta)> for a Pauli-sum H.
Exactly (statevector) this is one matrix quadratic form; on a shot-based
backend each Pauli term needs a basis-change circuit and a parity average —
the conventional-quantum hybrid loop of the paper's Aqua description.
"""

from __future__ import annotations

import math

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.quantum_info.pauli import Pauli, PauliSumOp
from repro.simulators.statevector_simulator import StatevectorSimulator


def measurement_basis_change(pauli: Pauli, circuit: QuantumCircuit) -> None:
    """Append the rotations mapping ``pauli``'s eigenbasis to the Z basis.

    X -> H; Y -> Sdg then H; Z and I need nothing.
    """
    for qubit in range(pauli.num_qubits):
        char = pauli.char(qubit)
        if char == "X":
            circuit.h(qubit)
        elif char == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)


def expectation_from_counts(pauli: Pauli, counts: dict) -> float:
    """Estimate <P> from Z-basis counts taken after the basis change.

    Outcome bit ``q`` (0 = rightmost key character) contributes to the
    parity iff ``pauli`` acts non-trivially on qubit ``q``.
    """
    support = set(pauli.support)
    if not support:
        return 1.0
    total = 0
    accumulator = 0
    for key, value in counts.items():
        parity = 0
        for qubit in support:
            position = len(key) - 1 - qubit
            if position < 0:
                raise AlgorithmError("counts key shorter than Pauli support")
            if key[position] == "1":
                parity ^= 1
        accumulator += (-1) ** parity * value
        total += value
    if total == 0:
        raise AlgorithmError("empty counts")
    return accumulator / total


class ExpectationEstimator:
    """Evaluates <H> for circuits, exactly or by sampling.

    Args:
        hamiltonian: the :class:`PauliSumOp` observable.
        mode: ``"exact"`` (statevector) or ``"shots"`` (sampled).
        shots: samples per Pauli term in shot mode.
        seed: RNG seed for shot mode.
        noise_model: optional noise for shot mode.
    """

    def __init__(self, hamiltonian: PauliSumOp, mode: str = "exact",
                 shots: int = 2048, seed=None, noise_model=None):
        if mode not in ("exact", "shots"):
            raise AlgorithmError(f"unknown estimation mode '{mode}'")
        self.hamiltonian = hamiltonian
        self.mode = mode
        self.shots = shots
        self.seed = seed
        self.noise_model = noise_model
        self._statevector_engine = StatevectorSimulator()
        # Shot mode submits all Pauli-term circuits as one batch through
        # the execution pipeline (assemble -> schedule -> run -> collect).
        from repro.providers.aer import QasmSimulatorBackend

        self._qasm_backend = QasmSimulatorBackend()
        self.evaluations = 0

    def estimate(self, circuit: QuantumCircuit) -> float:
        """<H> for the state prepared by ``circuit`` from |0...0>."""
        self.evaluations += 1
        if circuit.num_qubits != self.hamiltonian.num_qubits:
            raise AlgorithmError(
                "circuit width does not match the Hamiltonian"
            )
        if self.mode == "exact":
            state = self._statevector_engine.run(circuit)
            return self.hamiltonian.expectation(state)
        return self._estimate_shots(circuit)

    def estimate_many(self, circuit: QuantumCircuit, parameter_values,
                      parameters=None) -> list[float]:
        """<H> for every binding of a parameterized template, batched.

        One broadcast pass replaces ``batch`` sequential :meth:`estimate`
        calls.  Exact mode: row ``b`` is bitwise identical to
        ``estimate(circuit.bind_parameters(row_b))``.  Shot mode: each
        binding gets its own seed derived from ``self.seed`` (a
        :meth:`estimate` loop reuses ``self.seed`` verbatim per call);
        templates the broadcast path cannot reproduce, and noisy
        estimation, fall back to exactly that per-binding loop.
        """
        import numpy as np

        from repro.qobj.assembler import derive_experiment_seeds
        from repro.simulators.batched import (
            broadcast_supported,
            estimate_broadcast_shots,
            estimator_broadcastable,
            evolve_broadcast,
        )

        if circuit.num_qubits != self.hamiltonian.num_qubits:
            raise AlgorithmError(
                "circuit width does not match the Hamiltonian"
            )
        values = np.asarray(parameter_values, dtype=float)
        if values.ndim == 1:
            values = values.reshape(1, -1)
        batch = values.shape[0]
        if self.mode == "exact" and broadcast_supported(circuit):
            states = evolve_broadcast(circuit, values, parameters)
            self.evaluations += batch
            return [
                self.hamiltonian.expectation(row) for row in states
            ]
        if (
            self.mode == "shots"
            and self.noise_model is None
            and broadcast_supported(circuit)
            and estimator_broadcastable(circuit)
        ):
            seeds = derive_experiment_seeds(self.seed, batch)
            energies = estimate_broadcast_shots(
                circuit, values, parameters, self.hamiltonian,
                self.shots, seeds,
            )
            self.evaluations += batch
            return energies
        if parameters is None:
            from repro.circuit.parameterbinding import get_bind_plan

            parameters = list(get_bind_plan(circuit).ordered)
        return [
            self.estimate(
                circuit.bind_parameters(dict(zip(parameters, row)))
            )
            for row in values
        ]

    def _estimate_shots(self, circuit: QuantumCircuit) -> float:
        """One batched submission covering every measured Pauli term.

        Each term still needs its own basis-change circuit, but the whole
        fan-out goes through the pipeline as a single job (one seed per
        experiment derived from the estimator seed), so parallel executors
        can spread the terms across cores.
        """
        energy = 0.0
        batch = []
        for index, (coeff, pauli) in enumerate(self.hamiltonian.terms):
            if abs(coeff.imag) > 1e-9:
                raise AlgorithmError("shot estimation needs real coefficients")
            if not pauli.support:
                energy += coeff.real
                continue
            measured = QuantumCircuit(circuit.num_qubits, circuit.num_qubits,
                                      name=f"term-{index}")
            measured.compose(circuit, qubits=measured.qubits, inplace=True)
            measurement_basis_change(pauli, measured)
            for qubit in pauli.support:
                measured.measure(qubit, qubit)
            batch.append((coeff.real, pauli, measured))
        if not batch:
            return energy
        result = self._qasm_backend.run(
            [measured for _coeff, _pauli, measured in batch],
            shots=self.shots, seed=self.seed,
            noise_model=self.noise_model,
        ).result()
        for coeff, pauli, measured in batch:
            energy += coeff * expectation_from_counts(
                pauli, result.get_counts(measured.name)
            )
        return energy
