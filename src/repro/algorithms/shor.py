"""Shor's algorithm: quantum order finding plus classical post-processing.

The paper's introduction lists cryptography among the promised quantum
speedups; Shor's factoring algorithm is its anchor.  This implementation
runs the full pipeline for laptop-sized moduli:

* the modular-multiplication unitary ``U_a |x> = |a x mod N>`` built as an
  explicit permutation matrix over ``ceil(log2 N)`` qubits,
* quantum phase estimation over controlled powers ``U_a^(2^k)``,
* continued-fraction expansion of the measured phase to the order ``r``,
* the classical gcd step recovering the factors.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.algorithms.phase_estimation import phase_estimation_circuit
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.simulators.qasm_simulator import QasmSimulator


def modular_multiplication_unitary(a: int, modulus: int) -> np.ndarray:
    """The permutation matrix of ``x -> a x mod N`` (identity above N).

    Requires ``gcd(a, N) == 1`` so the map is a bijection on [0, N).
    """
    if modulus < 2:
        raise AlgorithmError("modulus must be at least 2")
    if math.gcd(a, modulus) != 1:
        raise AlgorithmError(f"{a} and {modulus} are not coprime")
    num_qubits = max(1, (modulus - 1).bit_length())
    dim = 2**num_qubits
    matrix = np.zeros((dim, dim), dtype=complex)
    for x in range(dim):
        if x < modulus:
            matrix[(a * x) % modulus, x] = 1.0
        else:
            matrix[x, x] = 1.0
    return matrix


def multiplicative_order(a: int, modulus: int) -> int:
    """Classical reference: smallest r > 0 with a^r = 1 (mod N)."""
    if math.gcd(a, modulus) != 1:
        raise AlgorithmError(f"{a} and {modulus} are not coprime")
    value = a % modulus
    order = 1
    while value != 1:
        value = (value * a) % modulus
        order += 1
        if order > modulus:
            raise AlgorithmError("order search exceeded the modulus")
    return order


def order_finding_circuit(a: int, modulus: int,
                          num_counting: int = None) -> QuantumCircuit:
    """QPE circuit whose phases are multiples of 1/ord(a)."""
    unitary = modular_multiplication_unitary(a, modulus)
    num_system = int(round(math.log2(unitary.shape[0])))
    if num_counting is None:
        num_counting = 2 * num_system + 1
    # Eigenstate preparation: |1> is a uniform combination of the order-r
    # eigenstates, so phases k/r appear with equal weight.
    prep = QuantumCircuit(num_system)
    prep.x(0)
    return phase_estimation_circuit(unitary, num_counting, prep)


def phase_to_order(phase: float, modulus: int,
                   max_denominator: int = None) -> int | None:
    """Continued-fraction step: recover a candidate order from a phase."""
    if max_denominator is None:
        max_denominator = modulus
    fraction = Fraction(phase).limit_denominator(max_denominator)
    if fraction.denominator == 0:
        return None
    return fraction.denominator or None


def find_order(a: int, modulus: int, shots: int = 32, seed=None,
               num_counting: int = None) -> int:
    """Quantum order finding: run QPE, post-process every measured phase.

    Returns the multiplicative order of ``a`` mod ``modulus``; raises when
    no measured phase yields it (increase shots/counting bits).
    """
    circuit = order_finding_circuit(a, modulus, num_counting)
    counting_bits = circuit.num_clbits
    outcome = QasmSimulator().run(circuit, shots=shots, seed=seed)
    candidates = set()
    for key, _count in sorted(
        outcome["counts"].items(), key=lambda kv: -kv[1]
    ):
        phase = int(key, 2) / 2**counting_bits
        if phase == 0:
            continue
        candidate = phase_to_order(phase, modulus)
        if not candidate or candidate < 2:
            continue
        # Candidates may be divisors of r; collect lcm-able values.
        candidates.add(candidate)
        if pow(a, candidate, modulus) == 1:
            return candidate
    # Try least common multiples of pairs (handles k/r with gcd(k, r) > 1).
    candidate_list = sorted(candidates)
    for i, first in enumerate(candidate_list):
        for second in candidate_list[i:]:
            combined = first * second // math.gcd(first, second)
            if combined <= modulus and pow(a, combined, modulus) == 1:
                return combined
    raise AlgorithmError(
        f"order finding failed for a={a}, N={modulus}; increase shots"
    )


def shor_factor(modulus: int, seed=None, max_attempts: int = 10) -> tuple:
    """Factor ``modulus`` via quantum order finding.

    Returns a nontrivial factor pair ``(p, q)``.  Handles the classical
    shortcuts (even numbers, perfect powers are not special-cased — bases
    are retried) and retries bases whose order is odd or unlucky.
    """
    if modulus < 4:
        raise AlgorithmError("modulus too small to factor")
    if modulus % 2 == 0:
        return 2, modulus // 2
    rng = np.random.default_rng(seed)
    for attempt in range(max_attempts):
        a = int(rng.integers(2, modulus - 1))
        shared = math.gcd(a, modulus)
        if shared > 1:
            return shared, modulus // shared  # lucky classical hit
        order = find_order(
            a, modulus, seed=None if seed is None else seed + attempt
        )
        if order % 2:
            continue  # odd order: pick another base
        half_power = pow(a, order // 2, modulus)
        if half_power == modulus - 1:
            continue  # a^(r/2) = -1: unlucky base
        factor = math.gcd(half_power - 1, modulus)
        if 1 < factor < modulus:
            return factor, modulus // factor
        factor = math.gcd(half_power + 1, modulus)
        if 1 < factor < modulus:
            return factor, modulus // factor
    raise AlgorithmError(f"failed to factor {modulus} in {max_attempts} tries")
