"""Variational forms (ansatz circuits) for VQE-style algorithms."""

from __future__ import annotations

from repro.circuit.parameter import Parameter
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError


def _entangle(circuit: QuantumCircuit, num_qubits: int, entanglement: str):
    if entanglement == "linear":
        pairs = [(i, i + 1) for i in range(num_qubits - 1)]
    elif entanglement == "circular":
        pairs = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
        if num_qubits == 2:
            pairs = [(0, 1)]
    elif entanglement == "full":
        pairs = [
            (i, j)
            for i in range(num_qubits)
            for j in range(i + 1, num_qubits)
        ]
    else:
        raise AlgorithmError(f"unknown entanglement pattern '{entanglement}'")
    for a, b in pairs:
        circuit.cx(a, b)


class VariationalForm:
    """A parameterized circuit template with a bind helper."""

    def __init__(self, circuit: QuantumCircuit, parameters):
        self.circuit = circuit
        self.parameters = list(parameters)

    @property
    def num_parameters(self) -> int:
        """Number of free parameters."""
        return len(self.parameters)

    def bind(self, values) -> QuantumCircuit:
        """Return the circuit with ``values`` substituted in order."""
        values = list(values)
        if len(values) != len(self.parameters):
            raise AlgorithmError(
                f"expected {len(self.parameters)} values, got {len(values)}"
            )
        return self.circuit.bind_parameters(dict(zip(self.parameters, values)))


def ry_ansatz(num_qubits: int, reps: int = 2,
              entanglement: str = "linear") -> VariationalForm:
    """Hardware-efficient RY ansatz: RY layers alternating with CNOTs.

    This is the hardware-efficient form of the paper's VQE reference [15].
    """
    circuit = QuantumCircuit(num_qubits)
    parameters = []
    index = 0
    for layer in range(reps + 1):
        for qubit in range(num_qubits):
            param = Parameter(f"θ[{index}]")
            parameters.append(param)
            circuit.ry(param, qubit)
            index += 1
        if layer < reps and num_qubits > 1:
            _entangle(circuit, num_qubits, entanglement)
    return VariationalForm(circuit, parameters)


def ryrz_ansatz(num_qubits: int, reps: int = 2,
                entanglement: str = "linear") -> VariationalForm:
    """RY+RZ (EfficientSU2-style) ansatz — spans all single-qubit rotations."""
    circuit = QuantumCircuit(num_qubits)
    parameters = []
    index = 0
    for layer in range(reps + 1):
        for qubit in range(num_qubits):
            theta = Parameter(f"θ[{index}]")
            phi = Parameter(f"φ[{index}]")
            parameters.extend([theta, phi])
            circuit.ry(theta, qubit)
            circuit.rz(phi, qubit)
            index += 1
        if layer < reps and num_qubits > 1:
            _entangle(circuit, num_qubits, entanglement)
    return VariationalForm(circuit, parameters)


def two_local(num_qubits: int, rotation: str = "ry", reps: int = 2,
              entanglement: str = "linear") -> VariationalForm:
    """Generic two-local ansatz with a chosen rotation axis."""
    if rotation == "ry":
        return ry_ansatz(num_qubits, reps, entanglement)
    if rotation == "ryrz":
        return ryrz_ansatz(num_qubits, reps, entanglement)
    if rotation in ("rx", "rz"):
        circuit = QuantumCircuit(num_qubits)
        parameters = []
        index = 0
        for layer in range(reps + 1):
            for qubit in range(num_qubits):
                param = Parameter(f"θ[{index}]")
                parameters.append(param)
                getattr(circuit, rotation)(param, qubit)
                index += 1
            if layer < reps and num_qubits > 1:
                _entangle(circuit, num_qubits, entanglement)
        return VariationalForm(circuit, parameters)
    raise AlgorithmError(f"unknown rotation layer '{rotation}'")
