"""Quantum phase estimation.

Estimates the eigenphase of a unitary on its eigenstate using controlled
powers of U and an inverse QFT over a counting register.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.qft import qft_circuit
from repro.circuit.library.standard_gates import (
    ControlledUnitaryGate,
    UnitaryGate,
)
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import AlgorithmError
from repro.simulators.qasm_simulator import QasmSimulator


def phase_estimation_circuit(unitary, num_counting: int,
                             eigenstate_prep=None) -> QuantumCircuit:
    """Build the QPE circuit.

    Args:
        unitary: dense matrix (or Gate) whose phase is measured.
        num_counting: counting-register width; resolution is 2**-width.
        eigenstate_prep: optional circuit preparing the eigenstate on the
            system register (defaults to |0...0>).
    """
    matrix = (
        unitary.to_matrix() if hasattr(unitary, "to_matrix")
        else np.asarray(unitary, dtype=complex)
    )
    num_system = int(round(np.log2(matrix.shape[0])))
    if 2**num_system != matrix.shape[0]:
        raise AlgorithmError("unitary dimension is not a power of two")
    total = num_counting + num_system
    circuit = QuantumCircuit(total, num_counting)
    system = list(range(num_counting, total))
    if eigenstate_prep is not None:
        circuit.compose(
            eigenstate_prep,
            qubits=[circuit.qubits[q] for q in system],
            inplace=True,
        )
    for qubit in range(num_counting):
        circuit.h(qubit)
    power = matrix
    for qubit in range(num_counting):
        gate = ControlledUnitaryGate(UnitaryGate(power, label=f"U^{2**qubit}"))
        circuit.append(gate, [[qubit] + system])
        power = power @ power
    inverse_qft = qft_circuit(num_counting, inverse=True)
    circuit.compose(
        inverse_qft,
        qubits=[circuit.qubits[q] for q in range(num_counting)],
        inplace=True,
    )
    for qubit in range(num_counting):
        circuit.measure(qubit, qubit)
    return circuit


def estimate_phase(unitary, num_counting: int = 5, eigenstate_prep=None,
                   shots: int = 2048, seed=None) -> float:
    """Run QPE and return the most likely phase in [0, 1)."""
    circuit = phase_estimation_circuit(unitary, num_counting, eigenstate_prep)
    outcome = QasmSimulator().run(circuit, shots=shots, seed=seed)
    counts = outcome["counts"]
    best = max(counts, key=counts.get)
    return int(best, 2) / 2**num_counting
