"""Model Hamiltonians: molecular hydrogen and transverse-field Ising chains.

The H2 coefficients are the standard 2-qubit (parity-reduced, STO-3G)
qubit Hamiltonian at the 0.735 Å equilibrium bond length used throughout
the VQE literature, including the paper's Ref. [15] lineage.
"""

from __future__ import annotations

from repro.quantum_info.pauli import PauliSumOp

#: Equilibrium-geometry H2, 2 qubits.  Exact ground energy ~ -1.85727503 Ha.
H2_EQUILIBRIUM_TERMS = {
    "II": -1.052373245772859,
    "IZ": 0.39793742484318045,
    "ZI": -0.39793742484318045,
    "ZZ": -0.01128010425623538,
    "XX": 0.18093119978423156,
}


def h2_hamiltonian() -> PauliSumOp:
    """Qubit Hamiltonian of H2 at the 0.735 Å equilibrium geometry.

    Only the equilibrium coefficients are shipped — they are the standard,
    independently verifiable values (exact ground energy -1.85727503 Ha);
    other bond distances would require electronic-structure integrals we do
    not fabricate here.  Parameter sweeps in the benchmarks use the
    :func:`transverse_ising` family instead.
    """
    return PauliSumOp.from_dict(H2_EQUILIBRIUM_TERMS)


def transverse_ising(num_qubits: int, coupling: float = 1.0,
                     field: float = 1.0, periodic: bool = False) -> PauliSumOp:
    """H = -J sum Z_i Z_{i+1} - h sum X_i."""
    terms = []
    limit = num_qubits if periodic else num_qubits - 1
    for i in range(limit):
        j = (i + 1) % num_qubits
        label = ["I"] * num_qubits
        label[num_qubits - 1 - i] = "Z"
        label[num_qubits - 1 - j] = "Z"
        terms.append((-coupling, "".join(label)))
    for i in range(num_qubits):
        label = ["I"] * num_qubits
        label[num_qubits - 1 - i] = "X"
        terms.append((-field, "".join(label)))
    return PauliSumOp(terms)


def heisenberg_chain(num_qubits: int, coupling: float = 1.0) -> PauliSumOp:
    """H = J sum (X X + Y Y + Z Z) on a line."""
    terms = []
    for i in range(num_qubits - 1):
        for axis in "XYZ":
            label = ["I"] * num_qubits
            label[num_qubits - 1 - i] = axis
            label[num_qubits - 2 - i] = axis
            terms.append((coupling, "".join(label)))
    return PauliSumOp(terms)
