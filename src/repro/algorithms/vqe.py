"""Variational Quantum Eigensolver — the flagship Aqua algorithm.

"Most notably, the Variational Quantum Eigensolver (VQE) algorithm [15] is
at the basis of many of Aqua's applications" (paper Sec. III).  The hybrid
loop: a parameterized ansatz prepares |psi(theta)>, the quantum resource
(here: a simulator) estimates <psi|H|psi>, and a classical optimizer updates
theta.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.ansatz import VariationalForm, ry_ansatz
from repro.algorithms.expectation import ExpectationEstimator
from repro.algorithms.optimizers import BatchableObjective, COBYLA, Optimizer
from repro.exceptions import AlgorithmError
from repro.quantum_info.pauli import PauliSumOp


class VQEResult:
    """Outcome of a VQE run."""

    def __init__(self, eigenvalue, optimal_point, optimizer_result,
                 evaluations):
        self.eigenvalue = float(eigenvalue)
        self.optimal_point = np.asarray(optimal_point, dtype=float)
        self.optimizer_result = optimizer_result
        self.evaluations = evaluations

    def __repr__(self):
        return (
            f"VQEResult(eigenvalue={self.eigenvalue:.8f}, "
            f"evaluations={self.evaluations})"
        )


class VQE:
    """Minimal-but-complete VQE driver.

    Args:
        hamiltonian: :class:`PauliSumOp` observable to minimize.
        ansatz: a :class:`VariationalForm`; defaults to a 2-rep RY ansatz.
        optimizer: an :class:`Optimizer`; defaults to COBYLA.
        mode: ``"exact"`` or ``"shots"`` expectation estimation.
        shots / seed / noise_model: passed to the estimator.
    """

    def __init__(self, hamiltonian: PauliSumOp, ansatz: VariationalForm = None,
                 optimizer: Optimizer = None, mode: str = "exact",
                 shots: int = 2048, seed=None, noise_model=None):
        self.hamiltonian = hamiltonian
        self.ansatz = ansatz or ry_ansatz(hamiltonian.num_qubits, reps=2)
        self.optimizer = optimizer or COBYLA(maxiter=500)
        self.estimator = ExpectationEstimator(
            hamiltonian, mode=mode, shots=shots, seed=seed,
            noise_model=noise_model,
        )
        self.seed = seed
        # Noise-free estimation exposes a vectorized objective: optimizers
        # that probe several points per step (SPSA) submit them as one
        # broadcast job instead of one estimate per point.
        self._estimator_v2 = None
        self._batched_evaluations = 0
        if noise_model is None:
            from repro.primitives import EstimatorV2

            self._estimator_v2 = EstimatorV2(
                mode=mode, default_shots=shots, seed=seed
            )

    def energy(self, values) -> float:
        """Objective: <H> at one parameter point."""
        bound = self.ansatz.bind(values)
        return self.estimator.estimate(bound)

    def energy_many(self, points) -> np.ndarray:
        """<H> at a batch of parameter points, as one broadcast job.

        Exact mode: entry ``b`` is bitwise identical to
        ``energy(points[b])``.  Shot mode: each point samples with its own
        seed derived from the VQE seed (a scalar :meth:`energy` loop
        reuses the same seed per call).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if self._estimator_v2 is None:
            return np.array([self.energy(point) for point in points])
        job = self._estimator_v2.run([
            (self.ansatz.circuit, self.hamiltonian, points,
             self.ansatz.parameters)
        ])
        self._batched_evaluations += points.shape[0]
        return job.result()[0].data.evs

    def run(self, initial_point=None) -> VQEResult:
        """Execute the hybrid optimization loop."""
        num_parameters = self.ansatz.num_parameters
        if num_parameters == 0:
            raise AlgorithmError("ansatz has no parameters to optimize")
        if initial_point is None:
            rng = np.random.default_rng(self.seed)
            initial_point = rng.uniform(-np.pi, np.pi, size=num_parameters)
        initial_point = np.asarray(initial_point, dtype=float)
        if initial_point.shape != (num_parameters,):
            raise AlgorithmError(
                f"initial point must have {num_parameters} entries"
            )
        objective = self.energy
        if self._estimator_v2 is not None:
            objective = BatchableObjective(self.energy, self.energy_many)
        outcome = self.optimizer.optimize(objective, initial_point)
        return VQEResult(
            outcome.fun, outcome.x, outcome,
            self.estimator.evaluations + self._batched_evaluations,
        )


def exact_ground_energy(hamiltonian: PauliSumOp) -> float:
    """Reference value by dense diagonalization."""
    return hamiltonian.ground_state_energy()
