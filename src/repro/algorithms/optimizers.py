"""Classical optimizers for variational algorithms (VQE, QAOA).

The paper highlights that "tuning this algorithm (e.g. specifying the
optimization procedure to be used by the algorithm) can be done by the
user"; these are the procedures.  SPSA is the noise-robust default for
shot-based backends; the scipy wrappers (COBYLA, Nelder-Mead, Powell) suit
exact statevector objectives.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize as scipy_minimize

from repro.exceptions import AlgorithmError


class OptimizerResult:
    """Outcome of one optimization run."""

    def __init__(self, x, fun, nfev, nit, history=None):
        self.x = np.asarray(x, dtype=float)
        self.fun = float(fun)
        self.nfev = int(nfev)
        self.nit = int(nit)
        #: Objective value per iteration, when the optimizer records it.
        self.history = list(history or [])

    def __repr__(self):
        return (
            f"OptimizerResult(fun={self.fun:.6g}, nfev={self.nfev}, "
            f"nit={self.nit})"
        )


class Optimizer:
    """Base optimizer interface."""

    def optimize(self, objective, initial_point) -> OptimizerResult:
        """Minimize ``objective`` starting from ``initial_point``."""
        raise NotImplementedError


class BatchableObjective:
    """A scalar objective with a vectorized batch hook.

    Optimizers that evaluate several points per step (SPSA's calibration
    and its plus/minus gradient pairs) look for an ``evaluate_many``
    attribute — a callable mapping a ``(k, num_parameters)`` array to
    ``k`` objective values — and submit those points as one batch instead
    of ``k`` sequential calls.  VQE and QAOA wire this to the broadcast
    estimator primitive, turning every SPSA iteration into a single
    broadcast job.
    """

    def __init__(self, scalar, many):
        self._scalar = scalar
        self.evaluate_many = many

    def __call__(self, point):
        return self._scalar(point)


class SPSA(Optimizer):
    """Simultaneous Perturbation Stochastic Approximation.

    Estimates the gradient from two objective evaluations regardless of
    dimension, which tolerates the sampling noise of shot-based expectation
    values — the workhorse behind hardware VQE runs like the paper's
    Ref. [15].
    """

    def __init__(self, maxiter=150, a=None, c=0.1, alpha=0.602, gamma=0.101,
                 stability=None, seed=None, target_update=0.2,
                 calibration_samples=10):
        self.maxiter = maxiter
        self.a = a  # None -> calibrate from the objective's local variation
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability = stability if stability is not None else maxiter / 10
        self.seed = seed
        self.target_update = target_update
        self.calibration_samples = calibration_samples

    @staticmethod
    def _evaluate(objective, many, points) -> list[float]:
        """Evaluate points — one batched call when the hook is present.

        The scalar path evaluates in list order, so both paths see the
        same points in the same sequence.
        """
        if many is not None:
            values = np.asarray(many(np.asarray(points, dtype=float)),
                                dtype=float)
            return [float(value) for value in values]
        return [float(objective(point)) for point in points]

    def _calibrate(self, objective, many, x, rng) -> tuple[float, int]:
        """Choose ``a`` so the first update moves ~``target_update`` rad.

        All plus/minus probes go out as one batch: the deltas are drawn
        first (same RNG consumption order as the sequential path — the
        objective never touches this RNG), then evaluated together.
        """
        points = []
        for _ in range(self.calibration_samples):
            delta = rng.choice([-1.0, 1.0], size=x.shape)
            points.append(x + self.c * delta)
            points.append(x - self.c * delta)
        values = self._evaluate(objective, many, points)
        magnitudes = [
            abs(values[2 * i] - values[2 * i + 1]) / (2 * self.c)
            for i in range(self.calibration_samples)
        ]
        average = float(np.mean(magnitudes)) or 1.0
        a = self.target_update * (self.stability + 1) ** self.alpha / average
        return a, 2 * self.calibration_samples

    def optimize(self, objective, initial_point) -> OptimizerResult:
        rng = np.random.default_rng(self.seed)
        many = getattr(objective, "evaluate_many", None)
        x = np.asarray(initial_point, dtype=float).copy()
        nfev = 0
        history = []
        if self.a is None:
            a, extra = self._calibrate(objective, many, x, rng)
            nfev += extra
        else:
            a = self.a
        best_x = x.copy()
        best_value = None
        for k in range(self.maxiter):
            ak = a / (k + 1 + self.stability) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = rng.choice([-1.0, 1.0], size=x.shape)
            plus, minus = self._evaluate(
                objective, many, [x + ck * delta, x - ck * delta]
            )
            nfev += 2
            gradient = (plus - minus) / (2 * ck) * delta
            x = x - ak * gradient
            observed = min(plus, minus)
            history.append(observed)
            if best_value is None or observed < best_value:
                best_value = observed
                best_x = x.copy()
        final = self._evaluate(objective, many, [x])[0]
        nfev += 1
        history.append(final)
        if best_value is not None and best_value < final:
            # Re-evaluate the best iterate seen; sampling noise may have
            # flattered it, so keep whichever re-measures lower.
            recheck = self._evaluate(objective, many, [best_x])[0]
            nfev += 1
            if recheck < final:
                return OptimizerResult(
                    best_x, recheck, nfev, self.maxiter, history
                )
        return OptimizerResult(x, final, nfev, self.maxiter, history)


class GradientDescent(Optimizer):
    """Finite-difference gradient descent with a fixed learning rate."""

    def __init__(self, maxiter=100, learning_rate=0.1, epsilon=1e-6,
                 tol=1e-8):
        self.maxiter = maxiter
        self.learning_rate = learning_rate
        self.epsilon = epsilon
        self.tol = tol

    def optimize(self, objective, initial_point) -> OptimizerResult:
        x = np.asarray(initial_point, dtype=float).copy()
        nfev = 0
        history = []
        value = objective(x)
        nfev += 1
        for iteration in range(self.maxiter):
            gradient = np.zeros_like(x)
            for i in range(x.size):
                shifted = x.copy()
                shifted[i] += self.epsilon
                gradient[i] = (objective(shifted) - value) / self.epsilon
                nfev += 1
            x = x - self.learning_rate * gradient
            new_value = objective(x)
            nfev += 1
            history.append(new_value)
            if abs(new_value - value) < self.tol:
                value = new_value
                break
            value = new_value
        return OptimizerResult(x, value, nfev, len(history), history)


class ParameterShiftDescent(Optimizer):
    """Gradient descent via the parameter-shift rule (exact gradients for
    circuits built from Pauli rotations)."""

    def __init__(self, maxiter=100, learning_rate=0.2, tol=1e-10):
        self.maxiter = maxiter
        self.learning_rate = learning_rate
        self.tol = tol

    def optimize(self, objective, initial_point) -> OptimizerResult:
        x = np.asarray(initial_point, dtype=float).copy()
        shift = np.pi / 2
        nfev = 0
        history = []
        value = objective(x)
        nfev += 1
        for iteration in range(self.maxiter):
            gradient = np.zeros_like(x)
            for i in range(x.size):
                plus = x.copy()
                plus[i] += shift
                minus = x.copy()
                minus[i] -= shift
                gradient[i] = (objective(plus) - objective(minus)) / 2.0
                nfev += 2
            x = x - self.learning_rate * gradient
            new_value = objective(x)
            nfev += 1
            history.append(new_value)
            if abs(new_value - value) < self.tol:
                value = new_value
                break
            value = new_value
        return OptimizerResult(x, value, nfev, len(history), history)


class ScipyOptimizer(Optimizer):
    """Wrapper over :func:`scipy.optimize.minimize`."""

    def __init__(self, method="COBYLA", maxiter=500, **options):
        self.method = method
        self.options = {"maxiter": maxiter, **options}

    def optimize(self, objective, initial_point) -> OptimizerResult:
        history = []

        def wrapped(x):
            value = float(objective(np.asarray(x, dtype=float)))
            history.append(value)
            return value

        outcome = scipy_minimize(
            wrapped,
            np.asarray(initial_point, dtype=float),
            method=self.method,
            options=self.options,
        )
        return OptimizerResult(
            outcome.x, outcome.fun, outcome.get("nfev", len(history)),
            outcome.get("nit", 0), history,
        )


def COBYLA(maxiter=500, **options) -> ScipyOptimizer:
    """Constrained optimization by linear approximation."""
    return ScipyOptimizer("COBYLA", maxiter=maxiter, **options)


def NelderMead(maxiter=500, **options) -> ScipyOptimizer:
    """Downhill-simplex method."""
    return ScipyOptimizer("Nelder-Mead", maxiter=maxiter, **options)


def Powell(maxiter=500, **options) -> ScipyOptimizer:
    """Powell's conjugate-direction method."""
    return ScipyOptimizer("Powell", maxiter=maxiter, **options)


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Look up an optimizer by name."""
    registry = {
        "spsa": SPSA,
        "cobyla": COBYLA,
        "nelder-mead": NelderMead,
        "powell": Powell,
        "gradient": GradientDescent,
        "parameter-shift": ParameterShiftDescent,
    }
    key = name.lower()
    if key not in registry:
        raise AlgorithmError(f"unknown optimizer '{name}'")
    return registry[key](**kwargs)
