"""Exception hierarchy for the repro tool chain.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch a single base class.  Subpackages raise the more specific
subclasses defined here.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuit construction or manipulation."""


class QasmError(ReproError):
    """Raised for OpenQASM 2.0 lexing, parsing, or export problems."""


class SimulatorError(ReproError):
    """Raised when a simulator cannot execute the given circuit."""


class TranspilerError(ReproError):
    """Raised when a transpiler pass fails or receives bad input."""


class BackendError(ReproError):
    """Raised for provider/backend/job lifecycle problems."""


class JobTimeoutError(BackendError):
    """Raised when ``Job.result(timeout=...)`` exceeds its deadline.

    Every executor (serial, threads, processes) raises this same type, so
    callers can handle timeouts uniformly.  The job is left collectable:
    calling ``result()`` again resumes/awaits the remaining experiments
    (or ``result(timeout=..., partial=True)`` returns whatever finished).
    """


class TransientFaultError(BackendError):
    """A transient, retryable experiment failure.

    Models the flaky-cloud-job class of errors (queue hiccups, dropped
    connections) that the real IBM Q service exhibits; the retry layer
    classifies this type as retryable, so the affected experiment is
    re-run with its original derived seed.
    """


class WorkerCrashError(BackendError):
    """A worker died mid-experiment.

    In a process pool a crash surfaces as a broken pool (the dispatcher
    degrades processes -> threads -> serial); in-process executors raise
    this retryable type instead, since the interpreter cannot actually be
    killed without taking the whole batch down.
    """


class CorruptedResultError(BackendError):
    """An experiment returned an inconsistent payload.

    Raised by the result-validation step of the retry layer when, e.g.,
    the counts histogram does not sum to the requested shots.  Retryable:
    re-running with the same seed regenerates the payload from scratch.
    """


class QueueFullError(BackendError):
    """The runtime service refused a submission: the queue is at capacity.

    Admission control protects the service from unbounded backlog —
    per-tenant and global queue-depth / queued-shots limits reject new
    work instead of letting wait times grow without bound.  The
    ``retry_after`` attribute carries a deterministic hint (seconds),
    derived from the current backlog and the service's observed job
    duration, after which a resubmission is likely to be admitted.
    ``submit(..., wait=True)`` blocks for capacity instead of raising.
    """

    def __init__(self, message, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExpiredError(BackendError):
    """A runtime job's deadline passed before it could finish.

    Jobs submitted with ``deadline=<seconds>`` expire at dequeue (the
    scheduler drops them without dispatching) or mid-run (a cooperative
    cancel at the next shot-chunk boundary; chunks delivered before the
    deadline are kept and collectable).  The terminal state is
    ``EXPIRED``, persisted to the job ledger.
    """


class JobQuarantinedError(BackendError):
    """A runtime job was moved to the dead-letter quarantine.

    The job's experiments exhausted their retry budget across every
    service-level attempt — re-running it unchanged would poison a
    worker again.  The quarantine record in the job ledger keeps the
    full fault ledger for diagnosis; ``RuntimeService.requeue(job_id)``
    re-submits it (optionally with corrected options) after the
    operator fixes the underlying issue.
    """


class AlgorithmError(ReproError):
    """Raised by application-level (Aqua-like) algorithms."""


class IgnisError(ReproError):
    """Raised by characterization/mitigation (Ignis-like) routines."""


class DDError(ReproError):
    """Raised by the decision-diagram package."""


class NoiseError(ReproError):
    """Raised for invalid noise-model construction."""


class VisualizationError(ReproError):
    """Raised when a drawer cannot render the requested object."""
