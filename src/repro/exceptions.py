"""Exception hierarchy for the repro tool chain.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch a single base class.  Subpackages raise the more specific
subclasses defined here.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuit construction or manipulation."""


class QasmError(ReproError):
    """Raised for OpenQASM 2.0 lexing, parsing, or export problems."""


class SimulatorError(ReproError):
    """Raised when a simulator cannot execute the given circuit."""


class TranspilerError(ReproError):
    """Raised when a transpiler pass fails or receives bad input."""


class BackendError(ReproError):
    """Raised for provider/backend/job lifecycle problems."""


class JobTimeoutError(BackendError):
    """Raised when ``Job.result(timeout=...)`` exceeds its deadline.

    Every executor (serial, threads, processes) raises this same type, so
    callers can handle timeouts uniformly.  The job is left collectable:
    calling ``result()`` again resumes/awaits the remaining experiments
    (or ``result(timeout=..., partial=True)`` returns whatever finished).
    """


class TransientFaultError(BackendError):
    """A transient, retryable experiment failure.

    Models the flaky-cloud-job class of errors (queue hiccups, dropped
    connections) that the real IBM Q service exhibits; the retry layer
    classifies this type as retryable, so the affected experiment is
    re-run with its original derived seed.
    """


class WorkerCrashError(BackendError):
    """A worker died mid-experiment.

    In a process pool a crash surfaces as a broken pool (the dispatcher
    degrades processes -> threads -> serial); in-process executors raise
    this retryable type instead, since the interpreter cannot actually be
    killed without taking the whole batch down.
    """


class CorruptedResultError(BackendError):
    """An experiment returned an inconsistent payload.

    Raised by the result-validation step of the retry layer when, e.g.,
    the counts histogram does not sum to the requested shots.  Retryable:
    re-running with the same seed regenerates the payload from scratch.
    """


class AlgorithmError(ReproError):
    """Raised by application-level (Aqua-like) algorithms."""


class IgnisError(ReproError):
    """Raised by characterization/mitigation (Ignis-like) routines."""


class DDError(ReproError):
    """Raised by the decision-diagram package."""


class NoiseError(ReproError):
    """Raised for invalid noise-model construction."""


class VisualizationError(ReproError):
    """Raised when a drawer cannot render the requested object."""
