"""Physics-level pulse simulation of transmon qubits.

Integrates the Schrödinger equation in the drive's rotating frame (RWA):

    H(t)/hbar = (Delta/2) sigma_z
              + (rabi_rate/2) (Re[d(t)] sigma_x + Im[d(t)] sigma_y)

where ``Delta = qubit_freq - drive_freq`` and ``d(t)`` is the complex
waveform envelope.  Qubits are uncoupled (single-qubit pulse physics: Rabi
flopping, detuning, virtual-Z frames) — enough to calibrate amplitudes and
reproduce pulse-level experiments without a cloud device.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.exceptions import SimulatorError
from repro.pulse.schedule import Delay, Play, Schedule, ShiftPhase
from repro.pulse.waveforms import PulseError

_SX = np.array([[0, 1], [1, 0]], dtype=complex)
_SY = np.array([[0, -1j], [1j, 0]], dtype=complex)
_SZ = np.array([[1, 0], [0, -1]], dtype=complex)


class TransmonQubit:
    """Static parameters of one simulated qubit."""

    def __init__(self, frequency: float = 5.0, rabi_rate: float = 0.1):
        """``frequency`` in GHz-like units; ``rabi_rate`` sets how strongly
        a unit-amplitude drive rotates the qubit (radians per sample at
        amplitude 1 is ``rabi_rate``)."""
        self.frequency = frequency
        self.rabi_rate = rabi_rate


class PulseSimulator:
    """Evolves qubits through a :class:`Schedule`."""

    def __init__(self, qubits, dt: float = 1.0):
        """``qubits``: list of :class:`TransmonQubit`; ``dt``: sample time."""
        self.qubits = list(qubits)
        self.dt = dt

    def run(self, schedule: Schedule, drive_frequencies=None) -> np.ndarray:
        """Return the list of final single-qubit states (each from |0>).

        Args:
            schedule: the pulse program.
            drive_frequencies: per-qubit drive (LO) frequency; defaults to
                each qubit's resonance (zero detuning).
        """
        num_qubits = len(self.qubits)
        if drive_frequencies is None:
            drive_frequencies = [q.frequency for q in self.qubits]
        states = [np.array([1.0, 0.0], dtype=complex)
                  for _ in range(num_qubits)]
        # Build each qubit's envelope timeline.
        total = schedule.duration
        envelopes = np.zeros((num_qubits, total), dtype=complex)
        phases = np.zeros(num_qubits)
        # Apply instructions channel-wise in time order; ShiftPhase rotates
        # the frame of everything played after it.
        for start, instruction in schedule.instructions:
            channel = instruction.channel
            qubit = channel.qubit
            if qubit >= num_qubits:
                raise SimulatorError(
                    f"schedule drives qubit {qubit} but only "
                    f"{num_qubits} are configured"
                )
            if isinstance(instruction, ShiftPhase):
                phases[qubit] += instruction.phase
            elif isinstance(instruction, Play):
                stop = start + instruction.duration
                if stop > total:
                    raise SimulatorError("instruction exceeds schedule span")
                envelopes[qubit, start:stop] += (
                    instruction.waveform.samples
                    * np.exp(1j * phases[qubit])
                )
            elif isinstance(instruction, Delay):
                continue
            else:
                raise SimulatorError(
                    f"unsupported pulse instruction {instruction!r}"
                )
        for index, qubit in enumerate(self.qubits):
            detuning = qubit.frequency - drive_frequencies[index]
            states[index] = self._evolve_single(
                states[index], envelopes[index], detuning, qubit.rabi_rate
            )
        return states

    def _evolve_single(self, state, envelope, detuning, rabi_rate):
        """Per-sample piecewise-constant integration."""
        drift = 2 * np.pi * detuning / 2.0 * _SZ
        for sample in envelope:
            hamiltonian = drift + rabi_rate / 2.0 * (
                sample.real * _SX + sample.imag * _SY
            )
            state = expm(-1j * hamiltonian * self.dt) @ state
        return state

    def excited_population(self, schedule: Schedule,
                           drive_frequencies=None) -> list[float]:
        """P(|1>) per qubit after the schedule."""
        states = self.run(schedule, drive_frequencies)
        return [float(abs(state[1]) ** 2) for state in states]
