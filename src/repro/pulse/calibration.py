"""Pulse-level calibration experiments.

The hardware-characterization workflows that sit beneath gate-level
operation: a Rabi amplitude sweep fits the oscillation
``P(1) = A (1 - cos(2 pi amp / period)) / 2`` and reads off the pi-pulse
amplitude; a detuning (frequency) sweep locates the qubit resonance.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import curve_fit

from repro.pulse.schedule import DriveChannel, Play, Schedule
from repro.pulse.simulator import PulseSimulator, TransmonQubit
from repro.pulse.waveforms import gaussian


def rabi_schedule(amplitude: float, qubit: int = 0, duration: int = 64,
                  sigma: float = 16.0) -> Schedule:
    """One Rabi point: a Gaussian drive of the given amplitude."""
    schedule = Schedule(name=f"rabi(amp={amplitude:.3f})")
    schedule.append(
        Play(gaussian(duration, amplitude, sigma), DriveChannel(qubit))
    )
    return schedule


def rabi_experiment(simulator: PulseSimulator, amplitudes, qubit: int = 0,
                    duration: int = 64, sigma: float = 16.0):
    """Sweep drive amplitude, return P(|1>) per amplitude."""
    populations = []
    for amplitude in amplitudes:
        schedule = rabi_schedule(amplitude, qubit, duration, sigma)
        populations.append(
            simulator.excited_population(schedule)[qubit]
        )
    return list(amplitudes), populations


def fit_rabi(amplitudes, populations) -> float:
    """Fit the Rabi oscillation; returns the pi-pulse amplitude."""
    amplitudes = np.asarray(amplitudes, dtype=float)
    populations = np.asarray(populations, dtype=float)

    def model(amp, scale, period, offset):
        return scale * (1 - np.cos(2 * np.pi * amp / period)) / 2 + offset

    # Initial period guess from the first maximum.
    peak = amplitudes[int(np.argmax(populations))]
    initial = (1.0, max(2 * peak, 1e-3), 0.0)
    params, _cov = curve_fit(
        model, amplitudes, populations, p0=initial, maxfev=20_000
    )
    period = abs(params[1])
    return period / 2.0


def frequency_sweep(simulator: PulseSimulator, detunings, qubit: int = 0,
                    amplitude: float = 0.3, duration: int = 64,
                    sigma: float = 16.0):
    """Drive at a range of detunings; resonance maximizes P(|1>)."""
    resonance = simulator.qubits[qubit].frequency
    populations = []
    for detuning in detunings:
        schedule = rabi_schedule(amplitude, qubit, duration, sigma)
        frequencies = [q.frequency for q in simulator.qubits]
        frequencies[qubit] = resonance - detuning
        populations.append(
            simulator.excited_population(schedule, frequencies)[qubit]
        )
    return list(detunings), populations


def calibrate_pi_amplitude(rabi_rate: float = 0.1, duration: int = 64,
                           sigma: float = 16.0, points: int = 30):
    """End-to-end Rabi calibration on a fresh simulated qubit.

    Returns ``(pi_amplitude, residual_error)`` where the residual is
    |P(1) - 1| when driving at the fitted pi amplitude.
    """
    simulator = PulseSimulator([TransmonQubit(rabi_rate=rabi_rate)])
    amplitudes = np.linspace(0.02, 1.0, points)
    _amps, populations = rabi_experiment(
        simulator, amplitudes, duration=duration, sigma=sigma
    )
    pi_amplitude = fit_rabi(amplitudes, populations)
    check = simulator.excited_population(
        rabi_schedule(pi_amplitude, duration=duration, sigma=sigma)
    )[0]
    return float(pi_amplitude), float(abs(check - 1.0))
