"""OpenPulse-style pulse layer: waveforms, schedules, physics simulation."""

from repro.pulse.calibration import (
    calibrate_pi_amplitude,
    fit_rabi,
    frequency_sweep,
    rabi_experiment,
    rabi_schedule,
)
from repro.pulse.schedule import Delay, DriveChannel, Play, Schedule, ShiftPhase
from repro.pulse.simulator import PulseSimulator, TransmonQubit
from repro.pulse.waveforms import (
    PulseError,
    Waveform,
    constant,
    drag,
    gaussian,
    gaussian_square,
)

__all__ = [
    "Delay", "DriveChannel", "Play", "PulseError", "PulseSimulator",
    "Schedule", "ShiftPhase", "TransmonQubit", "Waveform",
    "calibrate_pi_amplitude", "constant", "drag", "fit_rabi",
    "frequency_sweep", "gaussian", "gaussian_square", "rabi_experiment",
    "rabi_schedule",
]
