"""Pulse schedules: time-ordered instructions on drive channels."""

from __future__ import annotations

from repro.pulse.waveforms import PulseError, Waveform


class DriveChannel:
    """The microwave drive line of one qubit."""

    __slots__ = ("qubit",)

    def __init__(self, qubit: int):
        if qubit < 0:
            raise PulseError("qubit index must be non-negative")
        self.qubit = qubit

    def __eq__(self, other):
        return isinstance(other, DriveChannel) and self.qubit == other.qubit

    def __hash__(self):
        return hash(("drive", self.qubit))

    def __repr__(self):
        return f"DriveChannel({self.qubit})"


class Play:
    """Play a waveform on a channel."""

    def __init__(self, waveform: Waveform, channel: DriveChannel):
        self.waveform = waveform
        self.channel = channel
        self.duration = waveform.duration

    def __repr__(self):
        return f"Play({self.waveform.name}, {self.channel})"


class Delay:
    """Idle a channel for a number of samples."""

    def __init__(self, duration: int, channel: DriveChannel):
        if duration < 0:
            raise PulseError("delay must be non-negative")
        self.duration = duration
        self.channel = channel

    def __repr__(self):
        return f"Delay({self.duration}, {self.channel})"


class ShiftPhase:
    """Shift the frame phase of a channel (virtual-Z)."""

    def __init__(self, phase: float, channel: DriveChannel):
        self.phase = float(phase)
        self.channel = channel
        self.duration = 0

    def __repr__(self):
        return f"ShiftPhase({self.phase:.4f}, {self.channel})"


class Schedule:
    """A time-ordered pulse program.

    Instructions are appended per channel; each channel has its own clock
    and ``append`` places the instruction at that channel's current end.
    """

    def __init__(self, name=None):
        self.name = name or "schedule"
        self._timeline: list[tuple[int, object]] = []
        self._channel_ends: dict = {}

    def append(self, instruction) -> "Schedule":
        """Schedule ``instruction`` at its channel's current end time."""
        channel = instruction.channel
        start = self._channel_ends.get(channel, 0)
        self._timeline.append((start, instruction))
        self._channel_ends[channel] = start + instruction.duration
        return self

    def insert(self, start: int, instruction) -> "Schedule":
        """Schedule ``instruction`` at an explicit start time."""
        if start < 0:
            raise PulseError("start time must be non-negative")
        channel = instruction.channel
        self._timeline.append((start, instruction))
        end = start + instruction.duration
        self._channel_ends[channel] = max(
            self._channel_ends.get(channel, 0), end
        )
        return self

    @property
    def duration(self) -> int:
        """Total schedule length in samples."""
        return max(self._channel_ends.values(), default=0)

    @property
    def instructions(self) -> list:
        """(start_time, instruction) pairs in time order."""
        return sorted(self._timeline, key=lambda pair: pair[0])

    @property
    def channels(self) -> set:
        """Channels used by the schedule."""
        return set(self._channel_ends)

    def __repr__(self):
        return (
            f"Schedule({self.name}, duration={self.duration}, "
            f"instructions={len(self._timeline)})"
        )
