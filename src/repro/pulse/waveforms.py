"""Pulse envelopes (OpenPulse-style waveforms).

The paper's Terra section: circuits can be specified "at the pulse levels
through OpenPulse [19]".  A waveform is a list of complex samples at a
fixed sample period ``dt``; the real part drives the in-phase (X) axis and
the imaginary part the quadrature (Y) axis in the rotating frame.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError


class PulseError(ReproError):
    """Raised for invalid pulse construction or scheduling."""


class Waveform:
    """A sampled complex pulse envelope."""

    def __init__(self, samples, name=None):
        self.samples = np.asarray(samples, dtype=complex).ravel()
        if self.samples.size == 0:
            raise PulseError("waveform needs at least one sample")
        if np.abs(self.samples).max() > 1.0 + 1e-9:
            raise PulseError("waveform amplitude must not exceed 1")
        self.name = name or "waveform"

    @property
    def duration(self) -> int:
        """Length in samples."""
        return self.samples.size

    def __repr__(self):
        return f"Waveform({self.name}, duration={self.duration})"


def constant(duration: int, amplitude: complex, name=None) -> Waveform:
    """A flat-top pulse."""
    if duration < 1:
        raise PulseError("duration must be positive")
    return Waveform(
        np.full(duration, amplitude, dtype=complex), name or "const"
    )


def gaussian(duration: int, amplitude: complex, sigma: float,
             name=None) -> Waveform:
    """A Gaussian envelope centered on the pulse midpoint."""
    if duration < 1 or sigma <= 0:
        raise PulseError("invalid gaussian parameters")
    times = np.arange(duration)
    center = (duration - 1) / 2
    envelope = np.exp(-0.5 * ((times - center) / sigma) ** 2)
    return Waveform(amplitude * envelope, name or "gauss")


def gaussian_square(duration: int, amplitude: complex, sigma: float,
                    width: int, name=None) -> Waveform:
    """Flat top with Gaussian rising and falling edges."""
    if width >= duration:
        raise PulseError("flat width must be shorter than the duration")
    edge = (duration - width) / 2
    times = np.arange(duration)
    envelope = np.ones(duration)
    rising = times < edge
    falling = times >= edge + width
    envelope[rising] = np.exp(-0.5 * ((times[rising] - edge) / sigma) ** 2)
    envelope[falling] = np.exp(
        -0.5 * ((times[falling] - (edge + width)) / sigma) ** 2
    )
    return Waveform(amplitude * envelope, name or "gauss_square")


def drag(duration: int, amplitude: complex, sigma: float, beta: float,
         name=None) -> Waveform:
    """DRAG pulse: Gaussian with a derivative quadrature correction.

    The beta-weighted imaginary component suppresses leakage/phase errors —
    one of the Ignis-flavoured "pulse schemes for mitigation of systematic
    gate-implementation errors" the paper mentions.
    """
    base = gaussian(duration, 1.0, sigma).samples.real
    times = np.arange(duration)
    center = (duration - 1) / 2
    derivative = -(times - center) / sigma**2 * base
    samples = amplitude * (base + 1j * beta * derivative)
    peak = np.abs(samples).max()
    if peak > 1.0:
        samples = samples / peak
    return Waveform(samples, name or "drag")
