"""Measurement-error mitigation (Ignis, paper Sec. III).

Calibrate the readout confusion matrix by preparing every computational
basis state, then invert it (least squares with a physicality constraint) to
un-scramble measured histograms.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.optimize import nnls

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import IgnisError


def complete_measurement_calibration(num_qubits: int):
    """Calibration circuits preparing each of the 2**n basis states.

    Returns ``(circuits, labels)``; labels are bitstrings (qubit 0
    rightmost) naming the prepared state.
    """
    if num_qubits < 1:
        raise IgnisError("need at least one qubit")
    circuits = []
    labels = []
    for index in range(2**num_qubits):
        label = format(index, f"0{num_qubits}b")
        circuit = QuantumCircuit(num_qubits, num_qubits,
                                 name=f"cal_{label}")
        for qubit in range(num_qubits):
            if (index >> qubit) & 1:
                circuit.x(qubit)
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
        circuits.append(circuit)
        labels.append(label)
    return circuits, labels


class MeasurementFilter:
    """Applies the inverse confusion matrix to measured counts."""

    def __init__(self, confusion_matrix: np.ndarray, labels):
        self._matrix = np.asarray(confusion_matrix, dtype=float)
        self._labels = list(labels)
        dim = len(self._labels)
        if self._matrix.shape != (dim, dim):
            raise IgnisError("confusion matrix shape mismatch")

    @property
    def confusion_matrix(self) -> np.ndarray:
        """M[i, j] = P(measure labels[i] | prepared labels[j])."""
        return self._matrix.copy()

    def apply(self, counts: dict, method: str = "least_squares") -> dict:
        """Mitigate a counts dictionary.

        ``method`` is ``"least_squares"`` (non-negative, recommended) or
        ``"pseudo_inverse"`` (fast, may go negative).
        """
        total = sum(counts.values())
        if total == 0:
            raise IgnisError("empty counts")
        measured = np.array(
            [counts.get(label, 0) / total for label in self._labels]
        )
        if method == "pseudo_inverse":
            mitigated = np.linalg.pinv(self._matrix) @ measured
        elif method == "least_squares":
            mitigated, _residual = nnls(self._matrix, measured)
        else:
            raise IgnisError(f"unknown mitigation method '{method}'")
        norm = mitigated.sum()
        if norm <= 0:
            raise IgnisError("mitigation produced a null distribution")
        mitigated = mitigated / norm
        return {
            label: float(probability * total)
            for label, probability in zip(self._labels, mitigated)
            if probability > 1e-12
        }


class CompleteMeasurementFitter:
    """Builds a :class:`MeasurementFilter` from calibration counts."""

    def __init__(self, calibration_counts, labels):
        """``calibration_counts[i]`` are the counts measured when state
        ``labels[i]`` was prepared."""
        self._labels = list(labels)
        dim = len(self._labels)
        if len(calibration_counts) != dim:
            raise IgnisError("one counts dict per prepared label required")
        matrix = np.zeros((dim, dim))
        index_of = {label: i for i, label in enumerate(self._labels)}
        for j, counts in enumerate(calibration_counts):
            total = sum(counts.values())
            if total == 0:
                raise IgnisError(f"empty calibration counts for column {j}")
            for outcome, value in counts.items():
                if outcome not in index_of:
                    raise IgnisError(f"unexpected outcome '{outcome}'")
                matrix[index_of[outcome], j] = value / total
        self._matrix = matrix

    @property
    def confusion_matrix(self) -> np.ndarray:
        """The fitted confusion matrix."""
        return self._matrix.copy()

    @property
    def readout_fidelity(self) -> float:
        """Mean of the diagonal: P(correct outcome)."""
        return float(np.mean(np.diag(self._matrix)))

    @property
    def filter(self) -> MeasurementFilter:
        """The mitigation filter."""
        return MeasurementFilter(self._matrix, self._labels)


def tensored_calibration(num_qubits: int):
    """Two-circuit calibration (all-zeros, all-ones) for per-qubit models."""
    zeros = QuantumCircuit(num_qubits, num_qubits, name="cal_zeros")
    for qubit in range(num_qubits):
        zeros.measure(qubit, qubit)
    ones = QuantumCircuit(num_qubits, num_qubits, name="cal_ones")
    for qubit in range(num_qubits):
        ones.x(qubit)
    for qubit in range(num_qubits):
        ones.measure(qubit, qubit)
    return [zeros, ones]


class TensoredMeasurementFitter:
    """Per-qubit 2x2 confusion matrices from the two-circuit calibration."""

    def __init__(self, zeros_counts: dict, ones_counts: dict,
                 num_qubits: int):
        self._num_qubits = num_qubits
        self._matrices = []
        for qubit in range(num_qubits):
            p1_given0 = self._marginal_one(zeros_counts, qubit)
            p1_given1 = self._marginal_one(ones_counts, qubit)
            self._matrices.append(
                np.array(
                    [[1 - p1_given0, 1 - p1_given1], [p1_given0, p1_given1]]
                )
            )

    @staticmethod
    def _marginal_one(counts, qubit) -> float:
        from repro.providers.result import Counts

        marginal = Counts(counts).marginal([qubit])
        total = sum(marginal.values())
        return marginal.get("1", 0) / total

    def qubit_matrix(self, qubit: int) -> np.ndarray:
        """The 2x2 confusion matrix of one qubit."""
        return self._matrices[qubit].copy()

    @property
    def filter(self) -> MeasurementFilter:
        """Full filter as the tensor product of per-qubit matrices."""
        full = np.array([[1.0]])
        for matrix in self._matrices:  # qubit i becomes bit i (kron left)
            full = np.kron(matrix, full)
        labels = [
            "".join(bits)
            for bits in itertools.product("01", repeat=self._num_qubits)
        ]
        return MeasurementFilter(full, labels)
