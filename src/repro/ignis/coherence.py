"""Coherence characterization: T1 and T2 (Ramsey) experiments.

The Ignis hardware-characterization workflows for relaxation times: inject
a thermal-relaxation channel with known T1/T2 on idle (identity) gates,
run inversion-recovery and Ramsey sequences over growing delays, and fit
the exponential decays to recover the injected constants.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import curve_fit

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import IgnisError
from repro.simulators.density_matrix_simulator import DensityMatrixSimulator
from repro.simulators.noise import NoiseModel, thermal_relaxation_error


def t1_circuit(delay: int) -> QuantumCircuit:
    """Inversion recovery: X, idle ``delay`` samples, measure."""
    circuit = QuantumCircuit(1, 1)
    circuit.x(0)
    for _ in range(delay):
        circuit.i(0)
    circuit.measure(0, 0)
    return circuit


def t2_ramsey_circuit(delay: int) -> QuantumCircuit:
    """Ramsey: H, idle, H, measure (on-resonance: pure T2 contrast)."""
    circuit = QuantumCircuit(1, 1)
    circuit.h(0)
    for _ in range(delay):
        circuit.i(0)
    circuit.h(0)
    circuit.measure(0, 0)
    return circuit


def relaxation_noise_model(t1: float, t2: float,
                           gate_time: float = 1.0) -> NoiseModel:
    """Thermal relaxation on every identity gate (the idle location)."""
    model = NoiseModel()
    model.add_all_qubit_quantum_error(
        thermal_relaxation_error(t1, t2, gate_time), ["id"]
    )
    return model


def run_t1_experiment(t1: float, t2: float, delays, shots: int = 2000,
                      seed=None):
    """Measure P(|1>) vs. delay under the injected relaxation.

    Uses the exact density-matrix engine (the channel is not a unitary
    mixture, so trajectory sampling would be slow) and samples ``shots``
    outcomes from the exact distribution.
    """
    model = relaxation_noise_model(t1, t2)
    engine = DensityMatrixSimulator()
    populations = []
    for index, delay in enumerate(delays):
        run_seed = None if seed is None else seed + 13 * index
        counts = engine.counts(
            t1_circuit(delay), shots=shots, seed=run_seed, noise_model=model
        )["counts"]
        populations.append(counts.get("1", 0) / shots)
    return list(delays), populations


def run_t2_experiment(t1: float, t2: float, delays, shots: int = 2000,
                      seed=None):
    """Measure Ramsey P(|0>) vs. delay under the injected relaxation."""
    model = relaxation_noise_model(t1, t2)
    engine = DensityMatrixSimulator()
    populations = []
    for index, delay in enumerate(delays):
        run_seed = None if seed is None else seed + 17 * index
        counts = engine.counts(
            t2_ramsey_circuit(delay), shots=shots, seed=run_seed,
            noise_model=model,
        )["counts"]
        populations.append(counts.get("0", 0) / shots)
    return list(delays), populations


def fit_t1(delays, populations) -> float:
    """Fit ``P(1) = A exp(-t/T1) + B``; returns the fitted T1."""
    delays = np.asarray(delays, dtype=float)
    populations = np.asarray(populations, dtype=float)

    def model(t, amplitude, t1, offset):
        return amplitude * np.exp(-t / t1) + offset

    initial = (1.0, max(delays.max() / 2, 1.0), 0.0)
    bounds = ([0.0, 1e-3, -0.2], [1.2, 1e6, 0.5])
    params, _cov = curve_fit(model, delays, populations, p0=initial,
                             bounds=bounds, maxfev=20_000)
    return float(params[1])


def fit_t2_ramsey(delays, populations) -> float:
    """Fit ``P(0) = (1 + A exp(-t/T2)) / 2``; returns the fitted T2."""
    delays = np.asarray(delays, dtype=float)
    contrast = 2.0 * np.asarray(populations, dtype=float) - 1.0

    def model(t, amplitude, t2):
        return amplitude * np.exp(-t / t2)

    initial = (1.0, max(delays.max() / 2, 1.0))
    bounds = ([0.0, 1e-3], [1.2, 1e6])
    params, _cov = curve_fit(model, delays, contrast, p0=initial,
                             bounds=bounds, maxfev=20_000)
    return float(params[1])


def characterize_coherence(t1: float, t2: float, max_delay=None,
                           points: int = 8, shots: int = 4000, seed=1):
    """End-to-end: inject (T1, T2), run both experiments, fit.

    Returns ``(t1_fit, t2_fit)``.
    """
    if t2 > 2 * t1:
        raise IgnisError("T2 must not exceed 2*T1")
    if max_delay is None:
        max_delay = int(2 * max(t1, t2))
    delays = np.unique(
        np.linspace(0, max_delay, points).astype(int)
    )
    d1, p1 = run_t1_experiment(t1, t2, delays, shots=shots, seed=seed)
    d2, p2 = run_t2_experiment(t1, t2, delays, shots=shots, seed=seed + 99)
    return fit_t1(d1, p1), fit_t2_ramsey(d2, p2)
