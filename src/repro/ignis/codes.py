"""Quantum error-correcting codes: 3-qubit repetition codes (Ignis).

The paper promises "a portfolio of error correcting codes"; the 3-qubit
bit-flip and phase-flip repetition codes are the canonical members.  The
decoder here is coherent (majority vote via Toffoli), so no mid-circuit
measurement is needed.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import IgnisError
from repro.simulators.noise import NoiseModel, bit_flip_error, phase_flip_error
from repro.simulators.qasm_simulator import QasmSimulator


def bit_flip_encode() -> QuantumCircuit:
    """Encode qubit 0 into the 3-qubit bit-flip code (|q00> -> code)."""
    encode = QuantumCircuit(3, name="bitflip-encode")
    encode.cx(0, 1)
    encode.cx(0, 2)
    return encode


def bit_flip_correct() -> QuantumCircuit:
    """Coherent decode+correct: majority vote back onto qubit 0."""
    correct = QuantumCircuit(3, name="bitflip-correct")
    correct.cx(0, 1)
    correct.cx(0, 2)
    correct.ccx(1, 2, 0)
    return correct


def phase_flip_encode() -> QuantumCircuit:
    """Encode into the 3-qubit phase-flip code (bit-flip in the X basis)."""
    encode = QuantumCircuit(3, name="phaseflip-encode")
    encode.cx(0, 1)
    encode.cx(0, 2)
    for qubit in range(3):
        encode.h(qubit)
    return encode


def phase_flip_correct() -> QuantumCircuit:
    """Decode+correct for the phase-flip code."""
    correct = QuantumCircuit(3, name="phaseflip-correct")
    for qubit in range(3):
        correct.h(qubit)
    correct.cx(0, 1)
    correct.cx(0, 2)
    correct.ccx(1, 2, 0)
    return correct


def _protected_circuit(kind: str, initial_x: bool) -> QuantumCircuit:
    if kind == "bit":
        encode, correct = bit_flip_encode(), bit_flip_correct()
    elif kind == "phase":
        encode, correct = phase_flip_encode(), phase_flip_correct()
    else:
        raise IgnisError(f"unknown code kind '{kind}'")
    circuit = QuantumCircuit(3, 1)
    if initial_x:
        circuit.x(0)
    circuit.compose(encode, qubits=circuit.qubits, inplace=True)
    # The noisy idle location: identity gates carry the error channel.
    for qubit in range(3):
        circuit.i(qubit)
    circuit.compose(correct, qubits=circuit.qubits, inplace=True)
    circuit.measure(0, 0)
    return circuit


def logical_error_rate(kind: str, physical_error: float, shots: int = 4000,
                       seed=None, initial_x: bool = True) -> float:
    """Simulated logical error rate with error probability ``p`` per qubit.

    For ``p < 1/2`` the repetition code must beat the bare qubit:
    ``p_L = 3 p^2 - 2 p^3 < p``.
    """
    if kind == "bit":
        channel = bit_flip_error(physical_error)
    elif kind == "phase":
        channel = phase_flip_error(physical_error)
    else:
        raise IgnisError(f"unknown code kind '{kind}'")
    noise = NoiseModel()
    noise.add_all_qubit_quantum_error(channel, ["id"])
    circuit = _protected_circuit(kind, initial_x)
    outcome = QasmSimulator().run(
        circuit, shots=shots, seed=seed, noise_model=noise
    )
    expected = "1" if initial_x else "0"
    wrong = sum(
        value for key, value in outcome["counts"].items() if key != expected
    )
    return wrong / shots


def theoretical_logical_error(physical_error: float) -> float:
    """p_L = 3 p^2 - 2 p^3 for the distance-3 repetition code."""
    p = physical_error
    return 3 * p**2 - 2 * p**3
