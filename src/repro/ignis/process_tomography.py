"""Single-qubit quantum process tomography via the Pauli transfer matrix.

Feeds the four informationally-complete inputs {|0>, |1>, |+>, |+i>}
through the channel, state-tomographs each output, and assembles the PTM
``R[i, j] = Tr(P_i E(P_j)) / 2`` by linearity.  Average gate fidelity to a
target unitary follows as ``(Tr(R_U^T R)/2 + 1)/3``.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import IgnisError
from repro.ignis.tomography import run_state_tomography
from repro.quantum_info.pauli import Pauli

_PAULIS = [Pauli("I"), Pauli("X"), Pauli("Y"), Pauli("Z")]

#: Preparation circuits for the informationally complete input set.
_PREPARATIONS = ("0", "1", "+", "r")


def _preparation_circuit(label: str) -> QuantumCircuit:
    circuit = QuantumCircuit(1, name=f"prep_{label}")
    if label == "1":
        circuit.x(0)
    elif label == "+":
        circuit.h(0)
    elif label == "r":
        circuit.h(0)
        circuit.s(0)
    elif label != "0":
        raise IgnisError(f"unknown preparation '{label}'")
    return circuit


def process_tomography_ptm(channel_circuit: QuantumCircuit,
                           shots: int = 4000, seed=None,
                           noise_model=None) -> np.ndarray:
    """Reconstruct the 4x4 Pauli transfer matrix of a 1-qubit channel.

    ``channel_circuit`` is the gate sequence realizing the channel (noise,
    if any, enters through ``noise_model`` during simulation).
    """
    if channel_circuit.num_qubits != 1:
        raise IgnisError("process tomography implemented for one qubit")
    outputs = {}
    for index, label in enumerate(_PREPARATIONS):
        experiment = _preparation_circuit(label)
        experiment.compose(channel_circuit, qubits=experiment.qubits,
                           inplace=True)
        run_seed = None if seed is None else seed + 101 * index
        outputs[label] = run_state_tomography(
            experiment, shots=shots, seed=run_seed, noise_model=noise_model
        ).data
    # Input Paulis by linearity of the channel:
    #   I = rho_0 + rho_1,      Z = rho_0 - rho_1,
    #   X = 2 rho_+ - I,        Y = 2 rho_r - I.
    e_of = {
        "I": outputs["0"] + outputs["1"],
        "Z": outputs["0"] - outputs["1"],
        "X": 2 * outputs["+"] - outputs["0"] - outputs["1"],
        "Y": 2 * outputs["r"] - outputs["0"] - outputs["1"],
    }
    ptm = np.zeros((4, 4))
    for i, pauli_i in enumerate(_PAULIS):
        for j, pauli_j in enumerate(_PAULIS):
            value = np.trace(pauli_i.to_matrix() @ e_of[pauli_j.label])
            ptm[i, j] = float(np.real(value)) / 2.0
    return ptm


def ptm_of_unitary(matrix) -> np.ndarray:
    """Exact PTM of a unitary (reference for fidelity computations)."""
    matrix = np.asarray(matrix, dtype=complex)
    ptm = np.zeros((4, 4))
    for i, pauli_i in enumerate(_PAULIS):
        for j, pauli_j in enumerate(_PAULIS):
            value = np.trace(
                pauli_i.to_matrix()
                @ matrix @ pauli_j.to_matrix() @ matrix.conj().T
            )
            ptm[i, j] = float(np.real(value)) / 2.0
    return ptm


def average_gate_fidelity_from_ptm(ptm: np.ndarray,
                                   target_unitary) -> float:
    """F_avg = (Tr(R_U^T R)/2 + 1) / 3 for a 1-qubit channel."""
    reference = ptm_of_unitary(target_unitary)
    process_fid = float(np.trace(reference.T @ ptm)) / 4.0
    return (2.0 * process_fid + 1.0) / 3.0
