"""Ignis-equivalent characterization, mitigation, and error correction."""

from repro.ignis.coherence import (
    characterize_coherence,
    fit_t1,
    fit_t2_ramsey,
    relaxation_noise_model,
    run_t1_experiment,
    run_t2_experiment,
    t1_circuit,
    t2_ramsey_circuit,
)
from repro.ignis.process_tomography import (
    average_gate_fidelity_from_ptm,
    process_tomography_ptm,
    ptm_of_unitary,
)
from repro.ignis.codes import (
    bit_flip_correct,
    bit_flip_encode,
    logical_error_rate,
    phase_flip_correct,
    phase_flip_encode,
    theoretical_logical_error,
)
from repro.ignis.mitigation import (
    CompleteMeasurementFitter,
    MeasurementFilter,
    TensoredMeasurementFitter,
    complete_measurement_calibration,
    tensored_calibration,
)
from repro.ignis.rb import (
    CLIFFORD_1Q,
    average_clifford_gate_count,
    clifford_inverse_index,
    fit_rb_decay,
    interleaved_gate_error,
    interleaved_rb_circuit,
    interleaved_rb_experiment,
    rb_circuit,
    rb_experiment,
)
from repro.ignis.tomography import (
    fit_state,
    project_to_physical,
    run_state_tomography,
    state_tomography_circuits,
    tomography_bases,
)

__all__ = [
    "CLIFFORD_1Q",
    "average_gate_fidelity_from_ptm",
    "characterize_coherence",
    "fit_t1",
    "fit_t2_ramsey",
    "process_tomography_ptm",
    "ptm_of_unitary",
    "relaxation_noise_model",
    "run_t1_experiment",
    "run_t2_experiment",
    "t1_circuit",
    "t2_ramsey_circuit",
    "CompleteMeasurementFitter",
    "MeasurementFilter",
    "TensoredMeasurementFitter",
    "average_clifford_gate_count",
    "bit_flip_correct",
    "bit_flip_encode",
    "clifford_inverse_index",
    "complete_measurement_calibration",
    "fit_rb_decay",
    "fit_state",
    "interleaved_gate_error",
    "interleaved_rb_circuit",
    "interleaved_rb_experiment",
    "logical_error_rate",
    "phase_flip_correct",
    "phase_flip_encode",
    "project_to_physical",
    "rb_circuit",
    "rb_experiment",
    "run_state_tomography",
    "state_tomography_circuits",
    "tensored_calibration",
    "theoretical_logical_error",
]
