"""Quantum state tomography (Ignis, paper Sec. III).

Measures the prepared state in all 3**n Pauli bases and reconstructs
rho = (1/2**n) * sum_P <P> P by linear inversion, followed by projection
onto the physical (PSD, trace-1) cone.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.algorithms.expectation import expectation_from_counts
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import IgnisError
from repro.quantum_info.density_matrix import DensityMatrix
from repro.quantum_info.pauli import Pauli


def tomography_bases(num_qubits: int) -> list[str]:
    """All 3**n measurement-basis labels, e.g. ``["XX", "XY", ...]``."""
    return ["".join(chars) for chars in itertools.product("XYZ",
                                                          repeat=num_qubits)]


def state_tomography_circuits(circuit: QuantumCircuit):
    """Measurement circuits for every Pauli basis.

    Returns ``(circuits, basis_labels)``; label characters read qubit
    ``n-1`` to qubit 0, left to right.
    """
    num_qubits = circuit.num_qubits
    circuits = []
    labels = tomography_bases(num_qubits)
    for label in labels:
        tomo = QuantumCircuit(num_qubits, num_qubits,
                              name=f"tomo_{label}")
        tomo.compose(circuit, qubits=tomo.qubits[:num_qubits], inplace=True)
        for qubit in range(num_qubits):
            char = label[num_qubits - 1 - qubit]
            if char == "X":
                tomo.h(qubit)
            elif char == "Y":
                tomo.sdg(qubit)
                tomo.h(qubit)
        for qubit in range(num_qubits):
            tomo.measure(qubit, qubit)
        circuits.append(tomo)
    return circuits, labels


def _compatible_basis(pauli_label: str, basis_label: str) -> bool:
    """Whether a Pauli string is measurable in a basis (I matches any)."""
    return all(p == "I" or p == b for p, b in zip(pauli_label, basis_label))


def fit_state(counts_by_basis: dict, num_qubits: int,
              project: bool = True) -> DensityMatrix:
    """Linear-inversion tomography from ``{basis_label: counts}``.

    Every expectation <P> is averaged over all bases compatible with P.
    With ``project`` the estimate is projected to the nearest PSD state.
    """
    expected_bases = set(tomography_bases(num_qubits))
    if set(counts_by_basis) != expected_bases:
        missing = expected_bases - set(counts_by_basis)
        raise IgnisError(f"missing tomography bases: {sorted(missing)[:5]}")
    dim = 2**num_qubits
    rho = np.eye(dim, dtype=complex) / dim
    for pauli_chars in itertools.product("IXYZ", repeat=num_qubits):
        pauli_label = "".join(pauli_chars)
        if pauli_label == "I" * num_qubits:
            continue
        pauli = Pauli(pauli_label)
        estimates = []
        for basis_label, counts in counts_by_basis.items():
            if _compatible_basis(pauli_label, basis_label):
                estimates.append(expectation_from_counts(pauli, counts))
        if not estimates:
            raise IgnisError(f"no compatible basis for {pauli_label}")
        rho += float(np.mean(estimates)) * pauli.to_matrix() / dim
    if project:
        rho = project_to_physical(rho)
    return DensityMatrix(rho, validate=False)


def project_to_physical(rho: np.ndarray) -> np.ndarray:
    """Project onto PSD trace-1 matrices (Smolin-Gambetta-Smith style)."""
    rho = (rho + rho.conj().T) / 2
    eigenvalues, eigenvectors = np.linalg.eigh(rho)
    # Water-filling: clip negatives, redistribute to keep trace 1.
    clipped = eigenvalues.copy()
    deficit = 0.0
    for index in range(len(clipped)):
        if clipped[index] + deficit / (len(clipped) - index) < 0:
            deficit += clipped[index]
            clipped[index] = 0.0
        else:
            clipped[index:] += deficit / (len(clipped) - index)
            deficit = 0.0
            break
    clipped = np.clip(clipped, 0, None)
    clipped /= clipped.sum()
    return (eigenvectors * clipped) @ eigenvectors.conj().T


def run_state_tomography(circuit: QuantumCircuit, shots: int = 2048,
                         seed=None, noise_model=None,
                         executor=None) -> DensityMatrix:
    """Convenience wrapper: simulate all bases and fit.

    All ``3**n`` basis circuits are submitted as one batch through the
    execution pipeline (per-basis seeds derived from ``seed``), so the
    fan-out can run on the parallel executors — pass ``executor`` to pin
    one (``"serial"``/``"threads"``/``"processes"``; default auto).
    """
    from repro.providers.aer import QasmSimulatorBackend

    circuits, labels = state_tomography_circuits(circuit)
    options = {"shots": shots, "seed": seed, "noise_model": noise_model}
    if executor is not None:
        options["executor"] = executor
    result = QasmSimulatorBackend().run(circuits, **options).result()
    counts_by_basis = {
        label: result.get_counts(f"tomo_{label}") for label in labels
    }
    return fit_state(counts_by_basis, circuit.num_qubits)
