"""Single-qubit randomized benchmarking (Ignis, paper Sec. III).

"Rigorously categorizing and analyzing noise processes in the hardware
through randomized benchmarking": random Clifford sequences of growing
length are inverted back to the identity; survival probability decays as
``A * alpha**m + B``, and the error per Clifford is ``(1 - alpha) / 2``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import curve_fit

from repro.circuit.library.standard_gates import HGate, SGate
from repro.circuit.matrix_utils import allclose_up_to_global_phase
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.exceptions import IgnisError


def _generate_clifford_group():
    """Enumerate the 24 single-qubit Cliffords as (name sequence, matrix).

    Generated as products of H and S, deduplicated up to global phase.
    """
    generators = {"h": HGate().to_matrix(), "s": SGate().to_matrix()}
    found = [((), np.eye(2, dtype=complex))]
    frontier = list(found)
    while frontier:
        fresh = []
        for names, matrix in frontier:
            for gen_name, gen_matrix in generators.items():
                candidate = gen_matrix @ matrix
                if any(
                    allclose_up_to_global_phase(candidate, existing[1])
                    for existing in found
                ):
                    continue
                entry = (names + (gen_name,), candidate)
                found.append(entry)
                fresh.append(entry)
        frontier = fresh
    if len(found) != 24:
        raise IgnisError(f"Clifford enumeration found {len(found)} elements")
    return found


#: The 24 single-qubit Cliffords as (gate-name tuple, unitary) pairs.
CLIFFORD_1Q = _generate_clifford_group()


def clifford_inverse_index(matrix) -> int:
    """Index of the Clifford inverting ``matrix`` (up to global phase)."""
    target = np.linalg.inv(matrix)
    for index, (_names, candidate) in enumerate(CLIFFORD_1Q):
        if allclose_up_to_global_phase(candidate, target):
            return index
    raise IgnisError("matrix is not a Clifford (no inverse found)")


def rb_circuit(length: int, qubit: int = 0, num_qubits: int = 1,
               seed=None) -> QuantumCircuit:
    """One RB sequence: ``length`` random Cliffords plus the inversion."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, num_qubits)
    accumulated = np.eye(2, dtype=complex)
    for _ in range(length):
        index = int(rng.integers(len(CLIFFORD_1Q)))
        names, matrix = CLIFFORD_1Q[index]
        for name in names:
            getattr(circuit, name)(qubit)
        accumulated = matrix @ accumulated
    inverse_index = clifford_inverse_index(accumulated)
    for name in CLIFFORD_1Q[inverse_index][0]:
        getattr(circuit, name)(qubit)
    circuit.measure(qubit, qubit)
    return circuit


def rb_experiment(lengths, num_samples: int = 5, shots: int = 512,
                  noise_model=None, seed=None, qubit: int = 0,
                  executor=None):
    """Run RB over the given sequence lengths.

    Returns ``(lengths, survival)`` where ``survival[i]`` is the average
    probability of recovering |0> at ``lengths[i]``.  The whole
    ``len(lengths) * num_samples`` fan-out is submitted as one batch
    through the execution pipeline instead of looping single runs;
    ``executor`` pins a scheduling strategy (default auto).
    """
    from repro.providers.aer import QasmSimulatorBackend

    rng = np.random.default_rng(seed)
    batch = []
    for length in lengths:
        for sample in range(num_samples):
            circuit = rb_circuit(
                length, qubit=qubit, seed=int(rng.integers(1 << 31))
            )
            circuit.name = f"rb_m{length}_s{sample}"
            batch.append(circuit)
    options = {
        "shots": shots,
        "seed": None if seed is None else int(rng.integers(1 << 31)),
        "noise_model": noise_model,
    }
    if executor is not None:
        options["executor"] = executor
    result = QasmSimulatorBackend().run(batch, **options).result()
    by_name = {circuit.name: circuit for circuit in batch}
    survival = []
    for length in lengths:
        probabilities = []
        for sample in range(num_samples):
            name = f"rb_m{length}_s{sample}"
            counts = result.get_counts(name)
            zeros = counts.get("0" * by_name[name].num_clbits, 0)
            probabilities.append(zeros / shots)
        survival.append(float(np.mean(probabilities)))
    return list(lengths), survival


def fit_rb_decay(lengths, survival):
    """Fit ``A * alpha**m + B``; returns ``(alpha, A, B, error_per_clifford)``."""
    lengths = np.asarray(lengths, dtype=float)
    survival = np.asarray(survival, dtype=float)

    def model(m, a, alpha, b):
        return a * alpha**m + b

    initial = (0.5, 0.98, 0.5)
    bounds = ([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
    params, _covariance = curve_fit(
        model, lengths, survival, p0=initial, bounds=bounds, maxfev=20_000
    )
    a, alpha, b = params
    error_per_clifford = (1 - alpha) / 2
    return float(alpha), float(a), float(b), float(error_per_clifford)


def average_clifford_gate_count() -> float:
    """Mean H/S gate count per Clifford in our enumeration (for converting
    error-per-Clifford to error-per-gate)."""
    return float(np.mean([len(names) for names, _ in CLIFFORD_1Q]))


def interleaved_rb_circuit(length: int, gate_name: str, qubit: int = 0,
                           seed=None) -> QuantumCircuit:
    """Interleaved RB sequence: (random Clifford, target gate) x length.

    The target gate must itself be Clifford (by name on QuantumCircuit,
    e.g. ``"x"``, ``"h"``, ``"s"``) so the inversion stays in the group.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(1, 1)
    probe = QuantumCircuit(1)
    getattr(probe, gate_name)(0)
    gate_matrix = probe.data[0].operation.to_matrix()
    accumulated = np.eye(2, dtype=complex)
    for _ in range(length):
        index = int(rng.integers(len(CLIFFORD_1Q)))
        names, matrix = CLIFFORD_1Q[index]
        for name in names:
            getattr(circuit, name)(qubit)
        getattr(circuit, gate_name)(qubit)
        accumulated = gate_matrix @ matrix @ accumulated
    inverse_index = clifford_inverse_index(accumulated)
    for name in CLIFFORD_1Q[inverse_index][0]:
        getattr(circuit, name)(qubit)
    circuit.measure(qubit, qubit)
    return circuit


def interleaved_rb_experiment(lengths, gate_name: str, num_samples: int = 5,
                              shots: int = 512, noise_model=None, seed=None,
                              executor=None):
    """Run reference + interleaved RB; returns both survival curves.

    The reference and interleaved circuits for every (length, sample) pair
    go up in a single batched submission through the execution pipeline
    rather than one engine call per sequence.
    """
    from repro.providers.aer import QasmSimulatorBackend

    rng = np.random.default_rng(seed)
    batch = []
    for length in lengths:
        for sample in range(num_samples):
            ref_circ = rb_circuit(length, seed=int(rng.integers(1 << 31)))
            ref_circ.name = f"ref_m{length}_s{sample}"
            int_circ = interleaved_rb_circuit(
                length, gate_name, seed=int(rng.integers(1 << 31))
            )
            int_circ.name = f"int_m{length}_s{sample}"
            batch.extend((ref_circ, int_circ))
    options = {
        "shots": shots,
        "seed": None if seed is None else int(rng.integers(1 << 31)),
        "noise_model": noise_model,
    }
    if executor is not None:
        options["executor"] = executor
    result = QasmSimulatorBackend().run(batch, **options).result()
    by_name = {circuit.name: circuit for circuit in batch}
    reference = []
    interleaved = []
    for length in lengths:
        ref_probs = []
        int_probs = []
        for sample in range(num_samples):
            for prefix, bucket in (("ref", ref_probs), ("int", int_probs)):
                name = f"{prefix}_m{length}_s{sample}"
                counts = result.get_counts(name)
                zeros = counts.get("0" * by_name[name].num_clbits, 0)
                bucket.append(zeros / shots)
        reference.append(float(np.mean(ref_probs)))
        interleaved.append(float(np.mean(int_probs)))
    return list(lengths), reference, interleaved


def interleaved_gate_error(lengths, reference, interleaved) -> float:
    """Per-gate error from the two decays: r = (1 - a_int/a_ref) / 2."""
    alpha_ref, _a, _b, _epc = fit_rb_decay(lengths, reference)
    alpha_int, _a2, _b2, _epc2 = fit_rb_decay(lengths, interleaved)
    ratio = min(1.0, alpha_int / alpha_ref)
    return (1.0 - ratio) / 2.0
