"""Deterministic, seed-driven fault injection for the execution pipeline.

The paper's workflow targets the real IBM Q cloud, where jobs queue, time
out, and fail transiently.  Offline, the provider stack simulates that
hostile environment with this module: a :class:`FaultInjector` armed on a
job (``backend.run(..., fault_injector=...)`` or
``execute(..., fault_injector=...)``) fires faults on a *seeded schedule*,
so chaos tests are reproducible down to the bit — the same seed fires the
same faults on the same (experiment, attempt) pairs no matter which
executor runs the batch.

Fault kinds (:class:`FaultKind`):

* ``transient`` — raises :class:`~repro.exceptions.TransientFaultError`
  before the engine runs; the retry layer re-runs the experiment with its
  original derived seed.
* ``crash`` — kills the worker.  Inside a process-pool worker this is a
  real ``os._exit`` (the parent sees a broken pool and degrades
  processes -> threads -> serial); in-process executors raise the
  retryable :class:`~repro.exceptions.WorkerCrashError` instead.
* ``slow`` — sleeps ``latency`` seconds before the engine runs; the
  experiment still succeeds.  Used to exercise timeouts and cancellation.
* ``corrupt`` — mangles the returned counts histogram so it no longer
  sums to the requested shots; the retry layer's payload validation
  detects the mismatch and re-runs.

Both classes are plain-attribute objects, hence picklable: they ride the
per-experiment config dictionaries into process-pool workers unchanged.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time

from repro.exceptions import (
    BackendError,
    TransientFaultError,
    WorkerCrashError,
)


class FaultKind:
    """String constants for the supported fault kinds."""

    TRANSIENT = "transient"
    CRASH = "crash"
    SLOW = "slow"
    CORRUPT = "corrupt"

    ALL = (TRANSIENT, CRASH, SLOW, CORRUPT)


class FaultSpec:
    """Where and when one kind of fault fires.

    * ``experiments`` — restrict to these experiment names (None = all).
    * ``attempts`` — restrict to these attempt numbers, 0-based
      (default ``(0,)``: fire on the first attempt only, so a retry
      succeeds; ``None`` = every attempt, which exhausts the retry
      budget).
    * ``chunks`` — restrict to these shot-chunk indices (None = all;
      an unchunked experiment counts as chunk 0).
    * ``probability`` — chance of firing on a matching (experiment,
      attempt) pair; below 1.0 the decision is drawn deterministically
      from the injector seed, never from global randomness.
    * ``latency`` — sleep duration in seconds (``slow`` faults only).
    """

    def __init__(self, kind: str, experiments=None, attempts=(0,),
                 probability: float = 1.0, latency: float = 0.05,
                 chunks=None):
        if kind not in FaultKind.ALL:
            raise BackendError(
                f"unknown fault kind '{kind}'; choose one of "
                f"{list(FaultKind.ALL)}"
            )
        if not 0.0 <= probability <= 1.0:
            raise BackendError("fault probability must be in [0, 1]")
        self.kind = kind
        self.experiments = (
            None if experiments is None else frozenset(experiments)
        )
        self.attempts = None if attempts is None else frozenset(attempts)
        self.chunks = None if chunks is None else frozenset(chunks)
        self.probability = float(probability)
        self.latency = float(latency)

    def matches(self, experiment_name: str, attempt: int,
                chunk=None) -> bool:
        """Whether this spec targets the given (experiment, attempt[,
        chunk])."""
        if self.experiments is not None \
                and experiment_name not in self.experiments:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.chunks is not None and (chunk or 0) not in self.chunks:
            return False
        return True

    def __repr__(self):
        return (
            f"FaultSpec({self.kind!r}, experiments="
            f"{sorted(self.experiments) if self.experiments else None}, "
            f"attempts={sorted(self.attempts) if self.attempts else None}, "
            f"probability={self.probability})"
        )


def _schedule_fraction(seed: int, kind: str, name: str, attempt: int,
                       chunk=None) -> float:
    """Deterministic uniform draw in [0, 1) for one firing decision.

    Keyed by (seed, kind, experiment name, attempt[, chunk]) — not by
    wall clock or executor ordering — so every executor sees the
    identical schedule.  Chunk 0 (and unchunked runs) keep the legacy
    key, so pre-chunking chaos schedules replay unchanged; higher chunks
    draw independently via a ``#c<chunk>`` name suffix.
    """
    if chunk:
        name = f"{name}#c{chunk}"
    digest = hashlib.sha256(
        f"{seed}:{kind}:{name}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultInjector:
    """A seeded set of fault specs, armed on a job.

    The injector is consulted by ``run_assembled_experiment`` before each
    attempt (transient/crash/slow) and after each attempt (corrupt).
    Every fired fault is appended to the experiment's fault log, which
    surfaces in ``job.fault_stats`` — except a real process-worker crash,
    whose log dies with the worker; those show up as pool fallbacks
    instead.
    """

    def __init__(self, specs, seed: int = 0):
        if isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs = list(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise BackendError(
                    "fault_injector takes FaultSpec instances, "
                    f"got {type(spec).__name__}"
                )
        self.seed = int(seed)

    def fires(self, spec: FaultSpec, experiment_name: str,
              attempt: int, chunk=None) -> bool:
        """Deterministic firing decision for one spec."""
        if not spec.matches(experiment_name, attempt, chunk):
            return False
        if spec.probability >= 1.0:
            return True
        return _schedule_fraction(
            self.seed, spec.kind, experiment_name, attempt, chunk
        ) < spec.probability

    def before_attempt(self, experiment_name: str, attempt: int,
                       fault_log: list, chunk=None) -> None:
        """Apply pre-engine faults; may sleep, raise, or kill the worker."""
        for spec in self.specs:
            if not self.fires(spec, experiment_name, attempt, chunk):
                continue
            if spec.kind == FaultKind.SLOW:
                fault_log.append(f"slow@{attempt}")
                time.sleep(spec.latency)
            elif spec.kind == FaultKind.TRANSIENT:
                fault_log.append(f"transient@{attempt}")
                raise TransientFaultError(
                    f"injected transient fault on '{experiment_name}' "
                    f"(attempt {attempt})"
                )
            elif spec.kind == FaultKind.CRASH:
                fault_log.append(f"crash@{attempt}")
                if multiprocessing.parent_process() is not None:
                    # A real worker crash: the parent's future breaks with
                    # BrokenProcessPool and the dispatcher degrades.
                    os._exit(13)
                raise WorkerCrashError(
                    f"injected worker crash on '{experiment_name}' "
                    f"(attempt {attempt})"
                )

    def after_attempt(self, experiment_name: str, attempt: int, outcome,
                      fault_log: list, chunk=None) -> None:
        """Apply post-engine faults (payload corruption)."""
        for spec in self.specs:
            if spec.kind != FaultKind.CORRUPT:
                continue
            if not self.fires(spec, experiment_name, attempt, chunk):
                continue
            counts = outcome.data.get("counts") if outcome.data else None
            if not counts:
                # Broadcast payloads carry one histogram per binding;
                # corrupt the first non-empty one, deterministically.
                rows = (
                    outcome.data.get("broadcast_counts")
                    if outcome.data else None
                )
                counts = next(
                    (
                        row["counts"]
                        for row in rows or []
                        if row.get("counts")
                    ),
                    None,
                )
            if not counts:
                continue  # nothing corruptible in this payload
            fault_log.append(f"corrupt@{attempt}")
            # Knock one shot off the most frequent outcome: the histogram
            # no longer sums to the requested shots, which is exactly what
            # the retry layer's payload validation checks.
            key = max(counts, key=counts.get)
            counts[key] -= 1
            if counts[key] <= 0:
                del counts[key]

    def __repr__(self):
        return f"FaultInjector({self.specs!r}, seed={self.seed})"


def resolve_injector(value):
    """Normalize the ``fault_injector`` run option.

    Accepts None, a ready :class:`FaultInjector`, a single
    :class:`FaultSpec`, or a list of specs (seeded with 0).
    """
    if value is None or isinstance(value, FaultInjector):
        return value
    return FaultInjector(value)
