"""The Aer provider: simulator backends behind the Qiskit-style API.

Mirrors the paper's Section IV usage::

    job = execute(measured_circ, backend=Aer.get_backend('qasm_simulator'))
    counts = job.result().get_counts()
"""

from __future__ import annotations

from repro.exceptions import BackendError
from repro.providers.backend import BackendConfiguration, BaseBackend
from repro.providers.result import ExperimentResult
from repro.simulators.dd_simulator import DDSimulator
from repro.simulators.density_matrix_simulator import DensityMatrixSimulator
from repro.simulators.qasm_simulator import QasmSimulator
from repro.simulators.stabilizer_simulator import StabilizerSimulator
from repro.simulators.statevector_simulator import StatevectorSimulator
from repro.simulators.unitary_simulator import UnitarySimulator

_ALL_GATES = [
    "u1", "u2", "u3", "u", "p", "cx", "id", "x", "y", "z", "h", "s", "sdg",
    "t", "tdg", "sx", "sxdg", "rx", "ry", "rz", "cy", "cz", "ch", "swap",
    "crx", "cry", "crz", "cu1", "cu3", "rzz", "rxx", "ryy", "ccx", "cswap",
    "unitary", "diagonal",
]


class _AerBackend(BaseBackend):
    """Aer backends are registered by name, so process-pool workers can
    rebuild them from the provider registry."""

    def _backend_spec(self):
        return ("aer", self.name())


class QasmSimulatorBackend(_AerBackend):
    """Shot-based simulator backend (optionally noisy)."""

    def __init__(self):
        super().__init__(
            BackendConfiguration(
                "qasm_simulator", 24, _ALL_GATES,
                description="shot-based statevector/trajectory simulator "
                            "(specialized gate kernels)",
            )
        )
        self._engine = QasmSimulator()

    def _chunk_support(self, circuit, options):
        if circuit.num_clbits == 0:
            return "none"
        noise = options.get("noise_model")
        if noise is not None and noise.noisy_gates:
            # Trajectory/batched path: chunks are independent noisy runs,
            # worth dispatching across workers.
            return "dispatch"
        # Sampling path: the statevector evolves once; loop the chunk
        # layout inline rather than re-evolving per worker.
        return "inline"

    def _run_experiment(self, circuit, options):
        broadcast = options.get("broadcast")
        if broadcast is not None:
            return self._run_broadcast(circuit, options, broadcast)
        payload = self._engine.run(
            circuit,
            shots=options.get("shots", 1024),
            seed=options.get("seed"),
            noise_model=options.get("noise_model"),
            memory=options.get("memory", False),
            elide_diagonals=options.get("elide_diagonals", True),
            shot_chunks=options.get("shot_chunks"),
        )
        return ExperimentResult(circuit.name, payload["shots"], payload)

    def _run_broadcast(self, circuit, options, broadcast):
        from repro.simulators.batched import (
            estimate_broadcast_shots,
            sample_broadcast,
        )

        shots = options.get("shots", 1024)
        if broadcast.get("observable") is not None:
            energies = estimate_broadcast_shots(
                circuit,
                broadcast["values"],
                broadcast["parameters"],
                broadcast["observable"],
                shots,
                broadcast["seeds"],
            )
            return ExperimentResult(
                circuit.name, shots,
                {"broadcast_evs": energies, "shots": shots},
            )
        outcomes = sample_broadcast(
            circuit,
            broadcast["values"],
            broadcast["parameters"],
            shots,
            broadcast["seeds"],
            elide_diagonals=options.get("elide_diagonals", True),
        )
        return ExperimentResult(
            circuit.name, shots,
            {"broadcast_counts": outcomes, "shots": shots},
        )


class StatevectorSimulatorBackend(_AerBackend):
    """Ideal statevector backend."""

    def __init__(self):
        super().__init__(
            BackendConfiguration(
                "statevector_simulator", 24, _ALL_GATES,
                description="dense statevector simulator (specialized gate kernels)",
            )
        )
        self._engine = StatevectorSimulator()

    def _run_experiment(self, circuit, options):
        broadcast = options.get("broadcast")
        if broadcast is not None:
            states = self._engine.run_batch(
                circuit, broadcast["values"], broadcast["parameters"]
            )
            observable = broadcast.get("observable")
            if observable is not None:
                energies = [
                    observable.expectation(state) for state in states
                ]
                return ExperimentResult(
                    circuit.name, 1, {"broadcast_evs": energies}
                )
            return ExperimentResult(
                circuit.name, 1, {"broadcast_statevectors": states}
            )
        state = self._engine.run(circuit)
        return ExperimentResult(circuit.name, 1, {"statevector": state})


class UnitarySimulatorBackend(_AerBackend):
    """Full-unitary backend."""

    def __init__(self):
        super().__init__(
            BackendConfiguration(
                "unitary_simulator", 12, _ALL_GATES,
                description="dense unitary simulator (specialized gate kernels)",
            )
        )
        self._engine = UnitarySimulator()

    def _run_experiment(self, circuit, options):
        operator = self._engine.run(circuit)
        return ExperimentResult(circuit.name, 1, {"unitary": operator})


class DensityMatrixSimulatorBackend(_AerBackend):
    """Exact noisy (density-matrix) backend."""

    def __init__(self):
        super().__init__(
            BackendConfiguration(
                "density_matrix_simulator", 10, _ALL_GATES,
                description="exact density-matrix simulator with noise "
                            "(specialized gate kernels)",
            )
        )
        self._engine = DensityMatrixSimulator()

    def _chunk_support(self, circuit, options):
        # The density matrix itself is deterministic; only the sampling
        # loop is chunked, and it reuses the one derived matrix inline.
        return "inline" if circuit.num_clbits else "none"

    def _run_experiment(self, circuit, options):
        noise = options.get("noise_model")
        if circuit.num_clbits:
            payload = self._engine.counts(
                circuit,
                shots=options.get("shots", 1024),
                seed=options.get("seed"),
                noise_model=noise,
                shot_chunks=options.get("shot_chunks"),
            )
            chunk = options.get("shot_chunk")
            if chunk is None or chunk["index"] == 0:
                # Under forced chunk dispatch, only chunk 0 carries the
                # (identical) exact matrix; the merge takes payload keys
                # from the first completed chunk.
                payload["density_matrix"] = self._engine.run(circuit, noise)
            return ExperimentResult(circuit.name, payload["shots"], payload)
        state = self._engine.run(circuit, noise)
        return ExperimentResult(circuit.name, 1, {"density_matrix": state})


class DDSimulatorBackend(_AerBackend):
    """Decision-diagram backend (the JKU add-on of the paper's Ref. [5])."""

    def __init__(self):
        super().__init__(
            BackendConfiguration(
                "dd_simulator", 64, _ALL_GATES,
                description="QMDD decision-diagram simulator",
            )
        )
        self._engine = DDSimulator()

    def _chunk_support(self, circuit, options):
        return "dispatch" if circuit.num_clbits else "none"

    def _run_experiment(self, circuit, options):
        dd_state = self._engine.run(circuit)
        shots = options.get("shots", 1024)
        data = {
            "dd_nodes": dd_state.node_count(),
            "dd_peak_nodes": dd_state.peak_nodes,
            "dd_table_stats": dd_state.table_stats(),
        }
        if circuit.num_clbits:
            data["counts"] = dd_state.sample_counts(
                shots, seed=options.get("seed")
            )
            data["shots"] = shots
        if circuit.num_qubits <= 20:
            data["statevector"] = dd_state.to_statevector()
        return ExperimentResult(circuit.name, shots, data)


class StabilizerSimulatorBackend(_AerBackend):
    """Clifford tableau backend (polynomial-time for Clifford circuits)."""

    _CLIFFORD_GATES = [
        "h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap", "id",
    ]

    def __init__(self):
        super().__init__(
            BackendConfiguration(
                "stabilizer_simulator", 256, self._CLIFFORD_GATES,
                description="Aaronson-Gottesman stabilizer simulator",
            )
        )
        self._engine = StabilizerSimulator()

    def _chunk_support(self, circuit, options):
        return "dispatch" if circuit.num_clbits else "none"

    def _run_experiment(self, circuit, options):
        payload = self._engine.run(
            circuit,
            shots=options.get("shots", 1024),
            seed=options.get("seed"),
        )
        return ExperimentResult(circuit.name, payload["shots"], payload)


class _AerProvider:
    """Provider object exposing ``Aer.get_backend(name)``."""

    def __init__(self):
        self._factories = {
            "qasm_simulator": QasmSimulatorBackend,
            "statevector_simulator": StatevectorSimulatorBackend,
            "unitary_simulator": UnitarySimulatorBackend,
            "density_matrix_simulator": DensityMatrixSimulatorBackend,
            "dd_simulator": DDSimulatorBackend,
            "stabilizer_simulator": StabilizerSimulatorBackend,
        }

    def backends(self) -> list[str]:
        """Available backend names."""
        return sorted(self._factories)

    def get_backend(self, name: str) -> BaseBackend:
        """Instantiate a simulator backend by name."""
        if name not in self._factories:
            raise BackendError(
                f"unknown Aer backend '{name}'; available: {self.backends()}"
            )
        return self._factories[name]()


#: Singleton provider, used as ``Aer.get_backend('qasm_simulator')``.
Aer = _AerProvider()
