"""Simulated IBM QX devices.

The paper runs on the real IBM Q cloud machines; offline we substitute
noisy simulators with the exact published coupling maps (Fig. 2) and
error magnitudes in the range IBM reported for those devices (~1e-3 per
single-qubit gate, ~2-3e-2 per CNOT, a few percent readout error).  The user
workflow — transpile to the device, submit, read counts — is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BackendError
from repro.providers.backend import BackendConfiguration, BaseBackend
from repro.providers.result import ExperimentResult
from repro.simulators.noise import (
    NoiseModel,
    ReadoutError,
    depolarizing_error,
)
from repro.simulators.qasm_simulator import QasmSimulator
from repro.transpiler.coupling import CouplingMap

_DEVICE_BASIS = ["u1", "u2", "u3", "cx", "id"]

#: Error magnitudes per device: (1q depolarizing, 2q depolarizing, readout).
_DEVICE_ERRORS = {
    "ibmqx2": (1.2e-3, 2.5e-2, 3.0e-2),
    "ibmqx3": (1.5e-3, 3.5e-2, 5.0e-2),
    "ibmqx4": (1.0e-3, 2.0e-2, 3.5e-2),
    "ibmqx5": (1.4e-3, 3.0e-2, 4.5e-2),
}


def build_device_noise_model(name: str) -> NoiseModel:
    """Construct the canned noise model for a fake QX device."""
    if name not in _DEVICE_ERRORS:
        raise BackendError(f"unknown device '{name}'")
    err_1q, err_2q, err_ro = _DEVICE_ERRORS[name]
    model = NoiseModel()
    model.add_all_qubit_quantum_error(
        depolarizing_error(err_1q, 1), ["u2", "u3", "id"]
    )
    model.add_all_qubit_quantum_error(depolarizing_error(err_2q, 2), ["cx"])
    model.add_readout_error(
        ReadoutError([[1 - err_ro, err_ro], [1.5 * err_ro, 1 - 1.5 * err_ro]])
    )
    return model


class FakeQXBackend(BaseBackend):
    """A coupling-constrained, noisy simulation of an IBM QX device."""

    def __init__(self, name: str):
        coupling = CouplingMap.from_name(name)
        super().__init__(
            BackendConfiguration(
                name,
                coupling.num_qubits,
                _DEVICE_BASIS,
                simulator=False,
                coupling_map=coupling,
                conditional=False,
                description=f"simulated {name} device",
            )
        )
        self._noise_model = build_device_noise_model(name)
        self._engine = QasmSimulator()

    @property
    def coupling_map(self) -> CouplingMap:
        """The device's coupling constraints."""
        return self._configuration.coupling_map

    @property
    def noise_model(self) -> NoiseModel:
        """The device's canned noise model."""
        return self._noise_model

    def validate(self, circuit) -> None:
        """Reject circuits the physical device could not accept."""
        coupling = self.coupling_map
        if circuit.num_qubits > coupling.num_qubits:
            raise BackendError(
                f"circuit needs {circuit.num_qubits} qubits; "
                f"{self.name()} has {coupling.num_qubits}"
            )
        basis = set(self._configuration.basis_gates)
        index_of = {q: i for i, q in enumerate(circuit.qubits)}
        for item in circuit.data:
            op_name = item.operation.name
            if op_name in ("measure", "barrier", "reset"):
                continue
            if op_name not in basis:
                raise BackendError(
                    f"gate '{op_name}' is not native to {self.name()}; "
                    "transpile the circuit first"
                )
            if op_name == "cx":
                control, target = (index_of[q] for q in item.qubits)
                if not coupling.has_edge(control, target):
                    raise BackendError(
                        f"cx Q{control}->Q{target} violates the "
                        f"{self.name()} coupling map; transpile first"
                    )

    def _backend_spec(self):
        return ("ibmq", self.name())

    def _validate_batch(self, circuits) -> None:
        """Reject un-transpilable batches at submission, like the cloud
        device API would, instead of failing experiment by experiment."""
        for circuit in circuits:
            self.validate(circuit)

    def _run_experiment(self, circuit, options):
        self.validate(circuit)
        noise = options.get("noise_model", self._noise_model)
        payload = self._engine.run(
            circuit,
            shots=options.get("shots", 1024),
            seed=options.get("seed"),
            noise_model=noise,
            memory=options.get("memory", False),
            elide_diagonals=options.get("elide_diagonals", True),
        )
        return ExperimentResult(circuit.name, payload["shots"], payload)


class _IBMQProvider:
    """Stand-in for the paper's ``IBMQ`` account provider (Sec. IV)."""

    def __init__(self):
        self._loaded = False

    def load_accounts(self, token=None):
        """No-op credential load, mirroring ``IBMQ.load_accounts()``."""
        self._loaded = True
        return self

    save_account = load_accounts

    def backends(self) -> list[str]:
        """Available device names."""
        return sorted(_DEVICE_ERRORS)

    def get_backend(self, name: str) -> FakeQXBackend:
        """Fetch a simulated QX device by name, e.g. ``"ibmqx4"``."""
        if name not in _DEVICE_ERRORS:
            raise BackendError(
                f"unknown device '{name}'; available: {self.backends()}"
            )
        return FakeQXBackend(name)


#: Singleton provider, used as ``IBMQ.get_backend('ibmqx4')``.
IBMQ = _IBMQProvider()
