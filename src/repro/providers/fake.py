"""Simulated IBM QX devices.

The paper runs on the real IBM Q cloud machines; offline we substitute
noisy simulators with the exact published coupling maps (Fig. 2) and
error magnitudes in the range IBM reported for those devices (~1e-3 per
single-qubit gate, ~2-3e-2 per CNOT, a few percent readout error).  The user
workflow — transpile to the device, submit, read counts — is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BackendError
from repro.providers.backend import BackendConfiguration, BaseBackend
from repro.providers.result import ExperimentResult
from repro.simulators.noise import (
    NoiseModel,
    ReadoutError,
    depolarizing_error,
)
from repro.simulators.qasm_simulator import QasmSimulator
from repro.transpiler.coupling import CouplingMap

_DEVICE_BASIS = ["u1", "u2", "u3", "cx", "id"]

#: Error magnitudes per device: (1q depolarizing, 2q depolarizing, readout).
_DEVICE_ERRORS = {
    "ibmqx2": (1.2e-3, 2.5e-2, 3.0e-2),
    "ibmqx3": (1.5e-3, 3.5e-2, 5.0e-2),
    "ibmqx4": (1.0e-3, 2.0e-2, 3.5e-2),
    "ibmqx5": (1.4e-3, 3.0e-2, 4.5e-2),
}


class BackendProperties:
    """Per-qubit / per-edge calibration data for a device.

    Mirrors the cloud API's ``backend.properties()`` payload: gate error
    and duration for every (gate, qubits) combination plus readout error
    per qubit.  For the fake QX devices, :meth:`from_device` derives the
    values deterministically from the device name, jittered around the
    published error magnitudes so each coupler is distinguishable — which
    is what lets error-aware layout/routing meaningfully prefer one
    region over another.  Real device calibration data loads through
    :meth:`from_json` (schema in DESIGN.md, "Calibration file format")
    and round-trips via :meth:`to_json`.
    """

    _DURATION_1Q = 50e-9
    _DURATION_CX = 300e-9
    _DURATION_READOUT = 1e-6

    SCHEMA_VERSION = "1.0"

    def __init__(self, backend_name: str, gate_errors=None,
                 gate_durations=None, readout_errors=None,
                 readout_durations=None):
        self.backend_name = backend_name
        #: {(gate, (qubits...)): error rate}
        self._gate_errors: dict = dict(gate_errors or {})
        #: {(gate, (qubits...)): duration in seconds}
        self._gate_durations: dict = dict(gate_durations or {})
        #: {qubit: readout error}
        self._readout_errors: dict = dict(readout_errors or {})
        #: {qubit: readout duration}; falls back to _DURATION_READOUT
        self._readout_durations: dict = dict(readout_durations or {})

    @classmethod
    def from_device(cls, name: str,
                    coupling: CouplingMap) -> "BackendProperties":
        """Synthesize deterministic calibrations for a fake QX device."""
        if name not in _DEVICE_ERRORS:
            raise BackendError(f"unknown device '{name}'")
        err_1q, err_2q, err_ro = _DEVICE_ERRORS[name]
        seed = int.from_bytes(name.encode(), "little") % (2**32)
        rng = np.random.default_rng(seed)
        properties = cls(name)
        for qubit in range(coupling.num_qubits):
            jitter = 0.7 + 0.6 * rng.random()
            for gate in ("u1", "u2", "u3", "id"):
                scale = 0.0 if gate == "u1" else jitter
                properties._gate_errors[(gate, (qubit,))] = err_1q * scale
                properties._gate_durations[(gate, (qubit,))] = (
                    0.0 if gate == "u1" else cls._DURATION_1Q
                )
            properties._readout_errors[qubit] = (
                err_ro * (0.7 + 0.6 * rng.random())
            )
        for edge in coupling.edges:
            jitter = 0.6 + 0.8 * rng.random()
            properties._gate_errors[("cx", tuple(edge))] = err_2q * jitter
            properties._gate_durations[("cx", tuple(edge))] = (
                cls._DURATION_CX * (0.8 + 0.4 * rng.random())
            )
        return properties

    def gate_error(self, gate: str, qubits) -> float | None:
        """Calibrated error rate for ``gate`` on ``qubits`` (or None)."""
        return self._gate_errors.get((gate, tuple(qubits)))

    def gate_duration(self, gate: str, qubits) -> float | None:
        """Calibrated duration (seconds) for ``gate`` on ``qubits``."""
        return self._gate_durations.get((gate, tuple(qubits)))

    def readout_error(self, qubit: int) -> float | None:
        """Calibrated readout error for ``qubit``."""
        return self._readout_errors.get(qubit)

    def readout_duration(self, qubit: int) -> float:
        """Readout duration (seconds)."""
        return self._readout_durations.get(qubit, self._DURATION_READOUT)

    def to_json(self) -> dict:
        """JSON-compatible calibration payload (see DESIGN.md schema)."""
        gates = [
            {
                "gate": gate,
                "qubits": list(qubits),
                "error": self._gate_errors.get((gate, qubits)),
                "duration": self._gate_durations.get((gate, qubits)),
            }
            for gate, qubits in sorted(
                set(self._gate_errors) | set(self._gate_durations)
            )
        ]
        readout = [
            {
                "qubit": qubit,
                "error": self._readout_errors.get(qubit),
                "duration": self.readout_duration(qubit),
            }
            for qubit in sorted(
                set(self._readout_errors) | set(self._readout_durations)
            )
        ]
        return {
            "backend_name": self.backend_name,
            "schema_version": self.SCHEMA_VERSION,
            "gates": gates,
            "readout": readout,
        }

    @classmethod
    def from_json(cls, payload) -> "BackendProperties":
        """Load calibrations from a payload dict or JSON string.

        This is the entry point for *real* device calibration data: any
        backend name is accepted, and a Target built from a backend
        carrying these properties uses them verbatim.
        """
        import json as _json

        if isinstance(payload, (str, bytes)):
            payload = _json.loads(payload)
        if not isinstance(payload, dict) or "backend_name" not in payload:
            raise BackendError(
                "calibration payload must be a dict with a 'backend_name'"
            )
        properties = cls(payload["backend_name"])
        for entry in payload.get("gates", []):
            key = (entry["gate"], tuple(entry["qubits"]))
            if entry.get("error") is not None:
                properties._gate_errors[key] = float(entry["error"])
            if entry.get("duration") is not None:
                properties._gate_durations[key] = float(entry["duration"])
        for entry in payload.get("readout", []):
            qubit = int(entry["qubit"])
            if entry.get("error") is not None:
                properties._readout_errors[qubit] = float(entry["error"])
            if entry.get("duration") is not None:
                properties._readout_durations[qubit] = (
                    float(entry["duration"])
                )
        return properties


def build_device_noise_model(name: str) -> NoiseModel:
    """Construct the canned noise model for a fake QX device."""
    if name not in _DEVICE_ERRORS:
        raise BackendError(f"unknown device '{name}'")
    err_1q, err_2q, err_ro = _DEVICE_ERRORS[name]
    model = NoiseModel()
    model.add_all_qubit_quantum_error(
        depolarizing_error(err_1q, 1), ["u2", "u3", "id"]
    )
    model.add_all_qubit_quantum_error(depolarizing_error(err_2q, 2), ["cx"])
    model.add_readout_error(
        ReadoutError([[1 - err_ro, err_ro], [1.5 * err_ro, 1 - 1.5 * err_ro]])
    )
    return model


class FakeQXBackend(BaseBackend):
    """A coupling-constrained, noisy simulation of an IBM QX device."""

    def __init__(self, name: str):
        coupling = CouplingMap.from_name(name)
        super().__init__(
            BackendConfiguration(
                name,
                coupling.num_qubits,
                _DEVICE_BASIS,
                simulator=False,
                coupling_map=coupling,
                conditional=False,
                description=f"simulated {name} device",
            )
        )
        self._noise_model = build_device_noise_model(name)
        self._engine = QasmSimulator()
        self._properties = BackendProperties.from_device(name, coupling)

    def properties(self) -> BackendProperties:
        """Per-qubit/per-edge calibration data, like the cloud API."""
        return self._properties

    def load_properties(self, payload) -> BackendProperties:
        """Replace the calibrations from a file payload.

        Accepts a ready :class:`BackendProperties`, a payload dict, or a
        JSON string (see DESIGN.md, "Calibration file format") — the hook
        for loading *real* device calibration data, which then flows into
        ``Target.from_backend`` and the error-aware layout/routing passes.
        """
        if not isinstance(payload, BackendProperties):
            payload = BackendProperties.from_json(payload)
        self._properties = payload
        return self._properties

    @property
    def coupling_map(self) -> CouplingMap:
        """The device's coupling constraints."""
        return self._configuration.coupling_map

    @property
    def noise_model(self) -> NoiseModel:
        """The device's canned noise model."""
        return self._noise_model

    def validate(self, circuit) -> None:
        """Reject circuits the physical device could not accept."""
        coupling = self.coupling_map
        if circuit.num_qubits > coupling.num_qubits:
            raise BackendError(
                f"circuit needs {circuit.num_qubits} qubits; "
                f"{self.name()} has {coupling.num_qubits}"
            )
        basis = set(self._configuration.basis_gates)
        index_of = {q: i for i, q in enumerate(circuit.qubits)}
        for item in circuit.data:
            op_name = item.operation.name
            if op_name in ("measure", "barrier", "reset"):
                continue
            if op_name not in basis:
                raise BackendError(
                    f"gate '{op_name}' is not native to {self.name()}; "
                    "transpile the circuit first"
                )
            if op_name == "cx":
                control, target = (index_of[q] for q in item.qubits)
                if not coupling.has_edge(control, target):
                    raise BackendError(
                        f"cx Q{control}->Q{target} violates the "
                        f"{self.name()} coupling map; transpile first"
                    )

    def _backend_spec(self):
        return ("ibmq", self.name())

    def _validate_batch(self, circuits) -> None:
        """Reject un-transpilable batches at submission, like the cloud
        device API would, instead of failing experiment by experiment."""
        for circuit in circuits:
            self.validate(circuit)

    def _run_experiment(self, circuit, options):
        self.validate(circuit)
        noise = options.get("noise_model", self._noise_model)
        payload = self._engine.run(
            circuit,
            shots=options.get("shots", 1024),
            seed=options.get("seed"),
            noise_model=noise,
            memory=options.get("memory", False),
            elide_diagonals=options.get("elide_diagonals", True),
        )
        return ExperimentResult(circuit.name, payload["shots"], payload)


class _IBMQProvider:
    """Stand-in for the paper's ``IBMQ`` account provider (Sec. IV)."""

    def __init__(self):
        self._loaded = False

    def load_accounts(self, token=None):
        """No-op credential load, mirroring ``IBMQ.load_accounts()``."""
        self._loaded = True
        return self

    save_account = load_accounts

    def backends(self) -> list[str]:
        """Available device names."""
        return sorted(_DEVICE_ERRORS)

    def get_backend(self, name: str) -> FakeQXBackend:
        """Fetch a simulated QX device by name, e.g. ``"ibmqx4"``."""
        if name not in _DEVICE_ERRORS:
            raise BackendError(
                f"unknown device '{name}'; available: {self.backends()}"
            )
        return FakeQXBackend(name)


#: Singleton provider, used as ``IBMQ.get_backend('ibmqx4')``.
IBMQ = _IBMQProvider()
