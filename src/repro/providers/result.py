"""Execution results: counts histograms and the Result container."""

from __future__ import annotations

import numpy as np

from repro.exceptions import BackendError


def _sum_by_key(keys, values) -> dict:
    """Sum ``values`` grouped by ``keys`` (numpy-backed histogram add).

    The shared core of :meth:`Counts.merge` and :meth:`Counts.marginal`:
    one ``np.unique`` over the key strings plus an ``np.add.at`` scatter
    replaces the per-entry dict updates, which dominate when merging
    many-chunk histograms with wide supports.
    """
    key_array = np.asarray(keys, dtype=str)
    value_array = np.asarray(values)
    if not np.issubdtype(value_array.dtype, np.integer):
        value_array = value_array.astype(float)
    unique, inverse = np.unique(key_array, return_inverse=True)
    totals = np.zeros(len(unique), dtype=value_array.dtype)
    np.add.at(totals, inverse, value_array)
    return dict(zip(unique.tolist(), totals.tolist()))


class Counts(dict):
    """A measurement histogram keyed by bitstring (clbit 0 rightmost)."""

    def most_frequent(self) -> str:
        """The most common outcome."""
        if not self:
            raise BackendError("no counts recorded")
        return max(self, key=self.get)

    def probabilities(self) -> dict:
        """Normalized outcome frequencies."""
        total = sum(self.values())
        return {key: value / total for key, value in self.items()}

    def int_outcomes(self) -> dict:
        """Counts keyed by integer outcome values."""
        return {int(key, 2): value for key, value in self.items()}

    @classmethod
    def merge(cls, histograms) -> "Counts":
        """Add histograms key-wise (numpy-backed).

        The chunk-merge primitive of the collect path: summing the
        per-chunk histograms of one experiment is exact integer
        addition, so merged chunked counts are bit-identical to the
        whole-experiment run no matter how the chunks were scheduled.
        Empty histograms are skipped; merging nothing returns empty
        counts.
        """
        histograms = [h for h in histograms if h]
        if not histograms:
            return cls()
        if len(histograms) == 1:
            return cls(histograms[0])
        keys: list = []
        values: list = []
        for histogram in histograms:
            keys.extend(histogram.keys())
            values.extend(histogram.values())
        return cls(_sum_by_key(keys, values))

    def marginal(self, positions) -> "Counts":
        """Marginalize onto the given clbit positions (0 = rightmost).

        The returned keys list ``positions[-1] ... positions[0]`` left to
        right, i.e. ``positions[0]`` becomes the new bit 0.
        """
        if not self:
            return Counts()
        keys = []
        for key in self:
            bits = key[::-1]  # bits[i] = clbit i
            keys.append("".join(
                bits[p] if p < len(bits) else "0" for p in positions
            )[::-1])
        return Counts(_sum_by_key(keys, list(self.values())))


class ExperimentResult:
    """Result of one circuit's execution, including execution metadata."""

    def __init__(self, circuit_name, shots, data, status="DONE", error=None,
                 time_taken=None, seed=None, attempts=1, backoff_total=0.0,
                 faults=(), spans=()):
        self.circuit_name = circuit_name
        self.shots = shots
        #: Raw payload: may contain 'counts', 'memory', 'statevector',
        #: 'unitary', 'density_matrix', 'dd_nodes', ...
        self.data = data
        #: "DONE" or "ERROR" (also "INCOMPLETE"/"CANCELLED" for partial
        #: placeholders); a failed experiment does not abort its batch.
        self.status = status
        #: Exception text when status is not "DONE".
        self.error = error
        #: Wall-clock seconds spent on this experiment (set by the executor).
        self.time_taken = time_taken
        #: The derived per-experiment seed the engine actually used.
        self.seed = seed
        #: How many times the executor ran this experiment (retries count;
        #: 0 for placeholders that never ran).
        self.attempts = attempts
        #: Total seconds slept in retry backoff for this experiment.
        self.backoff_total = backoff_total
        #: Injected-fault log, e.g. ["transient@0", "corrupt@1"].
        self.faults = list(faults)
        #: Telemetry span dictionaries recorded where the experiment ran
        #: (empty unless tracing was enabled at submission); merged into
        #: the job's trace at collect time.
        self.spans = list(spans)
        #: Shot-chunk bookkeeping.  For a chunk-of-an-experiment outcome,
        #: ``chunk`` is the dispatch-time chunk descriptor (index/start/
        #: stop); for a merged experiment, ``chunks`` is the layout size
        #: and ``completed_chunks``/``resumed_chunks`` count the chunks
        #: that finished / were loaded from a checkpoint ledger.
        self.chunk = None
        self.chunks = 1
        self.completed_chunks = 1 if status == "DONE" else 0
        self.resumed_chunks = 0

    @property
    def success(self) -> bool:
        """Whether this experiment completed without error."""
        return self.error is None

    def __repr__(self):
        if not self.success:
            return (
                f"ExperimentResult({self.circuit_name!r}, status=ERROR, "
                f"error={self.error!r})"
            )
        return (
            f"ExperimentResult({self.circuit_name!r}, shots={self.shots}, "
            f"keys={sorted(self.data)})"
        )


def merge_chunk_outcomes(name, outcomes, total_chunks=None):
    """Merge one experiment's shot-chunk outcomes into one result.

    ``outcomes`` are the per-chunk :class:`ExperimentResult` entries in
    chunk-index order (checkpoint-loaded chunks included).  Counts are
    added with :meth:`Counts.merge` — exact integer addition, so the
    merged histogram is bit-identical to an unchunked run — and memory
    lists concatenate in chunk order.  Non-shot payload keys (a density
    matrix, say) are identical across chunks and taken from the first
    completed one.  Attempt/backoff/fault ledgers accumulate; fault
    entries gain a ``c<chunk>:`` prefix so ``fault_stats`` stays
    attributable per chunk.

    Status: DONE only when every chunk of the layout completed; a chunk
    that failed makes the merge ERROR; otherwise a cancelled or
    incomplete chunk makes it CANCELLED/INCOMPLETE — with the counts
    accumulated so far still attached, which is what lets a cancelled
    streaming job keep its already-delivered chunks.
    """
    outcomes = list(outcomes)
    if (
        len(outcomes) == 1
        and outcomes[0].chunk is None
        and total_chunks in (None, 1)
    ):
        return outcomes[0]
    if total_chunks is None:
        total_chunks = len(outcomes)
    done = [o for o in outcomes if o.status == "DONE"]
    data: dict = {}
    counts_parts = [
        o.data["counts"] for o in done
        if isinstance(o.data, dict) and "counts" in o.data
    ]
    if counts_parts:
        data["counts"] = Counts.merge(counts_parts)
    memory_parts = [
        o.data["memory"] for o in done
        if isinstance(o.data, dict) and "memory" in o.data
    ]
    if memory_parts:
        memory: list = []
        for part in memory_parts:
            memory.extend(part)
        data["memory"] = memory
    shots = sum(o.shots or 0 for o in done)
    data["shots"] = shots
    for outcome in done:
        if not isinstance(outcome.data, dict):
            continue
        for key, value in outcome.data.items():
            if key not in data and key != "chunk_results":
                data[key] = value
    errors = [o for o in outcomes if o.status == "ERROR"]
    cancelled = [o for o in outcomes if o.status == "CANCELLED"]
    if len(done) == total_chunks and not errors:
        status, error = "DONE", None
    elif errors:
        status = "ERROR"
        first = errors[0]
        index = first.chunk["index"] if first.chunk else "?"
        error = (
            f"chunk {index}/{total_chunks} failed: {first.error} "
            f"({len(done)}/{total_chunks} chunks completed)"
        )
    elif cancelled:
        status = "CANCELLED"
        error = f"cancelled after {len(done)}/{total_chunks} chunks"
    else:
        status = "INCOMPLETE"
        error = f"{len(done)}/{total_chunks} chunks completed"
    merged = ExperimentResult(name, shots, data, status=status, error=error)
    times = [o.time_taken for o in outcomes if o.time_taken is not None]
    merged.time_taken = sum(times) if times else None
    merged.attempts = sum(getattr(o, "attempts", 1) or 0 for o in outcomes)
    merged.backoff_total = sum(
        getattr(o, "backoff_total", 0.0) or 0.0 for o in outcomes
    )
    faults: list = []
    spans: list = []
    for outcome in outcomes:
        index = outcome.chunk["index"] if outcome.chunk else 0
        faults.extend(
            f"c{index}:{entry}" for entry in getattr(outcome, "faults", ())
        )
        spans.extend(getattr(outcome, "spans", ()) or ())
    merged.faults = faults
    merged.spans = spans
    merged.chunks = total_chunks
    merged.completed_chunks = len(done)
    merged.resumed_chunks = sum(
        1 for o in outcomes if getattr(o, "resumed", False)
    )
    return merged


class Result:
    """Results for a batch of circuits run on one backend."""

    def __init__(self, backend_name, job_id, experiment_results):
        self.backend_name = backend_name
        self.job_id = job_id
        self._results = list(experiment_results)

    @classmethod
    def merge_chunks(cls, name, outcomes, total_chunks=None):
        """Merge per-chunk outcomes of one experiment (see
        :func:`merge_chunk_outcomes`)."""
        return merge_chunk_outcomes(name, outcomes, total_chunks)

    @property
    def success(self) -> bool:
        """Whether every experiment in the batch completed without error."""
        return all(experiment.success for experiment in self._results)

    @property
    def partial(self) -> bool:
        """Whether this result is missing any successful experiment.

        A partial result is still collectable: the accessors work for
        every completed experiment and raise only for the failed,
        incomplete, or cancelled ones.  Partial results arise from
        exhausted retries, ``result(timeout=..., partial=True)`` after a
        deadline, and ``result(partial=True)`` after a cancel.
        """
        return any(
            experiment.status != "DONE" for experiment in self._results
        )

    @property
    def failed_experiments(self) -> list:
        """The non-successful :class:`ExperimentResult` entries."""
        return [
            experiment for experiment in self._results
            if experiment.status != "DONE"
        ]

    @property
    def completed_experiments(self) -> list:
        """The successful :class:`ExperimentResult` entries."""
        return [
            experiment for experiment in self._results
            if experiment.status == "DONE"
        ]

    def _lookup(self, circuit=None) -> ExperimentResult:
        if circuit is None:
            if len(self._results) != 1:
                raise BackendError(
                    "multiple experiments in result; specify a circuit"
                )
            experiment = self._results[0]
        else:
            name = circuit if isinstance(circuit, str) else circuit.name
            for candidate in self._results:
                if candidate.circuit_name == name:
                    experiment = candidate
                    break
            else:
                raise BackendError(f"no result for circuit '{name}'")
        if not experiment.success:
            raise BackendError(
                f"experiment '{experiment.circuit_name}' failed: "
                f"{experiment.error}"
            )
        return experiment

    def get_counts(self, circuit=None) -> Counts:
        """Measurement counts for one circuit."""
        experiment = self._lookup(circuit)
        if "counts" not in experiment.data:
            raise BackendError("this result holds no counts")
        return Counts(experiment.data["counts"])

    def get_memory(self, circuit=None) -> list:
        """Per-shot outcomes (requires ``memory=True`` at run time)."""
        experiment = self._lookup(circuit)
        if "memory" not in experiment.data:
            raise BackendError("memory was not requested")
        return list(experiment.data["memory"])

    def get_statevector(self, circuit=None):
        """Final statevector (statevector backend only)."""
        experiment = self._lookup(circuit)
        if "statevector" not in experiment.data:
            raise BackendError("this result holds no statevector")
        return experiment.data["statevector"]

    def get_unitary(self, circuit=None):
        """Circuit unitary (unitary backend only)."""
        experiment = self._lookup(circuit)
        if "unitary" not in experiment.data:
            raise BackendError("this result holds no unitary")
        return experiment.data["unitary"]

    def data(self, circuit=None) -> dict:
        """The raw data payload."""
        return dict(self._lookup(circuit).data)

    @property
    def results(self) -> list:
        """All experiment results."""
        return list(self._results)

    def __repr__(self):
        return (
            f"Result(backend={self.backend_name!r}, job={self.job_id!r}, "
            f"experiments={len(self._results)})"
        )
