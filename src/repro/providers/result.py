"""Execution results: counts histograms and the Result container."""

from __future__ import annotations

from repro.exceptions import BackendError


class Counts(dict):
    """A measurement histogram keyed by bitstring (clbit 0 rightmost)."""

    def most_frequent(self) -> str:
        """The most common outcome."""
        if not self:
            raise BackendError("no counts recorded")
        return max(self, key=self.get)

    def probabilities(self) -> dict:
        """Normalized outcome frequencies."""
        total = sum(self.values())
        return {key: value / total for key, value in self.items()}

    def int_outcomes(self) -> dict:
        """Counts keyed by integer outcome values."""
        return {int(key, 2): value for key, value in self.items()}

    def marginal(self, positions) -> "Counts":
        """Marginalize onto the given clbit positions (0 = rightmost).

        The returned keys list ``positions[-1] ... positions[0]`` left to
        right, i.e. ``positions[0]`` becomes the new bit 0.
        """
        merged: dict = {}
        for key, value in self.items():
            bits = key[::-1]  # bits[i] = clbit i
            selected = "".join(
                bits[p] if p < len(bits) else "0" for p in positions
            )[::-1]
            merged[selected] = merged.get(selected, 0) + value
        return Counts(merged)


class ExperimentResult:
    """Result of one circuit's execution, including execution metadata."""

    def __init__(self, circuit_name, shots, data, status="DONE", error=None,
                 time_taken=None, seed=None, attempts=1, backoff_total=0.0,
                 faults=(), spans=()):
        self.circuit_name = circuit_name
        self.shots = shots
        #: Raw payload: may contain 'counts', 'memory', 'statevector',
        #: 'unitary', 'density_matrix', 'dd_nodes', ...
        self.data = data
        #: "DONE" or "ERROR" (also "INCOMPLETE"/"CANCELLED" for partial
        #: placeholders); a failed experiment does not abort its batch.
        self.status = status
        #: Exception text when status is not "DONE".
        self.error = error
        #: Wall-clock seconds spent on this experiment (set by the executor).
        self.time_taken = time_taken
        #: The derived per-experiment seed the engine actually used.
        self.seed = seed
        #: How many times the executor ran this experiment (retries count;
        #: 0 for placeholders that never ran).
        self.attempts = attempts
        #: Total seconds slept in retry backoff for this experiment.
        self.backoff_total = backoff_total
        #: Injected-fault log, e.g. ["transient@0", "corrupt@1"].
        self.faults = list(faults)
        #: Telemetry span dictionaries recorded where the experiment ran
        #: (empty unless tracing was enabled at submission); merged into
        #: the job's trace at collect time.
        self.spans = list(spans)

    @property
    def success(self) -> bool:
        """Whether this experiment completed without error."""
        return self.error is None

    def __repr__(self):
        if not self.success:
            return (
                f"ExperimentResult({self.circuit_name!r}, status=ERROR, "
                f"error={self.error!r})"
            )
        return (
            f"ExperimentResult({self.circuit_name!r}, shots={self.shots}, "
            f"keys={sorted(self.data)})"
        )


class Result:
    """Results for a batch of circuits run on one backend."""

    def __init__(self, backend_name, job_id, experiment_results):
        self.backend_name = backend_name
        self.job_id = job_id
        self._results = list(experiment_results)

    @property
    def success(self) -> bool:
        """Whether every experiment in the batch completed without error."""
        return all(experiment.success for experiment in self._results)

    @property
    def partial(self) -> bool:
        """Whether this result is missing any successful experiment.

        A partial result is still collectable: the accessors work for
        every completed experiment and raise only for the failed,
        incomplete, or cancelled ones.  Partial results arise from
        exhausted retries, ``result(timeout=..., partial=True)`` after a
        deadline, and ``result(partial=True)`` after a cancel.
        """
        return any(
            experiment.status != "DONE" for experiment in self._results
        )

    @property
    def failed_experiments(self) -> list:
        """The non-successful :class:`ExperimentResult` entries."""
        return [
            experiment for experiment in self._results
            if experiment.status != "DONE"
        ]

    @property
    def completed_experiments(self) -> list:
        """The successful :class:`ExperimentResult` entries."""
        return [
            experiment for experiment in self._results
            if experiment.status == "DONE"
        ]

    def _lookup(self, circuit=None) -> ExperimentResult:
        if circuit is None:
            if len(self._results) != 1:
                raise BackendError(
                    "multiple experiments in result; specify a circuit"
                )
            experiment = self._results[0]
        else:
            name = circuit if isinstance(circuit, str) else circuit.name
            for candidate in self._results:
                if candidate.circuit_name == name:
                    experiment = candidate
                    break
            else:
                raise BackendError(f"no result for circuit '{name}'")
        if not experiment.success:
            raise BackendError(
                f"experiment '{experiment.circuit_name}' failed: "
                f"{experiment.error}"
            )
        return experiment

    def get_counts(self, circuit=None) -> Counts:
        """Measurement counts for one circuit."""
        experiment = self._lookup(circuit)
        if "counts" not in experiment.data:
            raise BackendError("this result holds no counts")
        return Counts(experiment.data["counts"])

    def get_memory(self, circuit=None) -> list:
        """Per-shot outcomes (requires ``memory=True`` at run time)."""
        experiment = self._lookup(circuit)
        if "memory" not in experiment.data:
            raise BackendError("memory was not requested")
        return list(experiment.data["memory"])

    def get_statevector(self, circuit=None):
        """Final statevector (statevector backend only)."""
        experiment = self._lookup(circuit)
        if "statevector" not in experiment.data:
            raise BackendError("this result holds no statevector")
        return experiment.data["statevector"]

    def get_unitary(self, circuit=None):
        """Circuit unitary (unitary backend only)."""
        experiment = self._lookup(circuit)
        if "unitary" not in experiment.data:
            raise BackendError("this result holds no unitary")
        return experiment.data["unitary"]

    def data(self, circuit=None) -> dict:
        """The raw data payload."""
        return dict(self._lookup(circuit).data)

    @property
    def results(self) -> list:
        """All experiment results."""
        return list(self._results)

    def __repr__(self):
        return (
            f"Result(backend={self.backend_name!r}, job={self.job_id!r}, "
            f"experiments={len(self._results)})"
        )
