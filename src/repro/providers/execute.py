"""Top-level ``execute`` and ``transpile`` entry points (paper Sec. IV).

.. deprecated:: (soft)
    ``execute()`` remains supported for one-off submissions, but
    multi-job workloads should prefer a :class:`repro.runtime.Session`
    on a :class:`repro.runtime.RuntimeService`: sessions pin jobs to a
    warm backend (reusing its gate-matrix caches and the two-tier
    transpile cache), persist jobs in a durable store that survives
    process restarts, and apply fair-share scheduling across tenants.
    ``execute`` re-instantiates nothing per call either — it drives the
    same :class:`~repro.providers.engine.ExecutionEngine` — but it gives
    you none of the queueing, durability, or warm-session behavior.
"""

from __future__ import annotations

from repro.providers.backend import BaseBackend, Job
from repro.exceptions import BackendError
from repro.providers.engine import get_execution_engine
from repro.telemetry.jobtrace import JobTrace
from repro.transpiler.cache import get_transpile_cache
from repro.transpiler.preset import transpile as _transpile

#: Re-exported so ``from repro import transpile`` matches the Qiskit API.
transpile = _transpile


def execute(circuits, backend: BaseBackend, shots: int = 1024, seed=None,
            noise_model=None, memory: bool = False,
            optimization_level: int = 1, executor: str = None,
            max_workers: int = None, transpile_cache: bool = True,
            retry_policy=None, fault_injector=None,
            shot_chunk_size=None, shot_chunk_dispatch=None,
            checkpoint=None) -> Job:
    """Compile (if needed), assemble, and run circuits on a backend.

    For simulator backends the circuits run as-is.  For device backends the
    circuits are compiled against a :class:`~repro.transpiler.target.Target`
    built from the backend's configuration and calibrations — the
    ``compile`` step of the paper's Section IV run-through.  Compiled
    circuits are memoised in the content-hash transpile cache, so
    re-executing an identical batch skips compilation entirely
    (``transpile_cache=False`` opts out; the returned job carries the
    cache counters as ``job.transpile_cache_stats``).  The batch is then
    assembled into a Qobj and scheduled by the execution pipeline (see
    :mod:`repro.providers.executor`).

    Executor knobs:

    * ``executor`` — ``"serial"``, ``"threads"``, ``"processes"``, or
      ``"auto"`` (default None = auto): the process pool kicks in for
      batches of 4+ experiments at 10+ qubits on multi-core hosts.
    * ``max_workers`` — pool width for the parallel executors.

    Fault tolerance (see :mod:`repro.providers.retry` and
    :mod:`repro.providers.faults`):

    * ``retry_policy`` — per-experiment retry budget/backoff (a
      :class:`~repro.providers.retry.RetryPolicy`, a kwargs dict, or
      False to disable); default: up to 3 attempts.
    * ``fault_injector`` — arm a seeded
      :class:`~repro.providers.faults.FaultInjector` for reproducible
      chaos testing.

    Shot-chunk streaming and resume (see ``BaseBackend.run``):

    * ``shot_chunk_size`` — shots per chunk (default 16384; 0 disables);
      ``shot_chunk_dispatch=True`` forces one executor payload per chunk.
    * ``checkpoint`` — ledger path; completed chunks persist as they
      finish and ``Job.resume(path)`` restarts a crashed job re-running
      only the missing ones.

    The returned job exposes the fault/retry ledger as
    ``job.fault_stats`` and supports ``result(timeout=..., partial=True)``
    to gather whatever finished before a deadline or cancel.

    The batch ``seed`` is expanded into one derived seed per experiment at
    assembly, so a seeded batch returns bit-identical results under every
    executor.  The returned :class:`Job` exposes ``status()``, ``cancel()``,
    and per-experiment timing/error metadata on its result.

    When tracing is enabled (:func:`repro.telemetry.enable_tracing`
    before this call) the job records a hierarchical trace — transpile
    and per-pass spans included — queryable via ``job.trace()``.
    """
    if not isinstance(backend, BaseBackend):
        raise BackendError("backend must come from Aer or IBMQ get_backend")
    single = not isinstance(circuits, (list, tuple))
    batch = [circuits] if single else list(circuits)
    engine = get_execution_engine()
    # The trace is created before compiling so the transpile spans (and
    # their per-pass children) join the job's trace; the reserved id
    # becomes the Job's id inside ``backend.run``.
    job_trace = JobTrace(Job.reserve_id(), backend.name())
    batch = engine.compile_batch(
        backend, batch, job_trace,
        optimization_level=optimization_level, seed=seed,
        transpile_cache=transpile_cache,
    )
    options = {"shots": shots, "seed": seed, "memory": memory,
               "job_trace": job_trace}
    if noise_model is not None:
        options["noise_model"] = noise_model
    if executor is not None:
        options["executor"] = executor
    if max_workers is not None:
        options["max_workers"] = max_workers
    if retry_policy is not None:
        options["retry_policy"] = retry_policy
    if fault_injector is not None:
        options["fault_injector"] = fault_injector
    if shot_chunk_size is not None:
        options["shot_chunk_size"] = shot_chunk_size
    if shot_chunk_dispatch is not None:
        options["shot_chunk_dispatch"] = shot_chunk_dispatch
    if checkpoint is not None:
        options["checkpoint"] = checkpoint
    job = backend.run(batch, **options)
    job.transpile_cache_stats = get_transpile_cache().stats()
    return job
