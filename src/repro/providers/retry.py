"""Per-experiment retry: policy, deterministic backoff, fault ledger.

A :class:`RetryPolicy` is applied *inside* ``run_assembled_experiment``
(the common worker path of the serial, thread, and process dispatchers),
so a transient fault re-runs only the affected experiment — with its
original derived seed, which keeps a retried batch bit-identical to a
fault-free run.  The policy is a plain-attribute object and therefore
picklable: it rides the per-experiment config into process-pool workers.

Classification: only exception types listed in ``retryable_exceptions``
are retried.  By default that is the transient family
(:class:`~repro.exceptions.TransientFaultError`,
:class:`~repro.exceptions.WorkerCrashError`,
:class:`~repro.exceptions.CorruptedResultError`, plus
``ConnectionError``); genuine programming/validation errors (a circuit
the simulator rejects, say) fail immediately, exactly as before.

Backoff is exponential with *deterministic* jitter: the jitter fraction
is derived from the experiment's seed and the attempt number, never from
global randomness, so the ledger of backoff waits is reproducible.
"""

from __future__ import annotations

import hashlib

from repro.exceptions import (
    BackendError,
    CorruptedResultError,
    TransientFaultError,
    WorkerCrashError,
)

#: Exception types retried by default: the transient/flaky family.
DEFAULT_RETRYABLE = (
    TransientFaultError,
    WorkerCrashError,
    CorruptedResultError,
    ConnectionError,
)


class RetryPolicy:
    """How many times, and how patiently, to re-run a failed experiment.

    * ``max_attempts`` — total tries per experiment (1 = no retries).
    * ``base_delay`` / ``backoff_factor`` / ``max_delay`` — the wait
      before retry *k* is ``base_delay * backoff_factor**k``, capped at
      ``max_delay``.
    * ``jitter`` — symmetric fractional jitter (0.1 = +/-10%) applied to
      each wait, derived deterministically from (seed, attempt).
    * ``retryable_exceptions`` — exception types classified as transient.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 backoff_factor: float = 2.0, max_delay: float = 1.0,
                 jitter: float = 0.1, retryable_exceptions=None):
        if max_attempts < 1:
            raise BackendError("max_attempts must be at least 1")
        if base_delay < 0 or max_delay < 0:
            raise BackendError("retry delays must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise BackendError("jitter must be in [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.backoff_factor = float(backoff_factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.retryable_exceptions = tuple(
            DEFAULT_RETRYABLE if retryable_exceptions is None
            else retryable_exceptions
        )

    def retryable(self, exc: BaseException) -> bool:
        """Whether the exception is classified as transient."""
        return isinstance(exc, self.retryable_exceptions)

    def backoff(self, attempt: int, seed=None) -> float:
        """Wait (seconds) before re-running after failed attempt number
        ``attempt`` (0-based).  Deterministic for a given (seed, attempt).
        """
        if self.base_delay <= 0:
            return 0.0
        delay = min(
            self.base_delay * self.backoff_factor ** attempt, self.max_delay
        )
        if self.jitter > 0:
            digest = hashlib.sha256(
                f"backoff:{seed}:{attempt}".encode()
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 + self.jitter * (2.0 * fraction - 1.0)
        return delay

    def __repr__(self):
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, "
            f"backoff_factor={self.backoff_factor}, jitter={self.jitter})"
        )


#: The pipeline default: up to 3 attempts, 50 ms first backoff.  Inert for
#: healthy batches — non-transient errors are never retried.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Error type names the runtime service classifies as *infrastructure*
#: failures: the transient family plus the executor-degradation
#: surfaces.  Experiment errors are persisted as ``"TypeName: message"``
#: strings, so classification is by leading type name.
INFRASTRUCTURE_ERROR_NAMES = frozenset(
    exc.__name__ for exc in DEFAULT_RETRYABLE
) | {"BrokenExecutor", "BrokenProcessPool", "TimeoutError"}


def is_infrastructure_error(error) -> bool:
    """Whether an exception (or persisted error string) is an
    infrastructure failure.

    Drives the runtime service's circuit breakers and dead-letter
    policy: only failures of the transient/flaky family count against a
    backend's health or a job's service-attempt budget — a circuit the
    simulator genuinely rejects is the *user's* failure and must neither
    open a breaker nor be retried at the service level.
    """
    if error is None:
        return False
    if isinstance(error, BaseException):
        return isinstance(error, DEFAULT_RETRYABLE + (TimeoutError,))
    text = str(error)
    if text.split(":", 1)[0].strip() in INFRASTRUCTURE_ERROR_NAMES:
        return True
    # Merged chunk errors wrap the original ("chunk 1/3 failed:
    # TransientFaultError: ..."): classify by the embedded type name.
    return any(f"{name}:" in text for name in INFRASTRUCTURE_ERROR_NAMES)


def infrastructure_failure(result) -> bool:
    """Whether a collected :class:`Result`'s failures are all
    infrastructure-class.

    True only when the result failed *and* every failed experiment's
    recorded error classifies as infrastructure — a batch with any
    genuine user error is not eligible for service-level retry or
    quarantine (re-running it would fail identically by design).
    """
    failed = [
        experiment for experiment in result.results
        if not experiment.success
    ]
    if not failed:
        return False
    return all(
        is_infrastructure_error(experiment.error) for experiment in failed
    )


def resolve_retry_policy(value) -> RetryPolicy:
    """Normalize the ``retry_policy`` run option.

    Accepts None (pipeline default), a ready :class:`RetryPolicy`, a
    kwargs dictionary, or False (disable retries entirely).
    """
    if value is None:
        return DEFAULT_RETRY_POLICY
    if value is False:
        return RetryPolicy(max_attempts=1, base_delay=0.0)
    if isinstance(value, RetryPolicy):
        return value
    if isinstance(value, dict):
        return RetryPolicy(**value)
    raise BackendError(
        "retry_policy must be a RetryPolicy, a kwargs dict, False, or None"
    )


def aggregate_fault_stats(outcomes, fallbacks=()) -> dict:
    """Build the job-level fault/retry ledger from experiment outcomes.

    Accounts for every attempt, backoff wait, injected fault, and executor
    fallback; exposed as ``job.fault_stats``.
    """
    outcomes = list(outcomes)
    per_experiment = {}
    attempts = retries = faults = 0
    total_chunks = completed_chunks = resumed_chunks = 0
    backoff_total = 0.0
    failed = []
    for outcome in outcomes:
        exp_attempts = getattr(outcome, "attempts", 1) or 0
        exp_backoff = getattr(outcome, "backoff_total", 0.0) or 0.0
        exp_faults = list(getattr(outcome, "faults", ()) or ())
        attempts += exp_attempts
        retries += max(0, exp_attempts - 1)
        backoff_total += exp_backoff
        faults += len(exp_faults)
        # Chunk accounting: an outcome is either a merged experiment
        # (chunks/completed_chunks set by the merge), one chunk of an
        # experiment (descriptor in .chunk, counted as 1-of-1 here since
        # its siblings are separate outcomes), or plain unchunked.
        total_chunks += getattr(outcome, "chunks", 1) or 1
        completed_chunks += getattr(
            outcome, "completed_chunks", 1 if outcome.status == "DONE" else 0
        )
        resumed_chunks += getattr(outcome, "resumed_chunks", 0) or 0
        if getattr(outcome, "resumed", False):
            resumed_chunks += 1
        if not outcome.success:
            failed.append(outcome.circuit_name)
        entry = per_experiment.get(outcome.circuit_name)
        if entry is None:
            per_experiment[outcome.circuit_name] = {
                "status": outcome.status,
                "attempts": exp_attempts,
                "backoff_s": round(exp_backoff, 6),
                "faults": exp_faults,
            }
        else:
            # Several chunk outcomes of one experiment (pre-collect live
            # view): accumulate, and let any non-DONE status win.
            entry["attempts"] += exp_attempts
            entry["backoff_s"] = round(
                entry["backoff_s"] + exp_backoff, 6
            )
            entry["faults"].extend(exp_faults)
            if outcome.status != "DONE":
                entry["status"] = outcome.status
    return {
        "experiments": len(per_experiment),
        "attempts": attempts,
        "retries": retries,
        "backoff_total_s": round(backoff_total, 6),
        "faults_injected": faults,
        "fallbacks": list(fallbacks),
        "failed_experiments": sorted(set(failed), key=failed.index),
        "per_experiment": per_experiment,
        "total_chunks": total_chunks,
        "completed_chunks": completed_chunks,
        "resumed_chunks": resumed_chunks,
    }
