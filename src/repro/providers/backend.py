"""Backend abstraction: configuration, base class, and synchronous jobs."""

from __future__ import annotations

import itertools

from repro.exceptions import BackendError


class BackendConfiguration:
    """Static description of a backend's capabilities."""

    def __init__(self, name, num_qubits, basis_gates, simulator=True,
                 coupling_map=None, conditional=True, memory=True,
                 max_shots=1 << 20, description=""):
        self.backend_name = name
        self.num_qubits = num_qubits
        self.basis_gates = list(basis_gates)
        self.simulator = simulator
        self.coupling_map = coupling_map
        self.conditional = conditional
        self.memory = memory
        self.max_shots = max_shots
        self.description = description

    def __repr__(self):
        kind = "simulator" if self.simulator else "device"
        return (
            f"BackendConfiguration({self.backend_name!r}, "
            f"{self.num_qubits} qubits, {kind})"
        )


class Job:
    """A completed (synchronous) execution."""

    _id_counter = itertools.count()

    def __init__(self, backend, result):
        self._backend = backend
        self._result = result
        self.job_id = f"job-{next(Job._id_counter)}"

    def result(self):
        """The :class:`~repro.providers.result.Result`."""
        return self._result

    def status(self) -> str:
        """Always ``"DONE"`` — execution is synchronous."""
        return "DONE"

    def backend(self):
        """The backend that ran this job."""
        return self._backend

    def __repr__(self):
        return f"Job({self.job_id}, backend={self._backend.name()!r})"


class BaseBackend:
    """Common backend behaviour."""

    def __init__(self, configuration: BackendConfiguration):
        self._configuration = configuration

    def configuration(self) -> BackendConfiguration:
        """Static backend description."""
        return self._configuration

    def name(self) -> str:
        """Backend name."""
        return self._configuration.backend_name

    def run(self, circuits, **options) -> Job:
        """Execute one circuit or a list of circuits; returns a Job.

        The ``use_kernels`` option (default True) toggles the specialized
        gate kernels of :mod:`repro.simulators.kernels`; pass False to force
        the generic ``apply_matrix`` path (A/B benchmarking, debugging).
        """
        if not isinstance(circuits, (list, tuple)):
            circuits = [circuits]
        if not circuits:
            raise BackendError("no circuits to run")
        shots = options.get("shots", 1024)
        if shots > self._configuration.max_shots:
            raise BackendError(
                f"shots {shots} exceeds backend maximum "
                f"{self._configuration.max_shots}"
            )
        if options.get("use_kernels", True):
            experiments = [self._run_experiment(c, options) for c in circuits]
        else:
            from repro.simulators import kernels

            with kernels.disabled():
                experiments = [
                    self._run_experiment(c, options) for c in circuits
                ]
        from repro.providers.result import Result

        result = Result(self.name(), f"job-{id(self) & 0xffff:x}", experiments)
        return Job(self, result)

    def _run_experiment(self, circuit, options):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}('{self.name()}')>"
