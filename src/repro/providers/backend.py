"""Backend abstraction: configuration, base class, and the Job lifecycle.

``BaseBackend.run`` implements the paper's Section IV pipeline in four
stages shared by every backend:

1. **assemble** — circuits are serialized into a Qobj dictionary by
   :func:`repro.qobj.assembler.assemble`, which also derives one seed per
   experiment from the batch seed;
2. **schedule** — :mod:`repro.providers.executor` picks a serial, thread,
   or process executor (``executor`` option, default auto);
3. **run** — each experiment is disassembled and simulated independently,
   with per-experiment timing and error capture;
4. **collect** — :meth:`Job.result` gathers the experiment results into a
   :class:`~repro.providers.result.Result`.

The pipeline itself lives in :mod:`repro.providers.engine`:
``BaseBackend.run``/``run_pubs`` are thin submission APIs over the
process-wide :class:`~repro.providers.engine.ExecutionEngine`, which the
multi-tenant :mod:`repro.runtime` service drives directly — so direct
backend submissions and service-scheduled ones share one code path.
"""

from __future__ import annotations

import itertools

from repro.providers.executor import JobStatus


class BackendConfiguration:
    """Static description of a backend's capabilities."""

    def __init__(self, name, num_qubits, basis_gates, simulator=True,
                 coupling_map=None, conditional=True, memory=True,
                 max_shots=1 << 20, description=""):
        self.backend_name = name
        self.num_qubits = num_qubits
        self.basis_gates = list(basis_gates)
        self.simulator = simulator
        self.coupling_map = coupling_map
        self.conditional = conditional
        self.memory = memory
        self.max_shots = max_shots
        self.description = description

    def __repr__(self):
        kind = "simulator" if self.simulator else "device"
        return (
            f"BackendConfiguration({self.backend_name!r}, "
            f"{self.num_qubits} qubits, {kind})"
        )


class Job:
    """A scheduled batch execution with an observable lifecycle.

    States: ``INITIALIZING`` (accepted, not yet running) -> ``RUNNING`` ->
    ``DONE`` or ``ERROR`` (at least one experiment failed); ``cancel()``
    before execution starts moves the job to ``CANCELLED``.  With the
    serial executor, execution is deferred until :meth:`result` is first
    called; pool executors start running at submission.
    """

    _id_counter = itertools.count()

    def __init__(self, backend, dispatch, trace=None, plan=None,
                 preloaded=None):
        self._backend = backend
        self._dispatch = dispatch
        self._result = None
        #: Dispatch plan: one entry per payload unit, in payload order —
        #: ``{"experiment_index", "name", "chunk": int|None, "chunks"}``.
        #: None for legacy construction (each payload is one experiment).
        self._plan = plan
        #: Checkpoint-restored outcomes keyed by plan position (resume).
        self._preloaded = dict(preloaded or {})
        if plan is not None:
            self._dispatch_positions = [
                position for position in range(len(plan))
                if position not in self._preloaded
            ]
        else:
            self._dispatch_positions = None
        if trace is None:
            from repro.telemetry.jobtrace import JobTrace

            trace = JobTrace(Job.reserve_id(), backend.name())
        self._trace = trace
        self.job_id = trace.job_id

    @classmethod
    def reserve_id(cls) -> str:
        """Allocate the next job id ahead of construction.

        ``execute`` reserves the id before transpiling so the compile
        spans join the job's trace; the id is then threaded through
        ``backend.run(job_trace=...)`` into the :class:`Job`.
        """
        return f"job-{next(cls._id_counter)}"

    @classmethod
    def resume(cls, checkpoint_path, executor=None, max_workers=None):
        """Restart a checkpointed job, re-running only the missing chunks.

        Loads the JSON-lines ledger a previous submission wrote (the job
        must have been run with ``checkpoint=<path>``), rebuilds the
        backend from its provider spec, and dispatches exactly the
        ``(experiment, chunk)`` units that have no DONE record — each
        with its original config (derived seed, retry policy, fault
        schedule), so the merged result is bit-identical to an
        uninterrupted run.  Restored chunks count as
        ``resumed_chunks`` in ``fault_stats`` and stream first from
        :meth:`stream`.  The resumed job appends new completions to the
        same ledger, so resume is itself resumable.

        A ledger with no missing units short-circuits: the returned job
        is DONE immediately (no executor is consulted, no empty payload
        set dispatched) and ``result()`` just merges the restored
        chunks.
        """
        from repro.providers.checkpoint import load_ledger
        from repro.providers.executor import (
            CompletedDispatch,
            choose_executor,
            create_dispatch,
            resolve_backend,
        )
        from repro.telemetry.jobtrace import JobTrace

        header, chunks = load_ledger(checkpoint_path)
        payloads = header["payloads"]
        plan = header["plan"]
        backend = resolve_backend(tuple(header["backend"]))
        preloaded: dict = {}
        missing: list = []
        for position, entry in enumerate(plan):
            key = (entry["experiment_index"], entry["chunk"] or 0)
            outcome = chunks.get(key)
            if outcome is not None:
                outcome.resumed = True
                preloaded[position] = outcome
            else:
                missing.append(position)
        job_trace = JobTrace(cls.reserve_id(), backend.name())
        resumed = []
        for position in missing:
            experiment, config = payloads[position]
            config = dict(config)
            # The original trace died with the original process, and the
            # ledger may have been moved: re-point the checkpoint and drop
            # the stale span context.
            config.pop("span_context", None)
            if "checkpoint" in config:
                config["checkpoint"] = dict(
                    config["checkpoint"], path=checkpoint_path
                )
            resumed.append((experiment, config))
        if not resumed:
            # Fully checkpointed: nothing to dispatch — the job is DONE
            # from construction and result() just merges the restored
            # chunks.
            job_trace.dispatch_started("none", 0)
            return cls(backend, CompletedDispatch(), trace=job_trace,
                       plan=plan, preloaded=preloaded)
        chunked = [
            config for _experiment, config in resumed
            if config.get("shot_chunk")
        ]
        kind = choose_executor(
            len(resumed),
            max(
                experiment.get("header", {}).get("n_qubits", 1)
                for experiment, _config in resumed
            ),
            executor,
            chunk_payloads=len(chunked),
            chunk_shots=min(
                (config.get("shots", 0) for config in chunked),
                default=0,
            ),
        )
        job_trace.dispatch_started(kind, len(resumed))
        dispatch = create_dispatch(backend, resumed, kind, max_workers,
                                   job_trace)
        return cls(backend, dispatch, trace=job_trace, plan=plan,
                   preloaded=preloaded)

    def _weave(self, raw) -> list:
        """Interleave dispatch outcomes with checkpoint-restored ones,
        back into full plan order."""
        if not self._preloaded:
            return list(raw)
        full = [None] * len(self._plan)
        for position, outcome in self._preloaded.items():
            full[position] = outcome
        for position, outcome in zip(self._dispatch_positions, raw):
            full[position] = outcome
        return full

    def _merge_plan(self, full) -> list:
        """Merge per-chunk outcomes into per-experiment results.

        Returns one outcome per experiment, in first-appearance order —
        identical to the submitted circuit order.  Experiments that were
        never chunked pass through untouched.
        """
        if self._plan is None:
            return list(full)
        from repro.providers.result import merge_chunk_outcomes

        groups: dict = {}
        order: list = []
        for entry, outcome in zip(self._plan, full):
            key = entry["experiment_index"]
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((entry, outcome))
        merged = []
        for key in order:
            entries = groups[key]
            if len(entries) == 1 and entries[0][0]["chunk"] is None:
                merged.append(entries[0][1])
                continue
            merged.append(merge_chunk_outcomes(
                entries[0][0]["name"],
                [outcome for _entry, outcome in entries],
                entries[0][0]["chunks"],
            ))
        return merged

    def _finalize(self, full):
        """Merge, build, and (when final) cache the job's Result."""
        from repro.providers.result import Result

        outcomes = self._merge_plan(full)
        result = Result(self._backend.name(), self.job_id, outcomes)
        if any(
            outcome.status in (JobStatus.INCOMPLETE, JobStatus.CANCELLED)
            for outcome in outcomes
        ):
            # Not final (or gathered after a cancel): hand it back
            # without caching so the job stays collectable.
            return result
        self._result = result
        self._trace.finalize(
            outcomes, getattr(self._dispatch, "fallbacks", [])
        )
        return result

    def result(self, timeout=None, partial=False):
        """Collect the :class:`~repro.providers.result.Result` (blocking).

        Raises :class:`BackendError` if the job was cancelled and
        :class:`~repro.exceptions.JobTimeoutError` past the deadline —
        unless ``partial=True``, which instead returns whatever has
        finished: completed experiments are collectable through the
        normal accessors, the rest appear as CANCELLED/INCOMPLETE
        placeholder entries, and ``result.partial`` is True.  A partial
        result with INCOMPLETE entries is never cached, so a later
        ``result()`` call picks up the still-running experiments.

        Shot-chunked experiments are merged here: per-chunk counts are
        added exactly (:meth:`~repro.providers.result.Counts.merge`), so
        the merged histogram is bit-identical no matter how the chunks
        were scheduled.  A cancelled or partially-collected chunked
        experiment keeps the counts of every chunk that finished.

        Individual experiment failures do not raise here — they surface
        as ERROR entries in the result (and through the accessors for
        that experiment only).
        """
        if self._result is None:
            with self._trace.stage("collect"):
                raw = self._dispatch.collect(timeout=timeout,
                                             partial=partial)
                full = self._weave(raw)
                self._trace.merge_outcomes(full)
            return self._finalize(full)
        return self._result

    def stream(self):
        """Yield incremental results as the job executes (generator).

        Events are dictionaries.  Each completed dispatch unit yields a
        ``chunk`` event::

            {"type": "chunk", "experiment": name, "experiment_index": i,
             "chunk": j, "total_chunks": k, "status": "DONE",
             "shots": n, "counts": {...} | None, "resumed": False}

        and once all of an experiment's chunks are in, an ``experiment``
        event follows with the merged
        :class:`~repro.providers.result.ExperimentResult` under
        ``"result"``.  Unchunked experiments emit one of each.  On a
        resumed job, checkpoint-restored chunks stream first (with
        ``"resumed": True``).  ``result()`` after exhausting the stream
        returns the cached result without re-running anything; abandoning
        the stream mid-way keeps every delivered chunk, and a
        ``cancel()`` between chunks ends the stream with delivered
        results intact.
        """
        if self._result is not None:
            for index, outcome in enumerate(self._result.results):
                yield self._experiment_event(index, outcome)
            return
        plan = self._plan
        if plan is None:
            # Legacy construction: one experiment per payload.
            for index, outcome in self._dispatch.iter_outcomes():
                yield self._chunk_event(
                    outcome.circuit_name, index, None, 1, outcome
                )
                yield self._experiment_event(index, outcome)
            return
        from repro.providers.result import merge_chunk_outcomes

        full = [None] * len(plan)
        remaining = {}
        for entry in plan:
            key = entry["experiment_index"]
            remaining[key] = remaining.get(key, 0) + 1

        def deliver(position, outcome):
            entry = plan[position]
            full[position] = outcome
            events = [self._chunk_event(
                entry["name"], entry["experiment_index"], entry["chunk"],
                entry["chunks"], outcome,
            )]
            key = entry["experiment_index"]
            remaining[key] -= 1
            if remaining[key] == 0:
                group = [
                    (plan[i], full[i]) for i in range(len(plan))
                    if plan[i]["experiment_index"] == key
                ]
                if len(group) == 1 and group[0][0]["chunk"] is None:
                    merged = group[0][1]
                else:
                    merged = merge_chunk_outcomes(
                        entry["name"],
                        [outcome for _e, outcome in group],
                        entry["chunks"],
                    )
                events.append(self._experiment_event(key, merged))
            return events

        for position in sorted(self._preloaded):
            for event in deliver(position, self._preloaded[position]):
                yield event
        for index, outcome in self._dispatch.iter_outcomes():
            position = (
                self._dispatch_positions[index]
                if self._dispatch_positions is not None else index
            )
            for event in deliver(position, outcome):
                yield event
        if all(outcome is not None for outcome in full):
            self._trace.merge_outcomes(full)
            self._finalize(full)

    @staticmethod
    def _chunk_event(name, experiment_index, chunk, chunks, outcome):
        data = outcome.data if isinstance(outcome.data, dict) else {}
        return {
            "type": "chunk",
            "experiment": name,
            "experiment_index": experiment_index,
            "chunk": 0 if chunk is None else chunk,
            "total_chunks": chunks,
            "status": outcome.status,
            "shots": outcome.shots,
            "counts": data.get("counts"),
            "resumed": bool(getattr(outcome, "resumed", False)),
        }

    @staticmethod
    def _experiment_event(experiment_index, outcome):
        return {
            "type": "experiment",
            "experiment": outcome.circuit_name,
            "experiment_index": experiment_index,
            "status": outcome.status,
            "total_chunks": getattr(outcome, "chunks", 1),
            "completed_chunks": getattr(outcome, "completed_chunks", 1),
            "result": outcome,
        }

    @property
    def fault_stats(self) -> dict:
        """The job's fault/retry ledger.

        Accounts for every attempt (retries included), total backoff
        seconds, injected faults, executor fallbacks taken by the
        degradation chain, failed experiments, and the shot-chunk tallies
        (``total_chunks`` / ``completed_chunks`` / ``resumed_chunks`` —
        a cancelled streaming job reports how many chunks it delivered).
        Once the job is collected this is a thin view over the
        job-labelled counters in the unified metrics registry (see
        :mod:`repro.telemetry.metrics`); before that it reflects only
        the experiments finished so far, aggregated live.
        """
        from repro.providers.retry import aggregate_fault_stats

        if self._trace.finalized:
            return self._trace.fault_stats_view()
        if self._result is not None:
            outcomes = self._result.results
        else:
            outcomes = (
                list(self._preloaded.values())
                + self._dispatch.finished_outcomes()
            )
        stats = aggregate_fault_stats(
            outcomes, getattr(self._dispatch, "fallbacks", [])
        )
        if self._result is None and self._plan is not None:
            # Pre-collect (including after a cancel): the finished chunk
            # outcomes only know themselves, but the dispatch plan knows
            # the full layout — report planned totals, delivered progress.
            layout = {
                entry["experiment_index"]: entry["chunks"]
                for entry in self._plan
            }
            stats["total_chunks"] = sum(layout.values())
        return stats

    def trace(self):
        """The job's :class:`~repro.telemetry.trace.Trace`.

        Requires tracing to have been enabled
        (:func:`repro.telemetry.enable_tracing`) before the job was
        submitted; raises :class:`BackendError` otherwise.  Before the
        result is collected the trace holds the spans recorded so far;
        after collection it is the complete connected tree — worker
        spans included, whichever executor ran them.
        """
        return self._trace.trace()

    @property
    def job_trace(self):
        """The job's :class:`~repro.telemetry.jobtrace.JobTrace` hub."""
        return self._trace

    def status(self) -> str:
        """Current :class:`JobStatus` constant."""
        state = self._dispatch.status()
        if state == JobStatus.DONE:
            # All experiments have finished, so collecting is instant; the
            # terminal state depends on whether any of them failed.
            if not self.result().success:
                return JobStatus.ERROR
        return state

    def cancel(self) -> bool:
        """Stop experiments that have not started; True if any were."""
        return self._dispatch.cancel()

    def backend(self):
        """The backend that runs this job."""
        return self._backend

    def __repr__(self):
        return (
            f"Job({self.job_id}, backend={self._backend.name()!r}, "
            f"status={self.status()})"
        )


class BaseBackend:
    """Common backend behaviour: the assemble -> schedule -> run -> collect
    pipeline."""

    def __init__(self, configuration: BackendConfiguration):
        self._configuration = configuration

    def configuration(self) -> BackendConfiguration:
        """Static backend description."""
        return self._configuration

    def name(self) -> str:
        """Backend name."""
        return self._configuration.backend_name

    def run(self, circuits, **options) -> Job:
        """Assemble and schedule one circuit or a list of circuits.

        Returns a :class:`Job` whose ``result()`` blocks until the batch
        completes.  Options:

        * ``shots`` / ``seed`` / ``memory`` / ``noise_model`` — forwarded
          to the simulator engines.  The batch ``seed`` is expanded into
          one derived seed per experiment by the assembler, so results are
          bit-identical no matter which executor runs the batch.
        * ``executor`` — ``"serial"``, ``"threads"``, ``"processes"``, or
          ``"auto"`` (default): processes for wide multi-circuit batches
          on multi-core hosts, serial otherwise.
        * ``max_workers`` — pool width for the parallel executors.
        * ``use_kernels`` (default True) — toggles the specialized gate
          kernels of :mod:`repro.simulators.kernels`; pass False to force
          the generic ``apply_matrix`` path (A/B benchmarking, debugging).
          Since the kernel switch is process-global, ``use_kernels=False``
          batches never run on the thread executor.
        * ``retry_policy`` — a :class:`~repro.providers.retry.RetryPolicy`
          (or kwargs dict, or False to disable) applied per experiment in
          every executor; transient failures re-run the experiment with
          its original derived seed.  Default: up to 3 attempts with
          exponential backoff.
        * ``fault_injector`` — a
          :class:`~repro.providers.faults.FaultInjector` (or FaultSpec
          list) armed on this batch for reproducible chaos testing.
        * ``shot_chunk_size`` — shots per dispatch/sampling chunk
          (default :data:`~repro.qobj.assembler.DEFAULT_SHOT_CHUNK_SIZE`;
          0/False disables chunking).  Experiments whose shots exceed the
          chunk size split into shot-chunks with per-chunk seeds derived
          from the experiment's SeedSequence; single-chunk experiments
          keep the experiment seed unchanged, so results below the chunk
          size are bit-identical to the unchunked pipeline.
        * ``shot_chunk_dispatch`` — force chunked experiments to dispatch
          each chunk as its own executor payload (parallel across
          workers) even where the engine prefers to loop chunks inline;
          the merged counts are bit-identical either way.
        * ``checkpoint`` — path of a JSON-lines ledger; every completed
          ``(experiment, chunk)`` unit is appended as it finishes, and
          :meth:`Job.resume` restarts the job re-running only the
          missing units.
        * ``job_trace`` — a pre-created
          :class:`~repro.telemetry.jobtrace.JobTrace` to attach this run
          to (``execute`` passes one so transpile spans join the job's
          trace); by default a fresh one is created here.
        """
        from repro.providers.engine import get_execution_engine

        return get_execution_engine().run(self, circuits, options)

    def run_pubs(self, pubs, **options) -> Job:
        """Schedule broadcast primitive unified blocs (PUBs).

        Each pub is ``(circuit, parameter_values, parameters)`` or
        ``(circuit, parameter_values, parameters, observable)``: one
        *symbolic* template circuit plus a ``(batch, num_parameters)``
        value array (columns ordered like ``parameters``).  With an
        observable (a :class:`~repro.quantum_info.pauli.PauliSumOp`) the
        backend estimates one expectation value per binding; without one,
        a qasm backend samples per-binding counts and a statevector
        backend returns per-binding states.

        The whole batch axis of a pub runs as **one** experiment through
        the vectorized broadcast engine
        (:mod:`repro.simulators.batched`), split into several experiments
        only when ``batch * 2**n`` amplitudes exceed the engine's memory
        cap — so the executor fleet parallelizes across pubs/chunks while
        each chunk is one big vectorized pass.

        Determinism matches :meth:`run` exactly: the batch ``seed`` is
        expanded into one derived seed per *binding* (concatenated across
        pubs), identical to running the equivalent list of bound circuits
        through ``run(bound_circuits, seed=seed)``.  Retries re-run a
        chunk with its original per-binding seeds, so fault recovery is
        bit-identical.  ``retry_policy`` / ``fault_injector`` /
        ``executor`` / ``max_workers`` behave as in :meth:`run`;
        ``noise_model`` and ``use_kernels=False`` are rejected (the
        broadcast engine is kernel-only and noise-free).
        """
        from repro.providers.engine import get_execution_engine

        return get_execution_engine().run_pubs(self, pubs, options)

    def _validate_batch(self, circuits) -> None:
        """Submission-time validation hook; raise to reject the batch."""

    def _chunk_support(self, circuit, options) -> str:
        """How this backend runs one circuit's shot-chunks.

        ``"none"`` — the experiment never splits (statevector/unitary
        backends, circuits without measurements); ``"dispatch"`` — each
        chunk becomes its own executor payload (trajectory-style engines,
        where chunks are genuinely independent runs); ``"inline"`` — one
        payload whose engine loops the chunk layout itself (sampling
        engines that derive an expensive deterministic state once and
        draw each chunk from it).  Both chunked modes merge to
        bit-identical counts; the split only moves where the loop lives.
        """
        return "none"

    def _backend_spec(self):
        """``(provider, name)`` registry key for process-pool workers, or
        None when the backend cannot be rebuilt in a fresh process (the
        process executor then degrades to threads)."""
        return None

    def _run_experiment(self, circuit, options):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}('{self.name()}')>"
