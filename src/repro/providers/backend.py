"""Backend abstraction: configuration, base class, and the Job lifecycle.

``BaseBackend.run`` implements the paper's Section IV pipeline in four
stages shared by every backend:

1. **assemble** — circuits are serialized into a Qobj dictionary by
   :func:`repro.qobj.assembler.assemble`, which also derives one seed per
   experiment from the batch seed;
2. **schedule** — :mod:`repro.providers.executor` picks a serial, thread,
   or process executor (``executor`` option, default auto);
3. **run** — each experiment is disassembled and simulated independently,
   with per-experiment timing and error capture;
4. **collect** — :meth:`Job.result` gathers the experiment results into a
   :class:`~repro.providers.result.Result`.
"""

from __future__ import annotations

import itertools

from repro.exceptions import BackendError
from repro.providers.executor import (
    SCHEDULING_OPTIONS,
    JobStatus,
    choose_executor,
    create_dispatch,
)


class BackendConfiguration:
    """Static description of a backend's capabilities."""

    def __init__(self, name, num_qubits, basis_gates, simulator=True,
                 coupling_map=None, conditional=True, memory=True,
                 max_shots=1 << 20, description=""):
        self.backend_name = name
        self.num_qubits = num_qubits
        self.basis_gates = list(basis_gates)
        self.simulator = simulator
        self.coupling_map = coupling_map
        self.conditional = conditional
        self.memory = memory
        self.max_shots = max_shots
        self.description = description

    def __repr__(self):
        kind = "simulator" if self.simulator else "device"
        return (
            f"BackendConfiguration({self.backend_name!r}, "
            f"{self.num_qubits} qubits, {kind})"
        )


class Job:
    """A scheduled batch execution with an observable lifecycle.

    States: ``INITIALIZING`` (accepted, not yet running) -> ``RUNNING`` ->
    ``DONE`` or ``ERROR`` (at least one experiment failed); ``cancel()``
    before execution starts moves the job to ``CANCELLED``.  With the
    serial executor, execution is deferred until :meth:`result` is first
    called; pool executors start running at submission.
    """

    _id_counter = itertools.count()

    def __init__(self, backend, dispatch, trace=None):
        self._backend = backend
        self._dispatch = dispatch
        self._result = None
        if trace is None:
            from repro.telemetry.jobtrace import JobTrace

            trace = JobTrace(Job.reserve_id(), backend.name())
        self._trace = trace
        self.job_id = trace.job_id

    @classmethod
    def reserve_id(cls) -> str:
        """Allocate the next job id ahead of construction.

        ``execute`` reserves the id before transpiling so the compile
        spans join the job's trace; the id is then threaded through
        ``backend.run(job_trace=...)`` into the :class:`Job`.
        """
        return f"job-{next(cls._id_counter)}"

    def result(self, timeout=None, partial=False):
        """Collect the :class:`~repro.providers.result.Result` (blocking).

        Raises :class:`BackendError` if the job was cancelled and
        :class:`~repro.exceptions.JobTimeoutError` past the deadline —
        unless ``partial=True``, which instead returns whatever has
        finished: completed experiments are collectable through the
        normal accessors, the rest appear as CANCELLED/INCOMPLETE
        placeholder entries, and ``result.partial`` is True.  A partial
        result with INCOMPLETE entries is never cached, so a later
        ``result()`` call picks up the still-running experiments.

        Individual experiment failures do not raise here — they surface
        as ERROR entries in the result (and through the accessors for
        that experiment only).
        """
        if self._result is None:
            from repro.providers.result import Result

            with self._trace.stage("collect"):
                outcomes = self._dispatch.collect(timeout=timeout,
                                                  partial=partial)
                self._trace.merge_outcomes(outcomes)
            result = Result(self._backend.name(), self.job_id, outcomes)
            if any(
                outcome.status
                in (JobStatus.INCOMPLETE, JobStatus.CANCELLED)
                for outcome in outcomes
            ):
                # Not final (or gathered after a cancel): hand it back
                # without caching so the job stays collectable.
                return result
            self._result = result
            self._trace.finalize(
                outcomes, getattr(self._dispatch, "fallbacks", [])
            )
        return self._result

    @property
    def fault_stats(self) -> dict:
        """The job's fault/retry ledger.

        Accounts for every attempt (retries included), total backoff
        seconds, injected faults, executor fallbacks taken by the
        degradation chain, and failed experiments.  Once the job is
        collected this is a thin view over the job-labelled counters in
        the unified metrics registry (see
        :mod:`repro.telemetry.metrics`); before that it reflects only
        the experiments finished so far, aggregated live.
        """
        from repro.providers.retry import aggregate_fault_stats

        if self._trace.finalized:
            return self._trace.fault_stats_view()
        if self._result is not None:
            outcomes = self._result.results
        else:
            outcomes = self._dispatch.finished_outcomes()
        return aggregate_fault_stats(
            outcomes, getattr(self._dispatch, "fallbacks", [])
        )

    def trace(self):
        """The job's :class:`~repro.telemetry.trace.Trace`.

        Requires tracing to have been enabled
        (:func:`repro.telemetry.enable_tracing`) before the job was
        submitted; raises :class:`BackendError` otherwise.  Before the
        result is collected the trace holds the spans recorded so far;
        after collection it is the complete connected tree — worker
        spans included, whichever executor ran them.
        """
        return self._trace.trace()

    @property
    def job_trace(self):
        """The job's :class:`~repro.telemetry.jobtrace.JobTrace` hub."""
        return self._trace

    def status(self) -> str:
        """Current :class:`JobStatus` constant."""
        state = self._dispatch.status()
        if state == JobStatus.DONE:
            # All experiments have finished, so collecting is instant; the
            # terminal state depends on whether any of them failed.
            if not self.result().success:
                return JobStatus.ERROR
        return state

    def cancel(self) -> bool:
        """Stop experiments that have not started; True if any were."""
        return self._dispatch.cancel()

    def backend(self):
        """The backend that runs this job."""
        return self._backend

    def __repr__(self):
        return (
            f"Job({self.job_id}, backend={self._backend.name()!r}, "
            f"status={self.status()})"
        )


class BaseBackend:
    """Common backend behaviour: the assemble -> schedule -> run -> collect
    pipeline."""

    def __init__(self, configuration: BackendConfiguration):
        self._configuration = configuration

    def configuration(self) -> BackendConfiguration:
        """Static backend description."""
        return self._configuration

    def name(self) -> str:
        """Backend name."""
        return self._configuration.backend_name

    def run(self, circuits, **options) -> Job:
        """Assemble and schedule one circuit or a list of circuits.

        Returns a :class:`Job` whose ``result()`` blocks until the batch
        completes.  Options:

        * ``shots`` / ``seed`` / ``memory`` / ``noise_model`` — forwarded
          to the simulator engines.  The batch ``seed`` is expanded into
          one derived seed per experiment by the assembler, so results are
          bit-identical no matter which executor runs the batch.
        * ``executor`` — ``"serial"``, ``"threads"``, ``"processes"``, or
          ``"auto"`` (default): processes for wide multi-circuit batches
          on multi-core hosts, serial otherwise.
        * ``max_workers`` — pool width for the parallel executors.
        * ``use_kernels`` (default True) — toggles the specialized gate
          kernels of :mod:`repro.simulators.kernels`; pass False to force
          the generic ``apply_matrix`` path (A/B benchmarking, debugging).
          Since the kernel switch is process-global, ``use_kernels=False``
          batches never run on the thread executor.
        * ``retry_policy`` — a :class:`~repro.providers.retry.RetryPolicy`
          (or kwargs dict, or False to disable) applied per experiment in
          every executor; transient failures re-run the experiment with
          its original derived seed.  Default: up to 3 attempts with
          exponential backoff.
        * ``fault_injector`` — a
          :class:`~repro.providers.faults.FaultInjector` (or FaultSpec
          list) armed on this batch for reproducible chaos testing.
        * ``job_trace`` — a pre-created
          :class:`~repro.telemetry.jobtrace.JobTrace` to attach this run
          to (``execute`` passes one so transpile spans join the job's
          trace); by default a fresh one is created here.
        """
        from repro.providers.faults import resolve_injector
        from repro.providers.retry import resolve_retry_policy
        from repro.qobj.assembler import assemble

        if not isinstance(circuits, (list, tuple)):
            circuits = [circuits]
        if not circuits:
            raise BackendError("no circuits to run")
        shots = options.get("shots", 1024)
        if shots > self._configuration.max_shots:
            raise BackendError(
                f"shots {shots} exceeds backend maximum "
                f"{self._configuration.max_shots}"
            )
        self._validate_batch(circuits)
        requested = options.get("executor")
        if not options.get("use_kernels", True) and requested == "threads":
            requested = "serial"
        max_workers = options.get("max_workers")
        engine_options = {
            key: value
            for key, value in options.items()
            if key not in SCHEDULING_OPTIONS
        }
        # Normalize the fault-tolerance knobs once here, so every worker
        # (including process-pool ones, via pickled configs) agrees on the
        # retry budget and the seeded fault schedule.
        engine_options["retry_policy"] = resolve_retry_policy(
            options.get("retry_policy")
        )
        engine_options["fault_injector"] = resolve_injector(
            options.get("fault_injector")
        )
        job_trace = options.get("job_trace")
        if job_trace is None:
            from repro.telemetry.jobtrace import JobTrace

            job_trace = JobTrace(Job.reserve_id(), self.name())
        max_qubits = max(circuit.num_qubits for circuit in circuits)
        with job_trace.stage("assemble", attributes={
            "experiments": len(circuits), "shots": shots,
            "max_qubits": max_qubits,
        }):
            qobj = assemble(
                circuits,
                shots=shots,
                seed=options.get("seed"),
                memory=options.get("memory", False),
            )
        kind = choose_executor(len(circuits), max_qubits, requested)
        job_trace.dispatch_started(kind, len(qobj["experiments"]))
        payloads = []
        for index, experiment in enumerate(qobj["experiments"]):
            config = dict(engine_options)
            config["seed"] = experiment["config"]["seed"]
            config["experiment_index"] = experiment["config"]["index"]
            context = job_trace.experiment_context(
                index, experiment.get("header", {}).get("name", "unnamed")
            )
            if context is not None:
                config["span_context"] = context
            payloads.append((experiment, config))
        dispatch = create_dispatch(self, payloads, kind, max_workers,
                                   job_trace)
        return Job(self, dispatch, trace=job_trace)

    def run_pubs(self, pubs, **options) -> Job:
        """Schedule broadcast primitive unified blocs (PUBs).

        Each pub is ``(circuit, parameter_values, parameters)`` or
        ``(circuit, parameter_values, parameters, observable)``: one
        *symbolic* template circuit plus a ``(batch, num_parameters)``
        value array (columns ordered like ``parameters``).  With an
        observable (a :class:`~repro.quantum_info.pauli.PauliSumOp`) the
        backend estimates one expectation value per binding; without one,
        a qasm backend samples per-binding counts and a statevector
        backend returns per-binding states.

        The whole batch axis of a pub runs as **one** experiment through
        the vectorized broadcast engine
        (:mod:`repro.simulators.batched`), split into several experiments
        only when ``batch * 2**n`` amplitudes exceed the engine's memory
        cap — so the executor fleet parallelizes across pubs/chunks while
        each chunk is one big vectorized pass.

        Determinism matches :meth:`run` exactly: the batch ``seed`` is
        expanded into one derived seed per *binding* (concatenated across
        pubs), identical to running the equivalent list of bound circuits
        through ``run(bound_circuits, seed=seed)``.  Retries re-run a
        chunk with its original per-binding seeds, so fault recovery is
        bit-identical.  ``retry_policy`` / ``fault_injector`` /
        ``executor`` / ``max_workers`` behave as in :meth:`run`;
        ``noise_model`` and ``use_kernels=False`` are rejected (the
        broadcast engine is kernel-only and noise-free).
        """
        import numpy as np

        from repro.providers.faults import resolve_injector
        from repro.providers.retry import resolve_retry_policy
        from repro.qobj.assembler import (
            circuit_to_experiment,
            derive_experiment_seeds,
        )
        from repro.simulators.batched import broadcast_chunk_bounds

        if not isinstance(pubs, (list, tuple)):
            pubs = [pubs]
        if not pubs:
            raise BackendError("no pubs to run")
        shots = options.get("shots", 1024)
        if shots > self._configuration.max_shots:
            raise BackendError(
                f"shots {shots} exceeds backend maximum "
                f"{self._configuration.max_shots}"
            )
        if options.get("noise_model") is not None:
            raise BackendError(
                "broadcast execution does not support noise models; bind "
                "the circuits and use run() instead"
            )
        if not options.get("use_kernels", True):
            raise BackendError(
                "broadcast execution requires the specialized kernels; "
                "use run() for use_kernels=False A/B comparisons"
            )
        normalized = []
        for pub in pubs:
            if not isinstance(pub, (list, tuple)) or len(pub) not in (3, 4):
                raise BackendError(
                    "each pub must be (circuit, parameter_values, "
                    "parameters[, observable])"
                )
            circuit, values, parameters = pub[0], pub[1], pub[2]
            observable = pub[3] if len(pub) == 4 else None
            values = np.asarray(values, dtype=float)
            if values.ndim == 1:
                values = values.reshape(1, -1)
            if values.ndim != 2 or values.shape[0] < 1:
                raise BackendError(
                    "pub parameter_values must be a non-empty "
                    "(batch, num_parameters) array"
                )
            normalized.append(
                (circuit, values, list(parameters or ()), observable)
            )
        self._validate_batch([pub[0] for pub in normalized])
        total_bindings = sum(pub[1].shape[0] for pub in normalized)
        all_seeds = derive_experiment_seeds(
            options.get("seed"), total_bindings
        )
        requested = options.get("executor")
        max_workers = options.get("max_workers")
        engine_options = {
            key: value
            for key, value in options.items()
            if key not in SCHEDULING_OPTIONS
        }
        engine_options["retry_policy"] = resolve_retry_policy(
            options.get("retry_policy")
        )
        engine_options["fault_injector"] = resolve_injector(
            options.get("fault_injector")
        )
        engine_options["shots"] = shots
        job_trace = options.get("job_trace")
        if job_trace is None:
            from repro.telemetry.jobtrace import JobTrace

            job_trace = JobTrace(Job.reserve_id(), self.name())
        payloads = []
        offset = 0
        index = 0
        with job_trace.stage("assemble", attributes={
            "pubs": len(normalized), "bindings": total_bindings,
            "shots": shots,
        }):
            for circuit, values, parameters, observable in normalized:
                batch = values.shape[0]
                template = circuit_to_experiment(circuit)
                for start, stop in broadcast_chunk_bounds(
                    batch, circuit.num_qubits
                ):
                    config = dict(engine_options)
                    # The chunk is the retry unit: its value rows and
                    # derived per-binding seeds ride the config, so a
                    # retried or fallback run reproduces every binding
                    # bit-identically.
                    config["broadcast"] = {
                        "values": values[start:stop],
                        "parameters": parameters,
                        "seeds": all_seeds[offset + start:offset + stop],
                        "observable": observable,
                        "binding_start": start,
                    }
                    config["seed"] = all_seeds[offset + start]
                    config["experiment_index"] = index
                    experiment = dict(template)
                    experiment["config"] = {
                        "seed": config["seed"], "index": index,
                    }
                    payloads.append((experiment, config))
                    index += 1
                offset += batch
        kind = choose_executor(
            len(payloads),
            max(pub[0].num_qubits for pub in normalized),
            requested,
        )
        job_trace.dispatch_started(kind, len(payloads))
        for exp_index, (experiment, config) in enumerate(payloads):
            context = job_trace.experiment_context(
                exp_index,
                experiment.get("header", {}).get("name", "unnamed"),
            )
            if context is not None:
                config["span_context"] = context
        dispatch = create_dispatch(self, payloads, kind, max_workers,
                                   job_trace)
        return Job(self, dispatch, trace=job_trace)

    def _validate_batch(self, circuits) -> None:
        """Submission-time validation hook; raise to reject the batch."""

    def _backend_spec(self):
        """``(provider, name)`` registry key for process-pool workers, or
        None when the backend cannot be rebuilt in a fresh process (the
        process executor then degrades to threads)."""
        return None

    def _run_experiment(self, circuit, options):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}('{self.name()}')>"
