"""Chunk-level checkpointing: the JSON-lines ledger behind ``Job.resume``.

A job submitted with ``checkpoint=<path>`` persists two kinds of records,
one JSON object per line:

* a **header** (written once at submission, before dispatch) carrying
  everything needed to reconstruct the job in a fresh process: the job
  id, the backend's ``(provider, name)`` spec, the full payload list
  (base64-pickled — configs embed derived seeds, retry policies, fault
  injectors, and chunk descriptors, so a resumed chunk re-runs with
  byte-identical inputs), and the dispatch plan that maps payload
  positions to ``(experiment, chunk)`` units;
* one **chunk** record per completed unit, keyed by
  ``(job id, experiment index, chunk index)``, appended by the worker
  that ran it.  The embedded outcome is the full
  :class:`~repro.providers.result.ExperimentResult` (base64-pickled);
  the sibling plain-JSON fields (name, status, shots, counts total)
  exist so a human — or ``grep`` — can audit the ledger without
  unpickling anything.

Appends go through a single ``os.write`` on an ``O_APPEND`` descriptor,
which POSIX keeps atomic for line-sized writes — workers in separate
processes can share one ledger without interleaving.  Readers dedupe on
``(experiment, chunk)`` keeping the first DONE record, so a re-run chunk
(retry after a crash mid-append, say) never double-counts.
"""

from __future__ import annotations

import base64
import json
import os
import pickle

from repro.exceptions import BackendError

#: Ledger schema version, bumped on incompatible record changes.
LEDGER_VERSION = 1


def _encode(obj) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode(blob: str):
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def _append_line(path: str, record: dict) -> None:
    """Atomically append one JSON record (newline-terminated) to the ledger."""
    line = (json.dumps(record, separators=(",", ":")) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def write_header(path: str, job_id: str, backend_spec, payloads,
                 plan) -> None:
    """Start a ledger: record the job's identity, payloads, and plan.

    Truncates any stale ledger at ``path`` — a checkpoint file belongs to
    exactly one job submission; resumed jobs append to the same file.
    """
    if backend_spec is None:
        raise BackendError(
            "checkpointing requires a backend with a provider spec "
            "(Aer/IBMQ registry backends)"
        )
    record = {
        "type": "header",
        "version": LEDGER_VERSION,
        "job_id": job_id,
        "backend": list(backend_spec),
        "plan": plan,
        "payloads": _encode(payloads),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")


def append_chunk(path: str, job_id: str, experiment: int, chunk: int,
                 outcome) -> None:
    """Record one completed ``(experiment, chunk)`` unit (worker-side)."""
    data = outcome.data if isinstance(outcome.data, dict) else {}
    counts = data.get("counts")
    _append_line(path, {
        "type": "chunk",
        "job_id": job_id,
        "experiment": int(experiment),
        "chunk": int(chunk),
        "name": outcome.circuit_name,
        "status": outcome.status,
        "shots": outcome.shots,
        "counts_total": sum(counts.values()) if counts else 0,
        "outcome": _encode(outcome),
    })


def load_ledger(path: str):
    """Read a ledger back as ``(header, chunks)``.

    ``header`` has ``payloads`` unpickled in place; ``chunks`` maps
    ``(experiment, chunk)`` to the recorded
    :class:`~repro.providers.result.ExperimentResult` (first DONE record
    wins; non-DONE records are skipped so resume re-runs those units).
    Malformed trailing lines — a crash mid-append — are ignored.
    """
    if not os.path.exists(path):
        raise BackendError(f"no checkpoint ledger at '{path}'")
    header = None
    chunks: dict = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write from a crashed worker
            kind = record.get("type")
            if kind == "header":
                if record.get("version") != LEDGER_VERSION:
                    raise BackendError(
                        f"checkpoint ledger version "
                        f"{record.get('version')} is not supported"
                    )
                record["payloads"] = _decode(record["payloads"])
                header = record
            elif kind == "chunk":
                key = (int(record["experiment"]), int(record["chunk"]))
                if key in chunks or record.get("status") != "DONE":
                    continue
                try:
                    chunks[key] = _decode(record["outcome"])
                except Exception:  # noqa: BLE001 — torn/corrupt payload
                    continue
    if header is None:
        raise BackendError(
            f"checkpoint ledger '{path}' has no header record"
        )
    return header, chunks
