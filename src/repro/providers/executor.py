"""Experiment scheduling: the middle stage of the execution pipeline.

``BaseBackend.run`` assembles circuits into a Qobj and hands the
per-experiment payloads to this module, which schedules them on one of
three executors:

* ``"serial"`` — in-process, one experiment at a time.  Execution is
  deferred until the job's result is first requested, so the
  :class:`~repro.providers.backend.Job` lifecycle (INITIALIZING ->
  RUNNING -> DONE/ERROR) is observable and ``cancel()`` works before
  execution starts.
* ``"threads"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Helps when the experiments spend their time in large numpy operations
  that release the GIL.
* ``"processes"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Workers rebuild the backend from its provider spec and the circuit
  from its assembled (JSON-compatible, hence picklable) experiment
  dictionary, so nothing non-trivial crosses the process boundary.

``"auto"`` (the default) picks ``processes`` for wide multi-circuit
batches on multi-core hosts and ``serial`` otherwise.

Determinism: per-experiment seeds are derived from the batch seed by the
assembler before scheduling, so all three executors produce bit-identical
:class:`~repro.providers.result.Result` payloads for a seeded batch.

Failure isolation: a worker never raises.  An experiment that fails is
returned as an ERROR :class:`~repro.providers.result.ExperimentResult`
carrying the exception text; the other experiments in the batch are
unaffected.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout

from repro.exceptions import BackendError, JobTimeoutError

#: Options consumed by the scheduling layer itself (everything else in
#: ``backend.run(**options)`` is forwarded to the simulator engines).
SCHEDULING_OPTIONS = ("executor", "max_workers")

#: Auto mode goes parallel only past these thresholds: process start-up and
#: payload pickling cost more than re-running a narrow circuit in-process.
AUTO_MIN_EXPERIMENTS = 4
AUTO_MIN_QUBITS = 10


class JobStatus:
    """String constants for the :class:`Job` state machine."""

    INITIALIZING = "INITIALIZING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    ERROR = "ERROR"
    CANCELLED = "CANCELLED"


def choose_executor(num_experiments: int, max_qubits: int,
                    requested=None) -> str:
    """Resolve the executor kind for a batch.

    ``requested`` may be ``"serial"``, ``"threads"``, ``"processes"``,
    ``"auto"``, or None (same as auto).  Auto picks processes for batches
    of at least ``AUTO_MIN_EXPERIMENTS`` experiments whose widest circuit
    has at least ``AUTO_MIN_QUBITS`` qubits when more than one CPU is
    available, and serial otherwise.
    """
    if requested in ("serial", "threads", "processes"):
        return requested
    if requested not in (None, "auto"):
        raise BackendError(
            f"unknown executor '{requested}'; choose serial, threads, "
            "processes, or auto"
        )
    if (
        num_experiments >= AUTO_MIN_EXPERIMENTS
        and max_qubits >= AUTO_MIN_QUBITS
        and (os.cpu_count() or 1) > 1
    ):
        return "processes"
    return "serial"


def resolve_backend(spec):
    """Rebuild a backend instance from its ``(provider, name)`` spec.

    This is the process-worker side of backend transport: instead of
    pickling backend objects (engines may hold caches), workers recreate
    them from the provider registries.
    """
    provider, name = spec
    if provider == "aer":
        from repro.providers.aer import Aer

        return Aer.get_backend(name)
    if provider == "ibmq":
        from repro.providers.fake import IBMQ

        return IBMQ.get_backend(name)
    raise BackendError(f"unknown backend provider '{provider}'")


def run_assembled_experiment(backend, experiment: dict, config: dict):
    """Run one assembled experiment; never raises.

    The experiment dictionary is disassembled back into a circuit (the
    Qobj is the wire format of the pipeline, for every executor) and the
    backend's ``_run_experiment`` hook does the actual simulation.  Errors
    are captured into an ERROR result with zero fan-out to siblings.
    """
    from repro.providers.result import ExperimentResult
    from repro.qobj.assembler import experiment_to_circuit

    name = experiment.get("header", {}).get("name", "unnamed")
    start = time.perf_counter()
    try:
        circuit = experiment_to_circuit(experiment)
        if config.get("use_kernels", True):
            outcome = backend._run_experiment(circuit, config)
        else:
            from repro.simulators import kernels

            with kernels.disabled():
                outcome = backend._run_experiment(circuit, config)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        outcome = ExperimentResult(
            name,
            config.get("shots", 0),
            {},
            status=JobStatus.ERROR,
            error=f"{type(exc).__name__}: {exc}",
        )
    outcome.time_taken = time.perf_counter() - start
    outcome.seed = config.get("seed")
    return outcome


def _process_worker(spec, experiment, config):
    """Top-level (hence picklable) entry point for process-pool workers."""
    return run_assembled_experiment(resolve_backend(spec), experiment, config)


class SerialDispatch:
    """Deferred in-process execution of a payload list."""

    def __init__(self, backend, payloads):
        self._backend = backend
        self._payloads = payloads
        self._state = JobStatus.INITIALIZING
        self._outcomes = None
        self._finished: list = []

    def status(self) -> str:
        """INITIALIZING until collect() first runs, then RUNNING/DONE."""
        return self._state

    def cancel(self) -> bool:
        """Cancel the whole batch; only possible before execution starts."""
        if self._state == JobStatus.INITIALIZING:
            self._state = JobStatus.CANCELLED
            return True
        return False

    def collect(self, timeout=None) -> list:
        """Run (once) and return the experiment outcomes in batch order.

        The ``timeout`` deadline is cooperative: it is checked between
        experiments (a running experiment cannot be interrupted in-process)
        and raises :class:`JobTimeoutError` when exceeded.  Finished
        experiments are kept, so a later ``collect`` resumes where the
        timed-out one stopped.
        """
        if self._state == JobStatus.CANCELLED:
            raise BackendError("job was cancelled")
        if self._outcomes is None:
            self._state = JobStatus.RUNNING
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            while len(self._finished) < len(self._payloads):
                if deadline is not None and time.monotonic() >= deadline:
                    raise JobTimeoutError(
                        f"job timed out after {timeout}s "
                        f"({len(self._finished)}/{len(self._payloads)} "
                        "experiments finished)"
                    )
                experiment, config = self._payloads[len(self._finished)]
                self._finished.append(
                    run_assembled_experiment(self._backend, experiment,
                                             config)
                )
            self._outcomes = self._finished
            self._state = JobStatus.DONE
        return self._outcomes


class PoolDispatch:
    """Experiments submitted to a thread or process pool."""

    def __init__(self, backend, payloads, kind: str, max_workers=None):
        workers = max_workers or min(len(payloads), os.cpu_count() or 1)
        workers = max(1, workers)
        if kind == "processes":
            spec = backend._backend_spec()
            if spec is None:
                # No provider registry entry to rebuild the backend from in
                # a worker process; threads share the instance instead.
                kind = "threads"
        if kind == "processes":
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._futures = [
                self._pool.submit(_process_worker, spec, experiment, config)
                for experiment, config in payloads
            ]
        else:
            self._pool = ThreadPoolExecutor(max_workers=workers)
            self._futures = [
                self._pool.submit(
                    run_assembled_experiment, backend, experiment, config
                )
                for experiment, config in payloads
            ]
        self._cancelled = False
        self._outcomes = None

    def status(self) -> str:
        """RUNNING while any future is outstanding, then DONE."""
        if self._cancelled:
            return JobStatus.CANCELLED
        if self._outcomes is not None or all(
            future.done() for future in self._futures
        ):
            return JobStatus.DONE
        return JobStatus.RUNNING

    def cancel(self) -> bool:
        """Cancel futures that have not started; True if any were."""
        prevented = [future.cancel() for future in self._futures]
        if any(prevented):
            self._cancelled = True
            self._pool.shutdown(wait=False)
            return True
        return False

    def collect(self, timeout=None) -> list:
        """Await and return the experiment outcomes in batch order.

        ``timeout`` bounds the whole collection, not each future; hitting
        it raises :class:`JobTimeoutError` (same type as the serial
        executor) and leaves the futures running, so a later ``collect``
        can still gather them.
        """
        if self._cancelled:
            raise BackendError("job was cancelled")
        if self._outcomes is None:
            from repro.providers.result import ExperimentResult

            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            outcomes = []
            for index, future in enumerate(self._futures):
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                try:
                    outcomes.append(future.result(timeout=remaining))
                except _FuturesTimeout:
                    raise JobTimeoutError(
                        f"job timed out after {timeout}s "
                        f"({index}/{len(self._futures)} experiments "
                        "collected)"
                    ) from None
                except Exception as exc:  # pool breakage, unpicklable payload
                    outcomes.append(
                        ExperimentResult(
                            "unnamed", 0, {},
                            status=JobStatus.ERROR,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
            # Every future has resolved, so this reaps workers immediately;
            # a lazy shutdown would leave process pools to a noisy atexit.
            self._pool.shutdown(wait=True)
            self._outcomes = outcomes
        return self._outcomes


def create_dispatch(backend, payloads, kind: str, max_workers=None):
    """Build the dispatch object for a resolved executor kind."""
    if kind == "serial":
        return SerialDispatch(backend, payloads)
    if kind in ("threads", "processes"):
        return PoolDispatch(backend, payloads, kind, max_workers)
    raise BackendError(f"unknown executor '{kind}'")
