"""Experiment scheduling: the middle stage of the execution pipeline.

``BaseBackend.run`` assembles circuits into a Qobj and hands the
per-experiment payloads to this module, which schedules them on one of
three executors:

* ``"serial"`` — in-process, one experiment at a time.  Execution is
  deferred until the job's result is first requested, so the
  :class:`~repro.providers.backend.Job` lifecycle (INITIALIZING ->
  RUNNING -> DONE/ERROR) is observable and ``cancel()`` works before
  execution starts.
* ``"threads"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Helps when the experiments spend their time in large numpy operations
  that release the GIL.
* ``"processes"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Workers rebuild the backend from its provider spec and the circuit
  from its assembled (JSON-compatible, hence picklable) experiment
  dictionary, so nothing non-trivial crosses the process boundary.

``"auto"`` (the default) picks ``processes`` for wide multi-circuit
batches on multi-core hosts and ``serial`` otherwise.

Determinism: per-experiment seeds are derived from the batch seed by the
assembler before scheduling, so all three executors produce bit-identical
:class:`~repro.providers.result.Result` payloads for a seeded batch —
*including* batches with retried experiments, because a retry re-runs the
experiment with its original derived seed.

Fault tolerance (see :mod:`repro.providers.retry` and
:mod:`repro.providers.faults`):

* a :class:`~repro.providers.retry.RetryPolicy` is applied per experiment
  inside :func:`run_assembled_experiment`, the common worker path of all
  three dispatchers, so transient failures re-run only the affected
  experiment;
* a broken process pool (worker crash) degrades processes -> threads ->
  serial and finishes the batch instead of erroring;
* exhausted retries mark only that experiment failed; the batch stays
  collectable as a partial :class:`~repro.providers.result.Result`;
* every dispatch keeps a ``fallbacks`` ledger, surfaced with the
  per-experiment attempt counts as ``job.fault_stats``.

Failure isolation: a worker never raises.  An experiment that fails is
returned as an ERROR :class:`~repro.providers.result.ExperimentResult`
carrying the exception text; the other experiments in the batch are
unaffected.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures import wait as _futures_wait

from repro.exceptions import (
    BackendError,
    CorruptedResultError,
    JobTimeoutError,
)

#: Options consumed by the scheduling layer itself (everything else in
#: ``backend.run(**options)`` is forwarded to the simulator engines).
SCHEDULING_OPTIONS = (
    "executor", "max_workers", "job_trace", "shot_chunk_size",
    "shot_chunk_dispatch", "checkpoint",
)

#: Auto mode goes parallel only past these thresholds: process start-up and
#: payload pickling cost more than re-running a narrow circuit in-process.
AUTO_MIN_EXPERIMENTS = 4
AUTO_MIN_QUBITS = 10

#: Auto mode also goes parallel for chunk-split batches — the
#: few-circuits/many-shots shape — once each chunk carries enough shots
#: to amortize process start-up, regardless of circuit width (work
#: scales with shots, not qubits, on that shape).
AUTO_MIN_CHUNK_SHOTS = 4096

#: Graceful-degradation order when a pool breaks mid-batch.
FALLBACK_ORDER = {"processes": "threads", "threads": "serial"}


class JobStatus:
    """String constants for the :class:`Job` state machine.

    ``INCOMPLETE`` is a per-experiment status only: it marks placeholder
    entries in a partial result for experiments that had not finished
    when the deadline hit.  ``SUBMITTED`` and ``QUEUED`` are
    service-level states used by :mod:`repro.runtime`: a job accepted by
    the service is SUBMITTED (persisted, not yet schedulable), then
    QUEUED (waiting for the fair-share scheduler to pick it), and only
    becomes a live provider dispatch — INITIALIZING/RUNNING — once a
    service worker launches it.
    """

    SUBMITTED = "SUBMITTED"
    QUEUED = "QUEUED"
    INITIALIZING = "INITIALIZING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    ERROR = "ERROR"
    CANCELLED = "CANCELLED"
    INCOMPLETE = "INCOMPLETE"


def choose_executor(num_experiments: int, max_qubits: int,
                    requested=None, chunk_payloads: int = 0,
                    chunk_shots: int = 0) -> str:
    """Resolve the executor kind for a batch.

    ``requested`` may be ``"serial"``, ``"threads"``, ``"processes"``,
    ``"auto"``, or None (same as auto).  Auto picks processes for batches
    of at least ``AUTO_MIN_EXPERIMENTS`` experiments whose widest circuit
    has at least ``AUTO_MIN_QUBITS`` qubits when more than one CPU is
    available, and serial otherwise — except that a batch split into
    ``chunk_payloads`` shot-chunk payloads of at least
    ``AUTO_MIN_CHUNK_SHOTS`` shots each also goes to the process pool:
    the few-circuits/many-shots shape is exactly where chunk-parallel
    dispatch pays, however narrow the circuit.
    """
    if requested in ("serial", "threads", "processes"):
        return requested
    if requested not in (None, "auto"):
        raise BackendError(
            f"unknown executor '{requested}'; choose serial, threads, "
            "processes, or auto"
        )
    if (os.cpu_count() or 1) <= 1:
        return "serial"
    if (
        num_experiments >= AUTO_MIN_EXPERIMENTS
        and max_qubits >= AUTO_MIN_QUBITS
    ):
        return "processes"
    if chunk_payloads >= 2 and chunk_shots >= AUTO_MIN_CHUNK_SHOTS:
        return "processes"
    return "serial"


def resolve_backend(spec):
    """Rebuild a backend instance from its ``(provider, name)`` spec.

    This is the process-worker side of backend transport: instead of
    pickling backend objects (engines may hold caches), workers recreate
    them from the provider registries.
    """
    provider, name = spec
    if provider == "aer":
        from repro.providers.aer import Aer

        return Aer.get_backend(name)
    if provider == "ibmq":
        from repro.providers.fake import IBMQ

        return IBMQ.get_backend(name)
    raise BackendError(f"unknown backend provider '{provider}'")


def validate_outcome(outcome) -> None:
    """Cheap payload-consistency checks; raises CorruptedResultError.

    A counts histogram must sum to the shots the engine reports, and a
    per-shot memory list must have one entry per shot.  This is what
    turns a corrupted-payload fault into a *retryable* failure instead of
    silently skewed statistics.
    """
    data = outcome.data if isinstance(outcome.data, dict) else {}
    if "counts" in data and outcome.shots:
        total = sum(data["counts"].values())
        if total != outcome.shots:
            raise CorruptedResultError(
                f"counts for '{outcome.circuit_name}' sum to {total}, "
                f"expected {outcome.shots} shots"
            )
    if "broadcast_counts" in data and outcome.shots:
        for index, entry in enumerate(data["broadcast_counts"]):
            expected = entry.get("shots", outcome.shots)
            total = sum(entry.get("counts", {}).values())
            if total != expected:
                raise CorruptedResultError(
                    f"broadcast counts[{index}] for "
                    f"'{outcome.circuit_name}' sum to {total}, expected "
                    f"{expected} shots"
                )
    if "memory" in data and outcome.shots:
        if len(data["memory"]) != outcome.shots:
            raise CorruptedResultError(
                f"memory for '{outcome.circuit_name}' has "
                f"{len(data['memory'])} entries, expected "
                f"{outcome.shots} shots"
            )


def run_assembled_experiment(backend, experiment: dict, config: dict):
    """Run one assembled experiment with per-experiment retry; never raises.

    The experiment dictionary is disassembled back into a circuit (the
    Qobj is the wire format of the pipeline, for every executor) and the
    backend's ``_run_experiment`` hook does the actual simulation.  A
    failure classified as transient by the config's
    :class:`~repro.providers.retry.RetryPolicy` re-runs the experiment —
    with its original derived seed, so a successful retry is bit-identical
    to a fault-free run.  Non-transient errors, and transient ones that
    exhaust the retry budget, are captured into an ERROR result with zero
    fan-out to siblings.
    """
    from repro.providers.faults import FaultInjector
    from repro.providers.result import ExperimentResult
    from repro.providers.retry import resolve_retry_policy
    from repro.qobj.assembler import experiment_to_circuit

    name = experiment.get("header", {}).get("name", "unnamed")
    policy = resolve_retry_policy(config.get("retry_policy"))
    injector = config.get("fault_injector")
    if injector is not None and not isinstance(injector, FaultInjector):
        raise BackendError("fault_injector must be a FaultInjector")
    recorder = None
    if "span_context" in config:
        # Telemetry is opt-in per job: the submitting process injects a
        # span context only when tracing is enabled, so the disabled path
        # costs one dict lookup and allocates nothing.
        from repro.telemetry.jobtrace import ExperimentRecorder

        recorder = ExperimentRecorder(config["span_context"])
    seed = config.get("seed")
    chunk_info = config.get("shot_chunk")
    chunk_index = chunk_info["index"] if chunk_info else None
    start = time.perf_counter()
    attempts = 0
    backoff_total = 0.0
    fault_log: list = []
    while True:
        attempt = attempts
        attempts += 1
        attempt_span = (
            recorder.start_attempt(attempt) if recorder is not None else None
        )
        try:
            if injector is not None:
                injector.before_attempt(name, attempt, fault_log,
                                        chunk=chunk_index)
            circuit = experiment_to_circuit(experiment)
            if config.get("use_kernels", True):
                outcome = backend._run_experiment(circuit, config)
            else:
                from repro.simulators import kernels

                with kernels.disabled():
                    outcome = backend._run_experiment(circuit, config)
            if injector is not None:
                injector.after_attempt(name, attempt, outcome, fault_log,
                                       chunk=chunk_index)
            validate_outcome(outcome)
            if recorder is not None:
                recorder.end_attempt(attempt_span)
            break
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            if recorder is not None:
                recorder.end_attempt(attempt_span, error=exc)
            if policy.retryable(exc) and attempts < policy.max_attempts:
                wait = policy.backoff(attempt, seed=seed)
                if wait > 0:
                    backoff_total += wait
                    if recorder is not None:
                        recorder.record_backoff(wait)
                    time.sleep(wait)
                continue
            outcome = ExperimentResult(
                name,
                config.get("shots", 0),
                {},
                status=JobStatus.ERROR,
                error=f"{type(exc).__name__}: {exc}",
            )
            break
    outcome.time_taken = time.perf_counter() - start
    outcome.seed = seed
    outcome.attempts = attempts
    outcome.backoff_total = backoff_total
    outcome.faults = fault_log
    if chunk_info is not None:
        outcome.chunk = dict(chunk_info)
    inline_chunks = config.get("shot_chunks")
    if inline_chunks:
        # The engine ran the whole chunk layout in one payload; report the
        # layout on the outcome so chunk accounting matches dispatch mode.
        outcome.chunks = len(inline_chunks)
        outcome.completed_chunks = (
            len(inline_chunks) if outcome.status == JobStatus.DONE else 0
        )
    if recorder is not None:
        outcome.spans = recorder.finish(outcome)
    checkpoint = config.get("checkpoint")
    if checkpoint is not None and outcome.status == JobStatus.DONE:
        from repro.providers.checkpoint import append_chunk

        try:
            append_chunk(
                checkpoint["path"], checkpoint["job_id"],
                checkpoint["experiment"], checkpoint["chunk"], outcome,
            )
        except Exception as exc:  # noqa: BLE001 — a full disk must not
            # fail the experiment; the unit simply re-runs on resume.
            fault_log.append(f"checkpoint-error:{type(exc).__name__}")
    return outcome


def _process_worker(spec, experiment, config):
    """Top-level (hence picklable) entry point for process-pool workers."""
    return run_assembled_experiment(resolve_backend(spec), experiment, config)


def _payload_name(payload) -> str:
    """Experiment name of one (experiment, config) payload."""
    return payload[0].get("header", {}).get("name", "unnamed")


def _placeholder(payload, status: str, message: str):
    """An ExperimentResult stand-in for work that never produced one."""
    from repro.providers.result import ExperimentResult

    return ExperimentResult(
        _payload_name(payload), 0, {}, status=status, error=message,
        attempts=0,
    )


class CompletedDispatch:
    """A dispatch with nothing to run: DONE from construction.

    ``Job.resume`` on a fully-checkpointed ledger has every outcome
    restored already — dispatching an empty payload set through a real
    executor would leave the job stuck INITIALIZING until the first
    ``result()`` call and spin up scheduling machinery for zero work.
    This stand-in short-circuits: status is DONE immediately, collection
    returns no outcomes (the job weaves in the restored ones), and
    cancel is a no-op.
    """

    kind = "none"

    def __init__(self):
        self.fallbacks: list = []

    def status(self) -> str:
        """Always :data:`JobStatus.DONE`."""
        return JobStatus.DONE

    def cancel(self) -> bool:
        """No-op; there is nothing in flight to cancel."""
        return False

    def finished_outcomes(self) -> list:
        """Return no outcomes — the job restores its own."""
        return []

    def iter_outcomes(self):
        """Yield nothing; every chunk was restored from the ledger."""
        return iter(())

    def collect(self, timeout=None, partial=False) -> list:
        """Return no outcomes — the job restores its own."""
        return []


class SerialDispatch:
    """Deferred in-process execution of a payload list."""

    def __init__(self, backend, payloads, job_trace=None):
        self._backend = backend
        self._payloads = payloads
        self._state = JobStatus.INITIALIZING
        self._outcomes = None
        self._finished: list = []
        self._cancel_requested = False
        self._job_trace = job_trace
        #: Executor fallbacks taken (always empty for serial; present so
        #: the fault-stats ledger reads uniformly across dispatch kinds).
        self.fallbacks: list = []

    @property
    def kind(self) -> str:
        """The executor kind that runs this dispatch."""
        return "serial"

    def status(self) -> str:
        """INITIALIZING until collect() first runs, then RUNNING/DONE."""
        return self._state

    def cancel(self) -> bool:
        """Stop the batch; True if any payload was prevented from running.

        Before execution starts the whole batch is cancelled.  While a
        streaming iteration is RUNNING, cancellation is cooperative and
        chunk-granular: the flag is checked between payloads, so the unit
        in flight finishes (and is kept — exactly-once delivery) and the
        rest never run.
        """
        if self._state == JobStatus.INITIALIZING:
            self._state = JobStatus.CANCELLED
            return True
        if self._state == JobStatus.RUNNING and not self._cancel_requested \
                and len(self._finished) < len(self._payloads):
            self._cancel_requested = True
            return True
        return False

    def finished_outcomes(self) -> list:
        """Snapshot of the outcomes completed so far (non-blocking)."""
        return list(self._finished)

    def iter_outcomes(self):
        """Yield ``(index, outcome)`` as each payload finishes.

        The streaming twin of :meth:`collect`: payloads run one at a time
        and are yielded immediately.  Abandoning the iterator mid-batch
        keeps the finished outcomes, and a later ``collect`` (or a fresh
        iteration) resumes from the first unfinished payload.  A
        ``cancel()`` between payloads ends the iteration with everything
        already yielded kept.
        """
        if self._state == JobStatus.CANCELLED:
            return
        if self._outcomes is not None:
            for index, outcome in enumerate(self._outcomes):
                yield index, outcome
            return
        self._state = JobStatus.RUNNING
        for index, outcome in enumerate(self._finished):
            yield index, outcome
        while len(self._finished) < len(self._payloads):
            if self._cancel_requested:
                self._state = JobStatus.CANCELLED
                return
            experiment, config = self._payloads[len(self._finished)]
            outcome = run_assembled_experiment(self._backend, experiment,
                                               config)
            self._finished.append(outcome)
            yield len(self._finished) - 1, outcome
        self._outcomes = self._finished
        self._state = JobStatus.DONE

    def collect(self, timeout=None, partial=False) -> list:
        """Run (once) and return the experiment outcomes in batch order.

        The ``timeout`` deadline is cooperative: it is checked between
        experiments (a running experiment cannot be interrupted in-process)
        and raises :class:`JobTimeoutError` when exceeded — unless
        ``partial=True``, which instead returns the finished outcomes plus
        INCOMPLETE placeholders for the rest.  Finished experiments are
        kept either way, so a later ``collect`` resumes where the
        timed-out one stopped.
        """
        if self._state == JobStatus.CANCELLED:
            if not partial:
                raise BackendError("job was cancelled")
            return self._finished + [
                _placeholder(payload, JobStatus.CANCELLED, "job was cancelled")
                for payload in self._payloads[len(self._finished):]
            ]
        if self._outcomes is None:
            self._state = JobStatus.RUNNING
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            while len(self._finished) < len(self._payloads):
                if self._cancel_requested:
                    # Cancelled mid-stream: keep what was delivered, stop.
                    self._state = JobStatus.CANCELLED
                    if not partial:
                        raise BackendError("job was cancelled")
                    return self._finished + [
                        _placeholder(payload, JobStatus.CANCELLED,
                                     "job was cancelled")
                        for payload in self._payloads[len(self._finished):]
                    ]
                if deadline is not None and time.monotonic() >= deadline:
                    if partial:
                        done = len(self._finished)
                        return self._finished + [
                            _placeholder(
                                payload, JobStatus.INCOMPLETE,
                                f"not finished within {timeout}s",
                            )
                            for payload in self._payloads[done:]
                        ]
                    raise JobTimeoutError(
                        f"job timed out after {timeout}s "
                        f"({len(self._finished)}/{len(self._payloads)} "
                        "experiments finished)"
                    )
                experiment, config = self._payloads[len(self._finished)]
                self._finished.append(
                    run_assembled_experiment(self._backend, experiment,
                                             config)
                )
            self._outcomes = self._finished
            self._state = JobStatus.DONE
        return self._outcomes


class PoolDispatch:
    """Experiments submitted to a thread or process pool.

    A pool that breaks mid-batch (a crashed worker, most commonly) is not
    fatal: the unfinished experiments are re-dispatched down the
    degradation chain processes -> threads -> serial, recorded in
    :attr:`fallbacks`, and the batch completes.
    """

    def __init__(self, backend, payloads, kind: str, max_workers=None,
                 job_trace=None):
        workers = max_workers or min(len(payloads), os.cpu_count() or 1)
        workers = max(1, workers)
        if kind == "processes":
            spec = backend._backend_spec()
            if spec is None:
                # No provider registry entry to rebuild the backend from in
                # a worker process; threads share the instance instead.
                kind = "threads"
        self._backend = backend
        self._payloads = payloads
        self._kind = kind
        self._workers = workers
        self._job_trace = job_trace
        if job_trace is not None:
            job_trace.set_executor(kind)
        if kind == "processes":
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._futures = [
                self._pool.submit(_process_worker, spec, experiment, config)
                for experiment, config in payloads
            ]
        else:
            self._pool = ThreadPoolExecutor(max_workers=workers)
            self._futures = [
                self._pool.submit(
                    run_assembled_experiment, backend, experiment, config
                )
                for experiment, config in payloads
            ]
        self._cancelled = False
        self._outcomes = None
        #: index -> outcome, filled as futures (and fallback runs) resolve
        #: so repeated/partial collects never re-run finished work.
        self._collected: dict = {}
        #: Degradations taken, e.g. ["processes->threads"].
        self.fallbacks: list = []

    @property
    def kind(self) -> str:
        """The executor kind that runs this dispatch (post any silent
        processes→threads flip for spec-less backends)."""
        return self._kind

    def status(self) -> str:
        """RUNNING while any future is outstanding, then DONE."""
        if self._cancelled:
            return JobStatus.CANCELLED
        if self._outcomes is not None or all(
            future.done() for future in self._futures
        ):
            return JobStatus.DONE
        return JobStatus.RUNNING

    def cancel(self) -> bool:
        """Cancel futures that have not started; True if any were.

        Idempotent: the job transitions to CANCELLED exactly once, and a
        second ``cancel()`` returns False.  Experiments already finished
        (or mid-flight, which the pool cannot interrupt) keep their
        results; ``collect(partial=True)`` gathers them alongside
        CANCELLED placeholders for the prevented ones.
        """
        if self._cancelled or self._outcomes is not None:
            return False
        prevented = [future.cancel() for future in self._futures]
        if any(prevented):
            self._cancelled = True
            self._pool.shutdown(wait=False)
            return True
        return False

    def finished_outcomes(self) -> list:
        """Snapshot of the outcomes completed so far (non-blocking)."""
        snapshot = dict(self._collected)
        for index, future in enumerate(self._futures):
            if index in snapshot or not future.done() or future.cancelled():
                continue
            try:
                snapshot[index] = future.result(timeout=0)
            except Exception:  # noqa: BLE001 — broken pool etc.; skip
                continue
        return [snapshot[index] for index in sorted(snapshot)]

    def iter_outcomes(self):
        """Yield ``(index, outcome)`` as futures resolve (completion order).

        The streaming twin of :meth:`collect`.  Chunks of one experiment
        dispatched across the pool surface here the moment their worker
        finishes, regardless of submission order.  A ``cancel()`` during
        iteration ends it after the in-flight completions drain; what was
        yielded stays collected (``collect(partial=True)`` returns it
        alongside CANCELLED placeholders).  A broken pool degrades down
        the usual fallback chain, then yields the recovered outcomes.
        """
        if self._outcomes is not None:
            for index, outcome in enumerate(self._outcomes):
                yield index, outcome
            return
        for index in sorted(self._collected):
            yield index, self._collected[index]
        index_of = {
            future: index for index, future in enumerate(self._futures)
        }
        pending = {
            future for index, future in enumerate(self._futures)
            if index not in self._collected
        }
        broken: list = []
        while pending and not self._cancelled:
            done, pending = _futures_wait(
                pending, timeout=0.05, return_when=FIRST_COMPLETED
            )
            for future in sorted(done, key=index_of.get):
                index = index_of[future]
                if future.cancelled():
                    continue
                try:
                    self._collected[index] = future.result(timeout=0)
                except BrokenExecutor:
                    broken.append(index)
                    continue
                except Exception as exc:  # noqa: BLE001
                    self._collected[index] = _placeholder(
                        self._payloads[index], JobStatus.ERROR,
                        f"{type(exc).__name__}: {exc}",
                    )
                yield index, self._collected[index]
        if broken and not self._cancelled:
            self._run_fallbacks(broken, None, False, [])
            for index in sorted(broken):
                if index in self._collected:
                    yield index, self._collected[index]
        if not self._cancelled \
                and len(self._collected) == len(self._payloads):
            self._pool.shutdown(wait=True)
            self._outcomes = [
                self._collected[index]
                for index in range(len(self._payloads))
            ]

    def _remaining(self, deadline):
        if deadline is None:
            return None
        return max(0.0, deadline - time.monotonic())

    def _fallback_kind(self, kind: str) -> str:
        """Next executor down the degradation chain for these payloads."""
        next_kind = FALLBACK_ORDER.get(kind, "serial")
        if next_kind == "threads" and any(
            not config.get("use_kernels", True)
            for _experiment, config in self._payloads
        ):
            # The kernel switch is process-global: un-kernelled payloads
            # must not share the interpreter with concurrent threads.
            next_kind = "serial"
        return next_kind

    def _run_fallbacks(self, indices, deadline, partial, incomplete):
        """Re-dispatch broken-pool experiments down the degradation chain.

        Fills ``self._collected`` for every index it completes; deadline
        overruns either extend ``incomplete`` (partial mode) or raise
        :class:`JobTimeoutError`.
        """
        kind = self._kind
        pending = list(indices)
        while pending:
            next_kind = self._fallback_kind(kind)
            self.fallbacks.append(f"{kind}->{next_kind}")
            if self._job_trace is not None:
                self._job_trace.record_fallback(f"{kind}->{next_kind}")
            kind = next_kind
            if kind == "threads":
                pool = ThreadPoolExecutor(max_workers=self._workers)
                futures = {
                    index: pool.submit(
                        run_assembled_experiment, self._backend,
                        *self._payloads[index]
                    )
                    for index in pending
                }
                broken = []
                for index in pending:
                    try:
                        self._collected[index] = futures[index].result(
                            timeout=self._remaining(deadline)
                        )
                    except _FuturesTimeout:
                        if partial:
                            incomplete.append(index)
                            continue
                        pool.shutdown(wait=False)
                        raise JobTimeoutError(
                            f"job timed out during threads fallback "
                            f"({len(self._collected)}/{len(self._payloads)}"
                            " experiments collected)"
                        ) from None
                    except BrokenExecutor:
                        broken.append(index)
                    except Exception as exc:  # noqa: BLE001
                        self._collected[index] = _placeholder(
                            self._payloads[index], JobStatus.ERROR,
                            f"{type(exc).__name__}: {exc}",
                        )
                pool.shutdown(wait=False)
                pending = broken
            else:  # serial: the executor of last resort cannot break
                for index in pending:
                    remaining = self._remaining(deadline)
                    if remaining is not None and remaining <= 0:
                        if partial:
                            incomplete.append(index)
                            continue
                        raise JobTimeoutError(
                            f"job timed out during serial fallback "
                            f"({len(self._collected)}/{len(self._payloads)}"
                            " experiments collected)"
                        )
                    self._collected[index] = run_assembled_experiment(
                        self._backend, *self._payloads[index]
                    )
                pending = []

    def _collect_after_cancel(self, deadline, partial):
        """Partial gather once cancelled: keep everything that ran."""
        if not partial:
            raise BackendError("job was cancelled")
        outcomes = []
        for index, future in enumerate(self._futures):
            if index in self._collected:
                outcomes.append(self._collected[index])
                continue
            if future.cancelled():
                outcomes.append(_placeholder(
                    self._payloads[index], JobStatus.CANCELLED,
                    "cancelled before start",
                ))
                continue
            try:
                # Mid-flight when cancel() hit: let it finish rather than
                # lose a completed experiment.
                self._collected[index] = future.result(
                    timeout=self._remaining(deadline)
                )
                outcomes.append(self._collected[index])
            except _FuturesTimeout:
                outcomes.append(_placeholder(
                    self._payloads[index], JobStatus.INCOMPLETE,
                    "still running at partial collect",
                ))
            except Exception as exc:  # noqa: BLE001 — broken pool
                outcomes.append(_placeholder(
                    self._payloads[index], JobStatus.ERROR,
                    f"{type(exc).__name__}: {exc}",
                ))
        return outcomes

    def collect(self, timeout=None, partial=False) -> list:
        """Await and return the experiment outcomes in batch order.

        ``timeout`` bounds the whole collection, not each future; hitting
        it raises :class:`JobTimeoutError` (same type as the serial
        executor) and leaves the futures running, so a later ``collect``
        can still gather them — or, with ``partial=True``, returns the
        finished outcomes plus INCOMPLETE placeholders instead of
        raising.  A broken pool triggers the processes -> threads ->
        serial degradation chain rather than failing the batch.
        """
        if self._outcomes is not None:
            return self._outcomes
        deadline = None if timeout is None else time.monotonic() + timeout
        if self._cancelled:
            return self._collect_after_cancel(deadline, partial)
        broken = []
        incomplete = []
        for index, future in enumerate(self._futures):
            if index in self._collected:
                continue
            try:
                self._collected[index] = future.result(
                    timeout=self._remaining(deadline)
                )
            except _FuturesTimeout:
                if partial:
                    incomplete.append(index)
                    continue
                done = sum(
                    1 for f in self._futures if f.done()
                )
                raise JobTimeoutError(
                    f"job timed out after {timeout}s "
                    f"({done}/{len(self._futures)} experiments "
                    "collected)"
                ) from None
            except BrokenExecutor:
                broken.append(index)
            except Exception as exc:  # unpicklable payload and kin
                self._collected[index] = _placeholder(
                    self._payloads[index], JobStatus.ERROR,
                    f"{type(exc).__name__}: {exc}",
                )
        if broken:
            self._run_fallbacks(broken, deadline, partial, incomplete)
        if incomplete:
            # Not final: leave the pool running and nothing cached, so a
            # later collect picks up where this one left off.
            return [
                self._collected[index] if index in self._collected
                else _placeholder(
                    self._payloads[index], JobStatus.INCOMPLETE,
                    f"not finished within {timeout}s",
                )
                for index in range(len(self._payloads))
            ]
        # Every experiment has resolved, so this reaps workers immediately;
        # a lazy shutdown would leave process pools to a noisy atexit.
        self._pool.shutdown(wait=True)
        self._outcomes = [
            self._collected[index] for index in range(len(self._payloads))
        ]
        return self._outcomes


def create_dispatch(backend, payloads, kind: str, max_workers=None,
                    job_trace=None):
    """Build the dispatch object for a resolved executor kind."""
    if kind == "serial":
        return SerialDispatch(backend, payloads, job_trace=job_trace)
    if kind in ("threads", "processes"):
        return PoolDispatch(backend, payloads, kind, max_workers,
                            job_trace=job_trace)
    raise BackendError(f"unknown executor '{kind}'")
