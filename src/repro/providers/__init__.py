"""Providers: Aer simulators, simulated IBM QX devices, jobs and results."""

from repro.providers.aer import Aer
from repro.providers.backend import BackendConfiguration, BaseBackend, Job
from repro.providers.execute import execute, transpile
from repro.providers.executor import JobStatus, choose_executor
from repro.providers.fake import IBMQ, FakeQXBackend, build_device_noise_model
from repro.providers.result import Counts, ExperimentResult, Result

__all__ = [
    "Aer",
    "BackendConfiguration",
    "BaseBackend",
    "Counts",
    "ExperimentResult",
    "FakeQXBackend",
    "IBMQ",
    "Job",
    "JobStatus",
    "Result",
    "build_device_noise_model",
    "choose_executor",
    "execute",
    "transpile",
]
