"""Providers: Aer simulators, simulated IBM QX devices, jobs and results.

Fault tolerance lives here too: :mod:`repro.providers.retry` (per-
experiment retry with deterministic backoff), :mod:`repro.providers.faults`
(seeded fault injection for chaos testing), and the graceful
processes -> threads -> serial degradation inside
:mod:`repro.providers.executor`.
"""

from repro.providers.aer import Aer
from repro.providers.backend import BackendConfiguration, BaseBackend, Job
from repro.providers.execute import execute, transpile
from repro.providers.executor import JobStatus, choose_executor
from repro.providers.fake import (
    IBMQ,
    BackendProperties,
    FakeQXBackend,
    build_device_noise_model,
)
from repro.providers.faults import FaultInjector, FaultKind, FaultSpec
from repro.providers.result import Counts, ExperimentResult, Result
from repro.providers.retry import RetryPolicy

__all__ = [
    "Aer",
    "BackendConfiguration",
    "BackendProperties",
    "BaseBackend",
    "Counts",
    "ExperimentResult",
    "FakeQXBackend",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "IBMQ",
    "Job",
    "JobStatus",
    "Result",
    "RetryPolicy",
    "build_device_noise_model",
    "choose_executor",
    "execute",
    "transpile",
]
