"""The reusable execution engine behind ``BaseBackend.run`` and the
runtime service.

Submission used to live entirely inside ``BaseBackend.run``: every call
validated, assembled, planned shot-chunks, resolved an executor, and
created the dispatch in one monolithic method — fine for a single
process, but a hosted service needs to *prepare* a job at submission
time and *launch* it later, when the scheduler picks it.  This module is
that split:

* :meth:`ExecutionEngine.prepare` turns ``(backend, circuits, options)``
  into a :class:`PreparedExecution` — validated payloads, the dispatch
  plan, the resolved executor kind, and the job's telemetry hub — without
  running anything;
* :meth:`ExecutionEngine.launch` creates the dispatch for a prepared
  execution and returns the live :class:`~repro.providers.backend.Job`;
* :meth:`ExecutionEngine.run` is both in sequence — exactly what
  ``BaseBackend.run`` did before the refactor, bit for bit;
* :meth:`ExecutionEngine.compile_batch` is the device-compile stage that
  ``execute`` used to inline: transpile against the backend's
  :class:`~repro.transpiler.target.Target` through the (two-tier)
  content-hash cache, with per-circuit spans on the job trace.

``BaseBackend.run``/``run_pubs`` delegate here, so direct backend
submissions and service-driven ones share one code path and stay
bit-identical.  The engine is stateless; the process-wide instance from
:func:`get_execution_engine` is what the runtime service drives.
"""

from __future__ import annotations

from repro.exceptions import BackendError
from repro.providers.executor import (
    SCHEDULING_OPTIONS,
    choose_executor,
    create_dispatch,
)


class PreparedExecution:
    """A validated, assembled, scheduled-but-not-launched batch.

    Everything :meth:`ExecutionEngine.launch` needs to create the
    dispatch: the target backend, the payload list (one entry per
    dispatch unit), the chunk plan, the resolved executor ``kind``, and
    the :class:`~repro.telemetry.jobtrace.JobTrace` the job will record
    into.  ``plan`` is None when the legacy unplanned Job construction
    applies (no chunking, no checkpoint).
    """

    __slots__ = ("backend", "payloads", "plan", "kind", "max_workers",
                 "job_trace", "use_plan")

    def __init__(self, backend, payloads, plan, kind, max_workers,
                 job_trace, use_plan):
        self.backend = backend
        self.payloads = payloads
        self.plan = plan
        self.kind = kind
        self.max_workers = max_workers
        self.job_trace = job_trace
        self.use_plan = use_plan


class ExecutionEngine:
    """Builds, plans, and launches experiment batches on any backend."""

    def prepare(self, backend, circuits, options) -> PreparedExecution:
        """Validate, assemble, and plan a circuit batch (runs nothing).

        This is the submission half of the old ``BaseBackend.run``: it
        derives per-experiment (and per-chunk) seeds, builds the payload
        list and dispatch plan, resolves the executor kind, injects span
        contexts, and writes the checkpoint header when asked — leaving
        only dispatch creation to :meth:`launch`.
        """
        from repro.providers.faults import resolve_injector
        from repro.providers.retry import resolve_retry_policy
        from repro.qobj.assembler import (
            assemble,
            derive_chunk_seeds,
            shot_chunk_bounds,
        )

        if not isinstance(circuits, (list, tuple)):
            circuits = [circuits]
        if not circuits:
            raise BackendError("no circuits to run")
        configuration = backend.configuration()
        shots = options.get("shots", 1024)
        if shots > configuration.max_shots:
            raise BackendError(
                f"shots {shots} exceeds backend maximum "
                f"{configuration.max_shots}"
            )
        backend._validate_batch(circuits)
        requested = options.get("executor")
        if not options.get("use_kernels", True) and requested == "threads":
            requested = "serial"
        max_workers = options.get("max_workers")
        engine_options = {
            key: value
            for key, value in options.items()
            if key not in SCHEDULING_OPTIONS
        }
        # Normalize the fault-tolerance knobs once here, so every worker
        # (including process-pool ones, via pickled configs) agrees on the
        # retry budget and the seeded fault schedule.
        engine_options["retry_policy"] = resolve_retry_policy(
            options.get("retry_policy")
        )
        engine_options["fault_injector"] = resolve_injector(
            options.get("fault_injector")
        )
        job_trace = options.get("job_trace")
        if job_trace is None:
            from repro.providers.backend import Job
            from repro.telemetry.jobtrace import JobTrace

            job_trace = JobTrace(Job.reserve_id(), backend.name())
        max_qubits = max(circuit.num_qubits for circuit in circuits)
        with job_trace.stage("assemble", attributes={
            "experiments": len(circuits), "shots": shots,
            "max_qubits": max_qubits,
        }):
            qobj = assemble(
                circuits,
                shots=shots,
                seed=options.get("seed"),
                memory=options.get("memory", False),
            )
        chunk_size = options.get("shot_chunk_size")
        force_dispatch = bool(options.get("shot_chunk_dispatch"))
        payloads = []
        plan = []
        chunked = False
        for index, experiment in enumerate(qobj["experiments"]):
            exp_seed = experiment["config"]["seed"]
            name = experiment.get("header", {}).get("name", "unnamed")
            support = backend._chunk_support(circuits[index], options)
            bounds = (
                shot_chunk_bounds(shots, chunk_size)
                if support != "none" else [(0, shots)]
            )
            base = dict(engine_options)
            base["experiment_index"] = experiment["config"]["index"]
            if len(bounds) == 1:
                # Single chunk (or unchunkable): the experiment seed and
                # payload shape are exactly the pre-chunking pipeline's.
                config = dict(base, seed=exp_seed)
                payloads.append((experiment, config))
                plan.append({
                    "experiment_index": index, "name": name,
                    "chunk": None, "chunks": 1,
                })
                continue
            chunked = True
            seeds = derive_chunk_seeds(exp_seed, len(bounds))
            if support == "dispatch" or force_dispatch:
                for chunk, ((start, stop), seed) in enumerate(
                    zip(bounds, seeds)
                ):
                    config = dict(base, seed=seed, shots=stop - start)
                    config["shot_chunk"] = {
                        "index": chunk, "total": len(bounds),
                        "start": start, "stop": stop,
                    }
                    payloads.append((experiment, config))
                    plan.append({
                        "experiment_index": index, "name": name,
                        "chunk": chunk, "chunks": len(bounds),
                    })
            else:
                # Inline: one payload, the engine loops the same chunk
                # layout (same seeds) itself — bit-identical to dispatch
                # mode, without re-deriving the state per chunk.
                config = dict(base, seed=exp_seed)
                config["shot_chunks"] = [
                    {"index": chunk, "start": start, "stop": stop,
                     "seed": seed}
                    for chunk, ((start, stop), seed) in enumerate(
                        zip(bounds, seeds)
                    )
                ]
                payloads.append((experiment, config))
                plan.append({
                    "experiment_index": index, "name": name,
                    "chunk": None, "chunks": len(bounds),
                })
        chunk_payloads = [
            config for _experiment, config in payloads
            if config.get("shot_chunk")
        ]
        kind = choose_executor(
            len(payloads), max_qubits, requested,
            chunk_payloads=len(chunk_payloads),
            chunk_shots=min(
                (config["shots"] for config in chunk_payloads), default=0
            ),
        )
        job_trace.dispatch_started(kind, len(payloads))
        for seq, ((experiment, config), entry) in enumerate(
            zip(payloads, plan)
        ):
            context = job_trace.experiment_context(
                entry["experiment_index"], entry["name"],
                chunk=entry["chunk"], chunks=entry["chunks"], seq=seq,
            )
            if context is not None:
                config["span_context"] = context
        checkpoint = options.get("checkpoint")
        if checkpoint:
            from repro.providers.checkpoint import write_header

            for (experiment, config), entry in zip(payloads, plan):
                config["checkpoint"] = {
                    "path": checkpoint,
                    "job_id": job_trace.job_id,
                    "experiment": entry["experiment_index"],
                    "chunk": entry["chunk"] or 0,
                }
            write_header(checkpoint, job_trace.job_id,
                         backend._backend_spec(), payloads, plan)
        return PreparedExecution(
            backend, payloads, plan, kind, max_workers, job_trace,
            use_plan=bool(chunked or checkpoint),
        )

    def launch(self, prepared: PreparedExecution):
        """Create the dispatch for a prepared batch; returns the live Job."""
        from repro.providers.backend import Job

        dispatch = create_dispatch(
            prepared.backend, prepared.payloads, prepared.kind,
            prepared.max_workers, prepared.job_trace,
        )
        return Job(
            prepared.backend, dispatch, trace=prepared.job_trace,
            plan=prepared.plan if prepared.use_plan else None,
        )

    def run(self, backend, circuits, options):
        """Prepare and launch in one step (the ``BaseBackend.run`` path)."""
        return self.launch(self.prepare(backend, circuits, options))

    def prepare_pubs(self, backend, pubs, options) -> PreparedExecution:
        """Validate and plan a broadcast-pub batch (runs nothing).

        The pub twin of :meth:`prepare`: normalizes the pub tuples,
        derives one seed per *binding* (concatenated across pubs, exactly
        the bound-circuit layout), splits each batch axis at the
        broadcast engine's memory cap, and resolves the executor.
        """
        import numpy as np

        from repro.providers.faults import resolve_injector
        from repro.providers.retry import resolve_retry_policy
        from repro.qobj.assembler import (
            circuit_to_experiment,
            derive_experiment_seeds,
        )
        from repro.simulators.batched import broadcast_chunk_bounds

        if not isinstance(pubs, (list, tuple)):
            pubs = [pubs]
        if not pubs:
            raise BackendError("no pubs to run")
        configuration = backend.configuration()
        shots = options.get("shots", 1024)
        if shots > configuration.max_shots:
            raise BackendError(
                f"shots {shots} exceeds backend maximum "
                f"{configuration.max_shots}"
            )
        if options.get("noise_model") is not None:
            raise BackendError(
                "broadcast execution does not support noise models; bind "
                "the circuits and use run() instead"
            )
        if not options.get("use_kernels", True):
            raise BackendError(
                "broadcast execution requires the specialized kernels; "
                "use run() for use_kernels=False A/B comparisons"
            )
        normalized = []
        for pub in pubs:
            if not isinstance(pub, (list, tuple)) or len(pub) not in (3, 4):
                raise BackendError(
                    "each pub must be (circuit, parameter_values, "
                    "parameters[, observable])"
                )
            circuit, values, parameters = pub[0], pub[1], pub[2]
            observable = pub[3] if len(pub) == 4 else None
            values = np.asarray(values, dtype=float)
            if values.ndim == 1:
                values = values.reshape(1, -1)
            if values.ndim != 2 or values.shape[0] < 1:
                raise BackendError(
                    "pub parameter_values must be a non-empty "
                    "(batch, num_parameters) array"
                )
            normalized.append(
                (circuit, values, list(parameters or ()), observable)
            )
        backend._validate_batch([pub[0] for pub in normalized])
        total_bindings = sum(pub[1].shape[0] for pub in normalized)
        all_seeds = derive_experiment_seeds(
            options.get("seed"), total_bindings
        )
        requested = options.get("executor")
        max_workers = options.get("max_workers")
        engine_options = {
            key: value
            for key, value in options.items()
            if key not in SCHEDULING_OPTIONS
        }
        engine_options["retry_policy"] = resolve_retry_policy(
            options.get("retry_policy")
        )
        engine_options["fault_injector"] = resolve_injector(
            options.get("fault_injector")
        )
        engine_options["shots"] = shots
        job_trace = options.get("job_trace")
        if job_trace is None:
            from repro.providers.backend import Job
            from repro.telemetry.jobtrace import JobTrace

            job_trace = JobTrace(Job.reserve_id(), backend.name())
        payloads = []
        offset = 0
        index = 0
        with job_trace.stage("assemble", attributes={
            "pubs": len(normalized), "bindings": total_bindings,
            "shots": shots,
        }):
            for circuit, values, parameters, observable in normalized:
                batch = values.shape[0]
                template = circuit_to_experiment(circuit)
                for start, stop in broadcast_chunk_bounds(
                    batch, circuit.num_qubits
                ):
                    config = dict(engine_options)
                    # The chunk is the retry unit: its value rows and
                    # derived per-binding seeds ride the config, so a
                    # retried or fallback run reproduces every binding
                    # bit-identically.
                    config["broadcast"] = {
                        "values": values[start:stop],
                        "parameters": parameters,
                        "seeds": all_seeds[offset + start:offset + stop],
                        "observable": observable,
                        "binding_start": start,
                    }
                    config["seed"] = all_seeds[offset + start]
                    config["experiment_index"] = index
                    experiment = dict(template)
                    experiment["config"] = {
                        "seed": config["seed"], "index": index,
                    }
                    payloads.append((experiment, config))
                    index += 1
                offset += batch
        kind = choose_executor(
            len(payloads),
            max(pub[0].num_qubits for pub in normalized),
            requested,
        )
        job_trace.dispatch_started(kind, len(payloads))
        for exp_index, (experiment, config) in enumerate(payloads):
            context = job_trace.experiment_context(
                exp_index,
                experiment.get("header", {}).get("name", "unnamed"),
            )
            if context is not None:
                config["span_context"] = context
        return PreparedExecution(
            backend, payloads, None, kind, max_workers, job_trace,
            use_plan=False,
        )

    def run_pubs(self, backend, pubs, options):
        """Prepare and launch a pub batch (the ``run_pubs`` path)."""
        return self.launch(self.prepare_pubs(backend, pubs, options))

    def compile_batch(self, backend, circuits, job_trace, *,
                      optimization_level=1, seed=None,
                      transpile_cache=True, cache_namespace=None):
        """Compile circuits for a device backend (``execute``'s old inline
        stage).

        Simulator backends take circuits as-is; device backends compile
        each one against a :class:`~repro.transpiler.target.Target` built
        from the backend's configuration and calibrations, with a
        ``transpile`` span (and its per-pass children) per circuit on the
        job's trace.  Results are memoised in the two-tier content-hash
        transpile cache, so warm sessions and repeated processes skip the
        pass pipeline entirely.  ``cache_namespace`` isolates the cache
        reads/writes to a private namespace (per-session sub-tier).
        """
        if backend.configuration().simulator:
            return list(circuits)
        from repro.transpiler.preset import transpile as _transpile
        from repro.transpiler.target import Target

        target = Target.from_backend(backend)
        prepared = []
        for circuit in circuits:
            with job_trace.stage("transpile", attributes={
                "circuit": circuit.name,
                "width": circuit.num_qubits,
                "depth_in": circuit.depth(),
            }) as span:
                mapped = _transpile(
                    circuit,
                    target=target,
                    optimization_level=optimization_level,
                    seed=seed,
                    transpile_cache=transpile_cache,
                    cache_namespace=cache_namespace,
                )
                span.set_attribute("depth_out", mapped.depth())
            mapped.name = circuit.name
            prepared.append(mapped)
        return prepared


#: The stateless process-wide engine instance.
_ENGINE = ExecutionEngine()


def get_execution_engine() -> ExecutionEngine:
    """The process-wide :class:`ExecutionEngine`."""
    return _ENGINE
