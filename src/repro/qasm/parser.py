"""Recursive-descent parser for OpenQASM 2.0.

Implements the grammar of Cross et al., "Open quantum assembly language"
(the paper's Ref. [12]): register declarations, gate definitions, the
builtin ``U``/``CX`` operations, ``qelib1.inc`` standard gates, measurement,
reset, barriers, and classically-conditioned operations.
"""

from __future__ import annotations

import math

from repro.circuit.gate import Gate
from repro.circuit.library.standard_gates import (
    STANDARD_GATES,
    CXGate,
    U3Gate,
    get_standard_gate,
)
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.register import ClassicalRegister, QuantumRegister
from repro.exceptions import QasmError
from repro.qasm.lexer import Token, tokenize

_FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


class _GateDef:
    """A user ``gate`` declaration: parameter names, qubit names, body."""

    __slots__ = ("name", "params", "qubits", "body", "opaque")

    def __init__(self, name, params, qubits, body, opaque=False):
        self.name = name
        self.params = params
        self.qubits = qubits
        self.body = body
        self.opaque = opaque


class _GateCall:
    """One call inside a gate body (args are formal qubit names)."""

    __slots__ = ("name", "exprs", "qubit_args")

    def __init__(self, name, exprs, qubit_args):
        self.name = name
        self.exprs = exprs
        self.qubit_args = qubit_args


class QasmParser:
    """Parses one OpenQASM 2.0 program into a :class:`QuantumCircuit`."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0
        self._qregs: dict[str, QuantumRegister] = {}
        self._cregs: dict[str, ClassicalRegister] = {}
        self._gate_defs: dict[str, _GateDef] = {}
        self._qelib1 = False
        self._circuit = QuantumCircuit(name="qasm-circuit")

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, type_) -> Token:
        token = self._advance()
        if token.type != type_:
            raise QasmError(
                f"line {token.line}: expected {type_}, got {token.type} "
                f"({token.value!r})"
            )
        return token

    def _accept(self, type_):
        if self._peek().type == type_:
            return self._advance()
        return None

    # -- entry point ---------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        """Parse the full program and return the circuit."""
        self._expect("OPENQASM")
        version = self._advance()
        if version.type not in ("REAL", "INT") or float(version.value) != 2.0:
            raise QasmError(f"unsupported OpenQASM version {version.value!r}")
        self._expect("SEMICOLON")
        while self._peek().type != "EOF":
            self._statement()
        return self._circuit

    # -- statements --------------------------------------------------------------

    def _statement(self):
        token = self._peek()
        if token.type == "include":
            self._include()
        elif token.type in ("qreg", "creg"):
            self._register_decl()
        elif token.type == "gate":
            self._gate_decl()
        elif token.type == "opaque":
            self._opaque_decl()
        elif token.type == "if":
            self._if_statement()
        elif token.type == "measure":
            self._measure()
        elif token.type == "reset":
            self._reset()
        elif token.type == "barrier":
            self._barrier()
        elif token.type == "ID":
            self._gate_call()
        else:
            raise QasmError(
                f"line {token.line}: unexpected token {token.value!r}"
            )

    def _include(self):
        self._expect("include")
        filename = self._expect("STRING").value
        self._expect("SEMICOLON")
        if filename == "qelib1.inc":
            self._qelib1 = True
        else:
            raise QasmError(
                f"cannot include {filename!r}: only qelib1.inc is available"
            )

    def _register_decl(self):
        kind = self._advance().type
        name = self._expect("ID").value
        self._expect("LBRACKET")
        size = self._expect("INT").value
        self._expect("RBRACKET")
        self._expect("SEMICOLON")
        if name in self._qregs or name in self._cregs:
            raise QasmError(f"register '{name}' already declared")
        if kind == "qreg":
            register = QuantumRegister(size, name)
            self._qregs[name] = register
        else:
            register = ClassicalRegister(size, name)
            self._cregs[name] = register
        self._circuit.add_register(register)

    def _gate_decl(self):
        self._expect("gate")
        name = self._expect("ID").value
        params: list[str] = []
        if self._accept("LPAREN"):
            if self._peek().type != "RPAREN":
                params.append(self._expect("ID").value)
                while self._accept("COMMA"):
                    params.append(self._expect("ID").value)
            self._expect("RPAREN")
        qubits = [self._expect("ID").value]
        while self._accept("COMMA"):
            qubits.append(self._expect("ID").value)
        self._expect("LBRACE")
        body: list[_GateCall] = []
        while self._peek().type != "RBRACE":
            token = self._peek()
            if token.type == "barrier":
                # Barriers inside gate bodies are directives; skip them.
                self._advance()
                while self._peek().type != "SEMICOLON":
                    self._advance()
                self._expect("SEMICOLON")
                continue
            call_name = self._expect("ID").value
            exprs = []
            if self._accept("LPAREN"):
                if self._peek().type != "RPAREN":
                    exprs.append(self._expression())
                    while self._accept("COMMA"):
                        exprs.append(self._expression())
                self._expect("RPAREN")
            args = [self._expect("ID").value]
            while self._accept("COMMA"):
                args.append(self._expect("ID").value)
            self._expect("SEMICOLON")
            for arg in args:
                if arg not in qubits:
                    raise QasmError(
                        f"gate '{name}': unknown qubit argument '{arg}'"
                    )
            body.append(_GateCall(call_name, exprs, args))
        self._expect("RBRACE")
        self._gate_defs[name] = _GateDef(name, params, qubits, body)

    def _opaque_decl(self):
        self._expect("opaque")
        name = self._expect("ID").value
        params: list[str] = []
        if self._accept("LPAREN"):
            if self._peek().type != "RPAREN":
                params.append(self._expect("ID").value)
                while self._accept("COMMA"):
                    params.append(self._expect("ID").value)
            self._expect("RPAREN")
        qubits = [self._expect("ID").value]
        while self._accept("COMMA"):
            qubits.append(self._expect("ID").value)
        self._expect("SEMICOLON")
        self._gate_defs[name] = _GateDef(name, params, qubits, [], opaque=True)

    # -- quantum operations ------------------------------------------------------

    def _if_statement(self):
        self._expect("if")
        self._expect("LPAREN")
        reg_name = self._expect("ID").value
        self._expect("EQEQ")
        value = self._expect("INT").value
        self._expect("RPAREN")
        if reg_name not in self._cregs:
            raise QasmError(f"unknown classical register '{reg_name}'")
        register = self._cregs[reg_name]
        before = len(self._circuit.data)
        token = self._peek()
        if token.type == "measure":
            self._measure()
        elif token.type == "reset":
            self._reset()
        elif token.type == "ID":
            self._gate_call()
        else:
            raise QasmError(f"line {token.line}: invalid conditioned operation")
        for item in self._circuit.data[before:]:
            item.operation.condition = (register, value)

    def _measure(self):
        self._expect("measure")
        qubit = self._quantum_argument()
        self._expect("ARROW")
        clbit = self._classical_argument()
        self._expect("SEMICOLON")
        self._circuit.measure(qubit, clbit)

    def _reset(self):
        self._expect("reset")
        qubit = self._quantum_argument()
        self._expect("SEMICOLON")
        self._circuit.reset(qubit)

    def _barrier(self):
        self._expect("barrier")
        args = [self._quantum_argument()]
        while self._accept("COMMA"):
            args.append(self._quantum_argument())
        self._expect("SEMICOLON")
        self._circuit.barrier(*args)

    def _gate_call(self):
        name_token = self._expect("ID")
        name = name_token.value
        exprs = []
        if self._accept("LPAREN"):
            if self._peek().type != "RPAREN":
                exprs.append(self._expression())
                while self._accept("COMMA"):
                    exprs.append(self._expression())
            self._expect("RPAREN")
        args = [self._quantum_argument()]
        while self._accept("COMMA"):
            args.append(self._quantum_argument())
        self._expect("SEMICOLON")
        params = [self._evaluate(expr, {}) for expr in exprs]
        gate = self._instantiate(name, params, name_token.line)
        self._circuit.append(gate, args)

    def _instantiate(self, name, params, line) -> Gate:
        """Build a gate object for ``name`` with evaluated ``params``."""
        if name in self._gate_defs:
            gdef = self._gate_defs[name]
            if len(params) != len(gdef.params):
                raise QasmError(
                    f"line {line}: gate '{name}' takes {len(gdef.params)} "
                    f"parameter(s), got {len(params)}"
                )
            if gdef.opaque:
                return Gate(name, len(gdef.qubits), params)
            env = dict(zip(gdef.params, params))
            definition = []
            for call in gdef.body:
                sub_params = [self._evaluate(expr, env) for expr in call.exprs]
                sub_gate = self._instantiate(call.name, sub_params, line)
                positions = tuple(gdef.qubits.index(q) for q in call.qubit_args)
                definition.append((sub_gate, positions, ()))
            gate = Gate(name, len(gdef.qubits), params)
            gate._definition = definition
            return gate
        if name == "U":
            if len(params) != 3:
                raise QasmError(f"line {line}: U takes 3 parameters")
            return U3Gate(*params)
        if name == "CX":
            return CXGate()
        if name in STANDARD_GATES:
            if not self._qelib1:
                raise QasmError(
                    f"line {line}: gate '{name}' requires "
                    f'include "qelib1.inc";'
                )
            return get_standard_gate(name, params)
        raise QasmError(f"line {line}: unknown gate '{name}'")

    # -- arguments ------------------------------------------------------------------

    def _quantum_argument(self):
        name = self._expect("ID").value
        if name not in self._qregs:
            raise QasmError(f"unknown quantum register '{name}'")
        register = self._qregs[name]
        if self._accept("LBRACKET"):
            index = self._expect("INT").value
            self._expect("RBRACKET")
            if index >= register.size:
                raise QasmError(
                    f"index {index} out of range for qreg '{name}'"
                )
            return register[index]
        return register

    def _classical_argument(self):
        name = self._expect("ID").value
        if name not in self._cregs:
            raise QasmError(f"unknown classical register '{name}'")
        register = self._cregs[name]
        if self._accept("LBRACKET"):
            index = self._expect("INT").value
            self._expect("RBRACKET")
            if index >= register.size:
                raise QasmError(
                    f"index {index} out of range for creg '{name}'"
                )
            return register[index]
        return register

    # -- expressions ------------------------------------------------------------------

    def _expression(self):
        """Parse an expression into a small AST (tuples)."""
        return self._parse_additive()

    def _parse_additive(self):
        node = self._parse_multiplicative()
        while self._peek().type in ("PLUS", "MINUS"):
            op = self._advance().type
            right = self._parse_multiplicative()
            node = ("binop", op, node, right)
        return node

    def _parse_multiplicative(self):
        node = self._parse_power()
        while self._peek().type in ("TIMES", "DIVIDE"):
            op = self._advance().type
            right = self._parse_power()
            node = ("binop", op, node, right)
        return node

    def _parse_power(self):
        node = self._parse_unary()
        if self._peek().type == "POWER":
            self._advance()
            right = self._parse_power()
            node = ("binop", "POWER", node, right)
        return node

    def _parse_unary(self):
        token = self._peek()
        if token.type == "MINUS":
            self._advance()
            return ("neg", self._parse_unary())
        if token.type == "PLUS":
            self._advance()
            return self._parse_unary()
        return self._parse_atom()

    def _parse_atom(self):
        token = self._advance()
        if token.type in ("REAL", "INT"):
            return ("num", float(token.value))
        if token.type == "PI":
            return ("pi",)
        if token.type == "ID":
            if token.value in _FUNCTIONS and self._peek().type == "LPAREN":
                self._advance()
                inner = self._expression()
                self._expect("RPAREN")
                return ("func", token.value, inner)
            return ("param", token.value)
        if token.type == "LPAREN":
            inner = self._expression()
            self._expect("RPAREN")
            return inner
        raise QasmError(
            f"line {token.line}: unexpected token {token.value!r} in expression"
        )

    def _evaluate(self, node, env) -> float:
        kind = node[0]
        if kind == "num":
            return node[1]
        if kind == "pi":
            return math.pi
        if kind == "param":
            if node[1] not in env:
                raise QasmError(f"unknown identifier '{node[1]}' in expression")
            return env[node[1]]
        if kind == "neg":
            return -self._evaluate(node[1], env)
        if kind == "func":
            return _FUNCTIONS[node[1]](self._evaluate(node[2], env))
        if kind == "binop":
            _, op, left, right = node
            lv = self._evaluate(left, env)
            rv = self._evaluate(right, env)
            if op == "PLUS":
                return lv + rv
            if op == "MINUS":
                return lv - rv
            if op == "TIMES":
                return lv * rv
            if op == "DIVIDE":
                return lv / rv
            if op == "POWER":
                return lv**rv
        raise QasmError(f"bad expression node {node!r}")


def parse_qasm(source: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source into a :class:`QuantumCircuit`."""
    return QasmParser(source).parse()
