"""OpenQASM 2.0 front end: lexer, parser, exporter."""

from repro.qasm.exporter import circuit_to_qasm
from repro.qasm.lexer import Token, tokenize
from repro.qasm.parser import QasmParser, parse_qasm

__all__ = ["QasmParser", "Token", "circuit_to_qasm", "parse_qasm", "tokenize"]
