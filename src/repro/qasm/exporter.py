"""Serialize circuits back to OpenQASM 2.0 text (round-trip with the parser).

Gates outside the qelib1 vocabulary (composite gates from
``QuantumCircuit.to_gate`` or raw ``unitary`` gates) are expanded inline via
their definitions until only standard gates remain.
"""

from __future__ import annotations

from repro.circuit.library.standard_gates import STANDARD_GATES
from repro.circuit.parameter import ParameterExpression
from repro.exceptions import QasmError

#: Standard-gate names writable directly in a qelib1 program.
_EMITTABLE = set(STANDARD_GATES) | {"U", "CX"}
#: Aliases whose qelib1 spelling differs from our internal name.
_RENAME = {"u": "u3", "p": "u1", "cp": "cu1"}


def _format_param(param) -> str:
    if isinstance(param, ParameterExpression):
        if param.parameters:
            raise QasmError(
                "cannot export unbound parameters to OpenQASM 2.0; "
                "bind them first"
            )
        param = float(param)
    value = float(param)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _bit_ref(bit) -> str:
    return f"{bit.register.name}[{bit.index}]"


def _emit_operation(lines, operation, qubit_refs, clbit_refs):
    """Append the QASM line(s) for one operation, expanding composites."""
    name = operation.name
    prefix = ""
    if operation.condition is not None:
        register, value = operation.condition
        prefix = f"if({register.name}=={value}) "
    if name == "measure":
        lines.append(f"{prefix}measure {qubit_refs[0]} -> {clbit_refs[0]};")
        return
    if name == "reset":
        lines.append(f"{prefix}reset {qubit_refs[0]};")
        return
    if name == "barrier":
        lines.append(f"barrier {', '.join(qubit_refs)};")
        return
    emit_name = _RENAME.get(name, name)
    if emit_name in _EMITTABLE and emit_name not in ("U", "CX", "unitary"):
        if operation.params:
            params = ",".join(_format_param(p) for p in operation.params)
            lines.append(f"{prefix}{emit_name}({params}) {', '.join(qubit_refs)};")
        else:
            lines.append(f"{prefix}{emit_name} {', '.join(qubit_refs)};")
        return
    # Composite or opaque: expand through the definition.
    definition = operation.definition
    if definition is None:
        raise QasmError(
            f"cannot export gate '{name}': not in qelib1 and has no definition"
        )
    for sub, qpos, cpos in definition:
        sub_qubits = [qubit_refs[i] for i in qpos]
        sub_clbits = [clbit_refs[i] for i in cpos]
        if operation.condition is not None and sub.condition is None:
            sub = sub.copy()
            sub.condition = operation.condition
        _emit_operation(lines, sub, sub_qubits, sub_clbits)


def circuit_to_qasm(circuit) -> str:
    """Serialize ``circuit`` to an OpenQASM 2.0 program string."""
    lines = ['OPENQASM 2.0;', 'include "qelib1.inc";']
    for register in circuit.qregs:
        lines.append(f"qreg {register.name}[{register.size}];")
    for register in circuit.cregs:
        lines.append(f"creg {register.name}[{register.size}];")
    for item in circuit.data:
        qubit_refs = [_bit_ref(q) for q in item.qubits]
        clbit_refs = [_bit_ref(c) for c in item.clbits]
        _emit_operation(lines, item.operation, qubit_refs, clbit_refs)
    return "\n".join(lines) + "\n"
