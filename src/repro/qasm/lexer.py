"""Tokenizer for OpenQASM 2.0 (the language of the paper's Fig. 1a)."""

from __future__ import annotations

from repro.exceptions import QasmError

KEYWORDS = {
    "OPENQASM", "include", "qreg", "creg", "gate", "opaque",
    "measure", "reset", "barrier", "if", "pi",
}

SYMBOLS = {
    "->": "ARROW",
    "==": "EQEQ",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "{": "LBRACE",
    "}": "RBRACE",
    ",": "COMMA",
    ";": "SEMICOLON",
    "+": "PLUS",
    "-": "MINUS",
    "*": "TIMES",
    "/": "DIVIDE",
    "^": "POWER",
}


class Token:
    """A lexical token with position information for error messages."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_, value, line, column):
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.type}, {self.value!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Convert OpenQASM source text into a token list (EOF-terminated)."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    length = len(source)

    def error(message):
        raise QasmError(f"line {line}, column {col}: {message}")

    while i < length:
        char = source[i]
        # Whitespace.
        if char in " \t\r":
            i += 1
            col += 1
            continue
        if char == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments.
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            i = end + 2
            continue
        # Strings.
        if char == '"':
            end = source.find('"', i + 1)
            if end == -1:
                error("unterminated string literal")
            tokens.append(Token("STRING", source[i + 1 : end], line, col))
            col += end + 1 - i
            i = end + 1
            continue
        # Numbers.
        if char.isdigit() or (char == "." and i + 1 < length and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < length:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < length and source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            if seen_dot or seen_exp:
                tokens.append(Token("REAL", float(text), line, col))
            else:
                tokens.append(Token("INT", int(text), line, col))
            col += i - start
            continue
        # Identifiers / keywords.
        if char.isalpha() or char == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            if word in KEYWORDS:
                tokens.append(Token(word.upper() if word == "pi" else word, word, line, col))
                if word == "pi":
                    tokens[-1] = Token("PI", word, line, col)
            else:
                tokens.append(Token("ID", word, line, col))
            col += i - start
            continue
        # Two-character symbols first.
        matched = False
        for text, name in SYMBOLS.items():
            if source.startswith(text, i):
                tokens.append(Token(name, text, line, col))
                i += len(text)
                col += len(text)
                matched = True
                break
        if matched:
            continue
        error(f"unexpected character {char!r}")
    tokens.append(Token("EOF", None, line, col))
    return tokens
