"""ASCII histogram of measurement counts.

Stands in for ``plot_histogram`` from the paper's Section IV run-through;
emits a text bar chart instead of a matplotlib figure.
"""

from __future__ import annotations

from repro.exceptions import VisualizationError


def plot_histogram(counts: dict, width: int = 40, sort: str = "key") -> str:
    """Render a counts dictionary as an ASCII bar chart.

    Args:
        counts: mapping from bitstring to integer count (or probability).
        width: width of the largest bar in characters.
        sort: ``"key"`` to sort by bitstring, ``"value"`` for descending count.

    Returns:
        A multi-line string.
    """
    if not counts:
        raise VisualizationError("cannot plot empty counts")
    if sort == "key":
        items = sorted(counts.items())
    elif sort == "value":
        items = sorted(counts.items(), key=lambda kv: -kv[1])
    else:
        raise VisualizationError(f"unknown sort order '{sort}'")
    total = sum(counts.values())
    peak = max(counts.values())
    label_width = max(len(str(key)) for key, _ in items)
    lines = []
    for key, value in items:
        bar = "█" * max(1, round(width * value / peak)) if value > 0 else ""
        share = value / total if total else 0.0
        lines.append(
            f"{str(key).rjust(label_width)} | {bar.ljust(width)} "
            f"{value} ({share:.3f})"
        )
    return "\n".join(lines)
