"""Text-mode visualization: circuit diagrams, histograms, coupling maps."""

from repro.visualization.histogram import plot_histogram
from repro.visualization.text import circuit_to_text

__all__ = ["circuit_to_text", "plot_histogram"]
