"""Text-mode visualization: circuit diagrams, histograms, trace timelines."""

from repro.visualization.histogram import plot_histogram
from repro.visualization.text import circuit_to_text
from repro.visualization.timeline import trace_timeline, trace_timeline_svg

__all__ = [
    "circuit_to_text",
    "plot_histogram",
    "trace_timeline",
    "trace_timeline_svg",
]
