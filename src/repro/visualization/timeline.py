"""Trace-timeline rendering: terminal Gantt charts and SVG.

Renders a :class:`~repro.telemetry.trace.Trace` as a per-span timeline —
one row per span in tree order, indented by depth, with a bar positioned
on a shared wall-clock axis.  ERROR-status spans are marked (``!`` bars
in text, red bars in SVG) so retries and fallbacks stand out.
"""

from __future__ import annotations

_SVG_ROW_HEIGHT = 22
_SVG_LABEL_WIDTH = 260
_SVG_BAR_AREA = 640


def _span_rows(trace):
    """``(depth, span, offset_s, duration_s)`` rows in tree order.

    Offsets are wall-clock, measured from the earliest span start, so
    worker-recorded spans line up with the parent process's stages.
    """
    rows = []
    spans = [span for _, span in trace.walk()]
    if not spans:
        return [], 0.0
    origin = min(span.start_wall for span in spans)
    total = 0.0
    for depth, span in trace.walk():
        offset = span.start_wall - origin
        duration = span.duration or 0.0
        rows.append((depth, span, offset, duration))
        total = max(total, offset + duration)
    return rows, total


def _format_duration(seconds: float) -> str:
    """Human-scaled duration label."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def trace_timeline(trace, width: int = 80) -> str:
    """ASCII timeline of a trace: one bar row per span, tree-indented.

    ``width`` bounds the total line width; the bar area scales to what
    the labels leave over.  ERROR spans render with ``!`` bars.
    """
    rows, total = _span_rows(trace)
    if not rows:
        return "(empty trace)\n"
    labels = []
    for depth, span, offset, duration in rows:
        marker = "x " if span.status == "ERROR" else ""
        labels.append(
            f"{'  ' * depth}{marker}{span.name} "
            f"[{_format_duration(duration)}]"
        )
    label_width = min(max(len(label) for label in labels) + 1, width - 20)
    bar_width = max(10, width - label_width - 2)
    scale = bar_width / total if total > 0 else 0.0
    lines = [
        f"trace {trace.trace_id}  "
        f"({len(rows)} spans, {_format_duration(total)})"
    ]
    for label, (depth, span, offset, duration) in zip(labels, rows):
        start = int(offset * scale)
        length = max(1, int(duration * scale)) if duration > 0 else 1
        start = min(start, bar_width - 1)
        length = min(length, bar_width - start)
        fill = "!" if span.status == "ERROR" else "#"
        bar = " " * start + fill * length
        lines.append(f"{label:<{label_width}}|{bar:<{bar_width}}|")
    return "\n".join(lines) + "\n"


def trace_timeline_svg(trace) -> str:
    """SVG timeline of a trace (one bar per span on a shared time axis)."""
    rows, total = _span_rows(trace)
    height = _SVG_ROW_HEIGHT * (len(rows) + 1)
    width = _SVG_LABEL_WIDTH + _SVG_BAR_AREA + 20
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="12">',
        f'<text x="4" y="14">trace {trace.trace_id} '
        f'({len(rows)} spans, {_format_duration(total)})</text>',
    ]
    scale = _SVG_BAR_AREA / total if total > 0 else 0.0
    for index, (depth, span, offset, duration) in enumerate(rows):
        y = _SVG_ROW_HEIGHT * (index + 1)
        color = "#c0392b" if span.status == "ERROR" else "#2d7dd2"
        x = _SVG_LABEL_WIDTH + offset * scale
        bar = max(1.0, duration * scale)
        label = f"{span.name} [{_format_duration(duration or 0.0)}]"
        parts.append(
            f'<text x="{4 + 10 * depth}" y="{y + 14}">{label}</text>'
        )
        parts.append(
            f'<rect x="{x:.1f}" y="{y + 4}" width="{bar:.1f}" '
            f'height="{_SVG_ROW_HEIGHT - 8}" fill="{color}">'
            f'<title>{span.name}: {_format_duration(duration or 0.0)} '
            f'({span.status})</title></rect>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
