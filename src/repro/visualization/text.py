"""ASCII circuit drawer — renders circuit diagrams like the paper's Fig. 1b.

Qubits are horizontal lines read left to right; gate symbols follow common
conventions: ``■`` control, ``⊕`` CNOT target, ``×`` swap, ``M`` measure,
``░`` barrier, boxed mnemonics for everything else.
"""

from __future__ import annotations

from repro.circuit.parameter import ParameterExpression


def _gate_label(operation) -> str:
    """Short printable label for an operation, with rounded parameters."""
    name = operation.name.upper()
    if not operation.params:
        return name
    rendered = []
    for param in operation.params:
        if isinstance(param, ParameterExpression) and param.parameters:
            rendered.append(str(param))
        else:
            rendered.append(f"{float(param):.4g}")
    return f"{name}({','.join(rendered)})"


def circuit_to_text(circuit) -> str:
    """Render ``circuit`` as a multi-line string diagram."""
    qubits = circuit.qubits
    clbits = circuit.clbits
    num_q = len(qubits)
    num_c = len(clbits)
    if num_q == 0:
        return "(empty circuit)"
    q_row = {qubit: i for i, qubit in enumerate(qubits)}
    c_row = {clbit: num_q + i for i, clbit in enumerate(clbits)}
    total_rows = num_q + num_c

    # Assign each instruction to the earliest column after its wires' last use.
    columns: list[dict[int, str]] = []  # column -> {row: symbol}
    col_connect: list[dict[int, str]] = []  # vertical connector rows
    level = [0] * total_rows

    def place(rows_syms, connect_rows):
        rows = [r for r, _ in rows_syms] + list(connect_rows)
        col = max(level[r] for r in rows)
        while len(columns) <= col:
            columns.append({})
            col_connect.append({})
        for r, sym in rows_syms:
            columns[col][r] = sym
        for r in connect_rows:
            if r not in columns[col]:
                col_connect[col][r] = "│"
        for r in rows:
            level[r] = col + 1

    for item in circuit.data:
        op = item.operation
        name = op.name
        rows_q = [q_row[q] for q in item.qubits]
        rows_c = [c_row[c] for c in item.clbits]
        if name == "barrier":
            place([(r, "░") for r in rows_q], [])
            continue
        if name == "measure":
            span = range(min(rows_q + rows_c), max(rows_q + rows_c) + 1)
            inner = [r for r in span if r not in rows_q + rows_c]
            place([(rows_q[0], "M")] + [(rows_c[0], "╩")], inner)
            continue
        if name == "reset":
            place([(rows_q[0], "|0>")], [])
            continue
        if len(rows_q) == 1:
            place([(rows_q[0], _gate_label(op))], [])
            continue
        # Multi-qubit gates: pick per-wire symbols.
        symbols = None
        if name in ("cx", "ccx"):
            symbols = ["■"] * (len(rows_q) - 1) + ["⊕"]
        elif name == "cz":
            symbols = ["■"] * len(rows_q)
        elif name == "swap":
            symbols = ["×", "×"]
        elif name == "cswap":
            symbols = ["■", "×", "×"]
        elif name.startswith("c") and len(rows_q) == 2:
            symbols = ["■", _gate_label(op)[1:]]
        else:
            label = _gate_label(op)
            symbols = [f"{label}:{i}" for i in range(len(rows_q))]
        span = range(min(rows_q), max(rows_q) + 1)
        inner = [r for r in span if r not in rows_q]
        place(list(zip(rows_q, symbols)), inner)

    # Render the grid.
    col_widths = [
        max(
            (len(sym) for sym in list(col.values()) + ["─"]),
            default=1,
        )
        + 2
        for col in columns
    ]
    lines = []
    for row in range(total_rows):
        if row < num_q:
            qubit = qubits[row]
            prefix = f"{qubit.register.name}_{qubit.index}: "
            fill = "─"
        else:
            clbit = clbits[row - num_q]
            prefix = f"{clbit.register.name}_{clbit.index}: "
            fill = "═"
        prefix = prefix.rjust(max(len(prefix), 8))
        parts = [prefix]
        for col_idx, col in enumerate(columns):
            width = col_widths[col_idx]
            if row in col:
                sym = col[row]
            elif row in col_connect[col_idx]:
                sym = "│"
            else:
                sym = ""
            pad_char = fill if not sym or sym in ("■", "⊕", "×", "░") else fill
            text = sym.center(width, pad_char) if sym else pad_char * width
            parts.append(text)
        lines.append("".join(parts))
    return "\n".join(lines)
